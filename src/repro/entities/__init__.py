"""The three parties of a CDT system plus jobs and cost/valuation models.

* :class:`~repro.entities.consumer.Consumer` — Stage-1 leader, sets the
  unit data-service price ``p^J``.
* :class:`~repro.entities.platform.Platform` — Stage-2 leader (broker),
  selects sellers and sets the unit data-collection price ``p``.
* :class:`~repro.entities.seller.Seller` — Stage-3 follower, chooses its
  sensing time ``tau_i``.
"""

from repro.entities.consumer import Consumer
from repro.entities.costs import (
    LogValuation,
    QuadraticAggregationCost,
    QuadraticSellerCost,
)
from repro.entities.job import Job, PoI
from repro.entities.platform import Platform
from repro.entities.seller import Seller, SellerPopulation

__all__ = [
    "Consumer",
    "Platform",
    "Seller",
    "SellerPopulation",
    "Job",
    "PoI",
    "QuadraticSellerCost",
    "QuadraticAggregationCost",
    "LogValuation",
]
