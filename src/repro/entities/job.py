"""Data-collection jobs and Points of Interest.

A job (Definition 1) is the consumer's long-term request:
``Job = <L, N, T, Des>`` — a set of ``L`` PoIs, ``N`` rounds each of
duration ``T``, and a free-form description of the requested statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["PoI", "Job"]


@dataclass(frozen=True)
class PoI:
    """A Point of Interest where data must be collected.

    Attributes
    ----------
    poi_id:
        Stable identifier of the PoI.
    latitude, longitude:
        Coordinates of the PoI (synthetic city coordinates when produced
        by :mod:`repro.data`).
    weight:
        Optional popularity weight (for example the number of taxi trips
        touching this point in the source trace); informational only.
    """

    poi_id: int
    latitude: float = 0.0
    longitude: float = 0.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.latitude) or not math.isfinite(self.longitude):
            raise ConfigurationError("PoI coordinates must be finite")
        if not (math.isfinite(self.weight) and self.weight >= 0.0):
            raise ConfigurationError(f"PoI weight must be >= 0, got {self.weight}")


@dataclass(frozen=True)
class Job:
    """A long-term data-collection job ``<L, N, T, Des>`` (Definition 1).

    Attributes
    ----------
    pois:
        The ``L`` PoIs the consumer cares about.
    num_rounds:
        Total number of trading rounds ``N``.
    round_duration:
        Duration ``T`` of one round; each seller's sensing time satisfies
        ``tau_i^t in [0, T]``.
    description:
        Free-form requirements ``Des`` for the collected data.
    """

    pois: tuple[PoI, ...]
    num_rounds: int
    round_duration: float = float("inf")
    description: str = ""

    def __post_init__(self) -> None:
        if not self.pois:
            raise ConfigurationError("a job must include at least one PoI")
        if self.num_rounds <= 0:
            raise ConfigurationError(
                f"num_rounds must be positive, got {self.num_rounds}"
            )
        if not (self.round_duration > 0.0):
            raise ConfigurationError(
                f"round_duration must be positive, got {self.round_duration}"
            )
        ids = [p.poi_id for p in self.pois]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("PoI ids within a job must be unique")

    @property
    def num_pois(self) -> int:
        """The number of PoIs ``L``."""
        return len(self.pois)

    @property
    def total_duration(self) -> float:
        """The whole trading duration ``N * T``."""
        return self.num_rounds * self.round_duration

    def clip_sensing_time(self, sensing_time: float) -> float:
        """Project a sensing time onto the feasible interval ``[0, T]``."""
        return min(max(float(sensing_time), 0.0), self.round_duration)

    @classmethod
    def simple(cls, num_pois: int, num_rounds: int,
               round_duration: float = float("inf"),
               description: str = "") -> "Job":
        """Create a job with ``num_pois`` anonymous PoIs at the origin."""
        if num_pois <= 0:
            raise ConfigurationError(
                f"num_pois must be positive, got {num_pois}"
            )
        pois = tuple(PoI(poi_id=i) for i in range(num_pois))
        return cls(pois=pois, num_rounds=num_rounds,
                   round_duration=round_duration, description=description)
