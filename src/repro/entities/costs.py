"""Cost and valuation function objects.

The paper fixes three functional forms (Section II):

* each seller's data-collection cost, Eq. (6) —
  ``C_i(tau, qbar_i) = (a_i * tau^2 + b_i * tau) * qbar_i`` — monotonically
  increasing, differentiable and strictly convex in ``tau``;
* the platform's data-aggregation cost, Eq. (8) —
  ``C^J(tau) = theta * (sum tau_i)^2 + lambda * sum tau_i`` — convex in the
  total sensing time;
* the consumer's valuation, Eq. (10) —
  ``phi(tau, qbar) = omega * ln(1 + qbar * sum tau_i)`` — strictly concave
  (diminishing marginal return).

These are implemented as small frozen dataclasses so experiments can sweep
their parameters, and so tests can assert the convexity/concavity claims
the equilibrium derivation rests on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "QuadraticSellerCost",
    "QuadraticAggregationCost",
    "LogValuation",
]


@dataclass(frozen=True)
class QuadraticSellerCost:
    """Seller data-collection cost ``C_i(tau, qbar) = (a*tau^2 + b*tau)*qbar``.

    Parameters
    ----------
    a:
        Quadratic coefficient (``a > 0``): the increasing marginal cost of
        effort.  Paper range ``[0.1, 0.5]``.
    b:
        Linear coefficient (``b >= 0``).  Paper range ``[0.1, 1]``.
    """

    a: float
    b: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.a) and self.a > 0.0):
            raise ConfigurationError(f"seller cost parameter a must be > 0, got {self.a}")
        if not (math.isfinite(self.b) and self.b >= 0.0):
            raise ConfigurationError(f"seller cost parameter b must be >= 0, got {self.b}")

    def __call__(self, sensing_time: float, quality: float) -> float:
        """Evaluate the cost of sensing for ``sensing_time`` at ``quality``."""
        tau = float(sensing_time)
        return (self.a * tau * tau + self.b * tau) * float(quality)

    def marginal(self, sensing_time: float, quality: float) -> float:
        """First derivative of the cost with respect to sensing time."""
        return (2.0 * self.a * float(sensing_time) + self.b) * float(quality)

    def optimal_sensing_time(self, price: float, quality: float) -> float:
        """The profit-maximising sensing time for a unit price (Eq. 20).

        Solves ``d/d tau [p*tau - C(tau, q)] = 0`` giving
        ``tau* = (p - q*b) / (2*q*a)``, floored at 0 (a seller never senses
        a negative duration; when the price does not cover the marginal
        cost at ``tau = 0`` the seller opts out).

        Raises
        ------
        ConfigurationError
            If ``quality`` is not strictly positive — the interior optimum
            is undefined for a zero-quality seller.
        """
        q = float(quality)
        if q <= 0.0:
            raise ConfigurationError(
                "optimal sensing time requires a strictly positive quality"
            )
        tau = (float(price) - q * self.b) / (2.0 * q * self.a)
        return max(tau, 0.0)


@dataclass(frozen=True)
class QuadraticAggregationCost:
    """Platform aggregation cost ``C^J = theta*(total_tau)^2 + lam*total_tau``.

    Parameters
    ----------
    theta:
        Quadratic coefficient (``theta > 0``).  Paper range ``[0.1, 1]``,
        default ``0.1``.
    lam:
        Linear coefficient (``lam >= 0``).  Paper range ``[0.5, 2]``,
        default ``1``.  Named ``lam`` because ``lambda`` is reserved.
    """

    theta: float
    lam: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.theta) and self.theta > 0.0):
            raise ConfigurationError(
                f"platform cost parameter theta must be > 0, got {self.theta}"
            )
        if not (math.isfinite(self.lam) and self.lam >= 0.0):
            raise ConfigurationError(
                f"platform cost parameter lambda must be >= 0, got {self.lam}"
            )

    def __call__(self, sensing_times: np.ndarray | float) -> float:
        """Evaluate the aggregation cost of the given sensing-time profile.

        Accepts either the full vector ``tau`` (summed internally) or the
        pre-computed total sensing time.
        """
        total = float(np.sum(sensing_times))
        return self.theta * total * total + self.lam * total

    def marginal(self, total_sensing_time: float) -> float:
        """Derivative of the cost with respect to the total sensing time."""
        return 2.0 * self.theta * float(total_sensing_time) + self.lam


@dataclass(frozen=True)
class LogValuation:
    """Consumer valuation ``phi = omega * ln(1 + qbar * total_tau)``.

    Parameters
    ----------
    omega:
        Valuation scale (``omega > 1`` per Definition 11).  Paper range
        ``[600, 1400]``, default ``1000``.
    """

    omega: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.omega) and self.omega > 1.0):
            raise ConfigurationError(
                f"valuation parameter omega must be > 1, got {self.omega}"
            )

    def __call__(self, sensing_times: np.ndarray | float,
                 mean_quality: float) -> float:
        """Valuation of the statistics produced by the given profile.

        Parameters
        ----------
        sensing_times:
            The sensing-time vector of the selected sellers (or its sum).
        mean_quality:
            The mean estimated quality ``qbar^t`` of the selected sellers.
        """
        total = float(np.sum(sensing_times))
        argument = 1.0 + float(mean_quality) * total
        if argument <= 0.0:
            raise ConfigurationError(
                "valuation argument 1 + qbar * total_tau must be positive; "
                f"got {argument:.4f}"
            )
        return self.omega * math.log(argument)

    def marginal(self, total_sensing_time: float, mean_quality: float) -> float:
        """Derivative of the valuation with respect to total sensing time."""
        q = float(mean_quality)
        return self.omega * q / (1.0 + q * float(total_sensing_time))
