"""Composable retry / deadline / backoff policies.

The recovery layers (checkpoint persistence, the parallel coordinator's
re-queue, the chaos harness) all need the same discipline: *how many
times* may an operation fail, *how long* between attempts, and *how
long overall* before giving up.  This module makes those three answers
first-class values — a :class:`RetryPolicy`, a :class:`Backoff`, and a
:class:`Deadline` composed into one :class:`ResiliencePolicy` — so
every layer applies identical, auditable semantics instead of ad-hoc
counters.

Determinism contract: backoff *delays* are pure functions of
``(seed, label, attempt)`` — jitter is drawn from a
:func:`repro.sim.rng.seeded_generator` stream, never from OS entropy —
so a replayed run waits the exact same schedule.  The *sleeps*
themselves are wall-clock side effects that never feed back into
simulation state (the same contract as :mod:`repro.obs` timing).

The default :data:`NOOP_POLICY` (single attempt, no backoff, no
deadline, single checkpoint generation, no quarantine) is behaviourally
invisible: code guarded by it runs exactly as unguarded code, which is
what keeps pre-existing invocations byte-identical.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any, TypeVar

from repro.exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    PersistenceError,
    RetryBudgetExceededError,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.timing import perf_counter
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "Backoff",
    "RetryPolicy",
    "Deadline",
    "ResiliencePolicy",
    "NO_RETRY",
    "NO_DEADLINE",
    "NOOP_POLICY",
    "execute_with_policy",
]

T = TypeVar("T")


def _stable_label_hash(label: str) -> int:
    """A salt-free 32-bit hash of ``label`` (Python's ``hash`` is salted)."""
    value = 0
    for char in label:
        value = (value * 131 + ord(char)) & 0xFFFFFFFF
    return value


@dataclass(frozen=True)
class Backoff:
    """Delay schedule between retry attempts.

    ``delay_s(attempt)`` for attempt ``k`` (1-based count of failures so
    far) is ``min(base_s * factor**(k-1), max_s)``, optionally shrunk by
    seeded jitter.  ``base_s = 0`` (the default) is the no-delay
    schedule; ``factor = 1`` gives fixed delays.

    Attributes
    ----------
    base_s:
        First-retry delay in seconds (0 disables delays entirely).
    factor:
        Multiplier applied per additional attempt (>= 1).
    max_s:
        Upper clamp on any single delay.
    jitter:
        Fraction in ``[0, 1]``: each delay is scaled by a seeded
        uniform draw from ``[1 - jitter, 1]``, de-synchronising
        contending retriers without sacrificing replayability.
    seed:
        Entropy for the jitter stream; two schedules with the same
        ``(seed, label, attempt)`` produce identical delays.
    """

    base_s: float = 0.0
    factor: float = 2.0
    max_s: float = 60.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_s < 0.0:
            raise ConfigurationError(
                f"backoff base_s must be >= 0, got {self.base_s}"
            )
        if self.factor < 1.0:
            raise ConfigurationError(
                f"backoff factor must be >= 1, got {self.factor}"
            )
        if self.max_s < 0.0:
            raise ConfigurationError(
                f"backoff max_s must be >= 0, got {self.max_s}"
            )
        if not (0.0 <= self.jitter <= 1.0):
            raise ConfigurationError(
                f"backoff jitter must be in [0, 1], got {self.jitter}"
            )

    @classmethod
    def none(cls) -> "Backoff":
        """No delay between attempts."""
        return cls(base_s=0.0)

    @classmethod
    def fixed(cls, delay_s: float) -> "Backoff":
        """The same ``delay_s`` before every retry."""
        return cls(base_s=delay_s, factor=1.0, max_s=delay_s)

    @classmethod
    def exponential(cls, base_s: float = 0.05, factor: float = 2.0,
                    max_s: float = 5.0, jitter: float = 0.0,
                    seed: int = 0) -> "Backoff":
        """Exponentially growing delays, optionally seeded-jittered."""
        return cls(base_s=base_s, factor=factor, max_s=max_s,
                   jitter=jitter, seed=seed)

    def delay_s(self, attempt: int, label: str = "") -> float:
        """The deterministic delay before retry number ``attempt``.

        ``attempt`` counts failures so far, starting at 1.  With
        ``jitter > 0`` the draw comes from a fresh
        :func:`~repro.sim.rng.seeded_generator` stream keyed by
        ``(seed, label, attempt)``, so delays are replayable and
        request-order independent.
        """
        if attempt < 1:
            raise ConfigurationError(
                f"attempt must be >= 1, got {attempt}"
            )
        raw = min(self.base_s * self.factor ** (attempt - 1), self.max_s)
        if raw <= 0.0 or self.jitter <= 0.0:
            return float(raw)
        # Imported at call time: repro.sim imports the parallel/obs
        # layers that import this module, so a module-level import
        # would cycle (same pattern as repro.obs's RNG helpers).
        from repro.sim.rng import seeded_generator

        rng = seeded_generator(
            [self.seed, _stable_label_hash(label), int(attempt)]
        )
        return float(raw * (1.0 - self.jitter * float(rng.random())))


@dataclass(frozen=True)
class RetryPolicy:
    """How many times an operation may be attempted, and on what.

    Attributes
    ----------
    max_attempts:
        Total attempts allowed (>= 1); ``1`` means "never retry" — the
        no-op policy whose guarded call is indistinguishable from an
        unguarded one.
    backoff:
        Delay schedule between attempts.
    retry_on:
        Exception types that trigger a retry; anything else propagates
        immediately (a bug is not a fault to paper over).
    """

    max_attempts: int = 1
    backoff: Backoff = field(default_factory=Backoff.none)
    retry_on: tuple[type[BaseException], ...] = (PersistenceError, OSError)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if not self.retry_on:
            raise ConfigurationError(
                "retry_on must name at least one exception type"
            )

    @property
    def is_noop(self) -> bool:
        """Whether this policy never actually retries."""
        return self.max_attempts == 1

    @classmethod
    def of(cls, max_retries: int,
           backoff: Backoff | None = None) -> "RetryPolicy":
        """A policy allowing ``max_retries`` retries after the first try."""
        if max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        return cls(max_attempts=max_retries + 1,
                   backoff=backoff if backoff is not None else Backoff.none())


@dataclass(frozen=True)
class Deadline:
    """A wall-clock budget for one guarded operation.

    ``timeout_s = None`` (the default) disables the deadline.  At the
    policy-engine layer a deadline bounds *retrying* — a synchronous
    attempt cannot be preempted from within, so the check runs between
    attempts.  Pre-emptive enforcement mid-attempt is the parallel
    watchdog's job (it can kill a worker process; a function call has
    no such handle).
    """

    timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0.0:
            raise ConfigurationError(
                f"timeout_s must be positive (or None), got {self.timeout_s}"
            )

    @property
    def enabled(self) -> bool:
        """Whether this deadline constrains anything."""
        return self.timeout_s is not None


#: Single attempt, no backoff: guarded calls behave exactly unguarded.
NO_RETRY = RetryPolicy()

#: No wall-clock budget.
NO_DEADLINE = Deadline()


@dataclass(frozen=True)
class ResiliencePolicy:
    """The full resilience posture of a run, composed of the pieces above.

    Attributes
    ----------
    retry:
        Attempt budget + backoff for persistence I/O and the parallel
        coordinator's task re-queue.
    deadline:
        Per-task wall-clock budget (enforced by the parallel watchdog;
        advisory between attempts elsewhere).
    checkpoint_generations:
        How many checkpoint generations to keep on disk (>= 1).  With
        more than one, each write rotates the previous file into a
        ``.gen-k`` sibling, giving rollback targets.
    quarantine:
        Whether a corrupt/unreadable checkpoint found on resume is
        moved into a ``*.quarantine/`` directory and the run rolled
        back to the newest valid generation (or a fresh start), instead
        of raising :class:`~repro.exceptions.PersistenceError`.
    """

    retry: RetryPolicy = field(default_factory=lambda: NO_RETRY)
    deadline: Deadline = field(default_factory=lambda: NO_DEADLINE)
    checkpoint_generations: int = 1
    quarantine: bool = False

    def __post_init__(self) -> None:
        if self.checkpoint_generations < 1:
            raise ConfigurationError(
                "checkpoint_generations must be >= 1, got "
                f"{self.checkpoint_generations}"
            )

    @property
    def is_noop(self) -> bool:
        """Whether this policy changes nothing over unguarded behaviour."""
        return (self.retry.is_noop and not self.deadline.enabled
                and self.checkpoint_generations == 1 and not self.quarantine)

    @classmethod
    def from_cli(cls, timeout_s: float | None,
                 max_retries: int | None) -> "ResiliencePolicy":
        """The policy requested by ``--timeout-s`` / ``--max-retries``.

        Both flags default to ``None`` → the no-op policy, keeping
        existing invocations byte-identical.
        """
        retry = (RetryPolicy.of(max_retries,
                                Backoff.exponential(jitter=0.5))
                 if max_retries is not None else NO_RETRY)
        deadline = Deadline(timeout_s) if timeout_s is not None else NO_DEADLINE
        return cls(retry=retry, deadline=deadline)


#: The default posture: zero-cost when idle, byte-identical behaviour.
NOOP_POLICY = ResiliencePolicy()


def execute_with_policy(
    operation: Callable[[], T],
    policy: RetryPolicy,
    *,
    label: str,
    deadline: Deadline = NO_DEADLINE,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    sleep: Callable[[float], Any] = time.sleep,
) -> T:
    """Run ``operation`` under ``policy``, retrying declared failures.

    Attempts are made until one succeeds, the attempt budget runs out
    (:class:`~repro.exceptions.RetryBudgetExceededError`, chaining the
    final failure), or the deadline expires between attempts
    (:class:`~repro.exceptions.DeadlineExceededError`).  Exceptions not
    listed in ``policy.retry_on`` propagate immediately.

    Every retry emits a ``retry_attempt`` trace event (operation label,
    attempt number, deterministic delay, error) and bumps the
    ``resilience.retry_attempts`` counter.  With the no-op policy the
    operation is called exactly once and no telemetry is produced — the
    guard is free.

    ``sleep`` is injectable so tests (and the chaos harness) can run
    dense retry schedules without wall-clock waits.
    """
    tr = tracer if tracer is not None else NULL_TRACER
    start = perf_counter()
    attempt = 0
    while True:
        attempt += 1
        try:
            return operation()
        except policy.retry_on as error:
            if attempt >= policy.max_attempts:
                if policy.is_noop:
                    raise  # unguarded semantics, unwrapped traceback
                raise RetryBudgetExceededError(
                    f"{label} failed on all {attempt} attempts "
                    f"(max_attempts={policy.max_attempts}): {error}"
                ) from error
            elapsed = perf_counter() - start
            if deadline.enabled and deadline.timeout_s is not None \
                    and elapsed >= deadline.timeout_s:
                raise DeadlineExceededError(
                    f"{label} exceeded its {deadline.timeout_s:g}s "
                    f"deadline after {attempt} attempts "
                    f"({elapsed:.3f}s elapsed): {error}"
                ) from error
            delay = policy.backoff.delay_s(attempt, label)
            if metrics is not None:
                metrics.counter("resilience.retry_attempts").inc()
            if tr.enabled:
                tr.emit("retry_attempt", op=label, attempt=attempt,
                        max_attempts=policy.max_attempts,
                        delay_s=float(delay),
                        error=f"{type(error).__name__}: {error}")
            if delay > 0.0:
                sleep(delay)
