"""Cooperative shutdown signals: graceful SIGINT/SIGTERM and scheduled aborts.

Long sweeps die two ways today: a signal kills the process wherever it
happens to be (losing everything since the last periodic checkpoint),
or an operator waits the run out.  This module adds the third way — a
:class:`ShutdownSignal` the engine and replication driver consult at
every round/seed boundary.  When it trips, in-flight work is drained,
a final checkpoint is written, and
:class:`~repro.exceptions.GracefulShutdownInterrupt` is raised so the
caller exits cleanly and a later ``--resume`` continues bit-identically.

Two implementations:

* :class:`GracefulShutdown` — installs SIGINT/SIGTERM handlers that
  flip a flag (first signal: request a drain; second SIGINT: give up
  and raise ``KeyboardInterrupt`` immediately, because an operator
  hammering Ctrl-C wants out *now*).
* :class:`ScheduledAbort` — trips deterministically at pre-chosen
  round indices.  This is the chaos harness's interrupt: the same
  seed aborts at the same round every time, which is what makes
  recovery-equivalence checkable.
"""

from __future__ import annotations

import signal
import types
from collections.abc import Iterable
from typing import Protocol

__all__ = ["ShutdownSignal", "GracefulShutdown", "ScheduledAbort",
           "NEVER_STOP"]


class ShutdownSignal(Protocol):
    """Anything the engine can poll for "stop at the next safe point"."""

    def should_stop(self, round_index: int) -> bool:
        """Whether to stop *before* executing ``round_index``."""
        ...


class _NeverStop:
    """The default signal: never trips, costs one predicate call."""

    def should_stop(self, round_index: int) -> bool:
        return False


#: Shared default — polling it is the no-op policy's only overhead.
NEVER_STOP = _NeverStop()


class GracefulShutdown:
    """SIGINT/SIGTERM → a cooperative stop flag.

    Use as a context manager around a run::

        with GracefulShutdown() as stop:
            simulator.run(policy, shutdown=stop, ...)

    The handlers are installed on ``__enter__`` and the previous
    handlers restored on ``__exit__``, so nesting and test isolation
    behave.  The first signal only sets the flag — the run keeps going
    until its next round boundary, drains, checkpoints, and raises
    :class:`~repro.exceptions.GracefulShutdownInterrupt`.  A second
    SIGINT raises ``KeyboardInterrupt`` from the handler itself: the
    escape hatch when the drain is the thing that is stuck.
    """

    #: Signals hooked by :meth:`install`.
    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self) -> None:
        self._requested = False
        self._signum: int | None = None
        self._previous: dict[int, object] = {}
        self._installed = False

    @property
    def requested(self) -> bool:
        """Whether a shutdown signal has arrived."""
        return self._requested

    @property
    def signum(self) -> int | None:
        """The first signal received, if any."""
        return self._signum

    def request(self, signum: int | None = None) -> None:
        """Trip the flag programmatically (tests, embedding runtimes)."""
        self._requested = True
        if self._signum is None:
            self._signum = signum

    def should_stop(self, round_index: int) -> bool:
        """:class:`ShutdownSignal` protocol: stop once a signal arrived."""
        return self._requested

    def _handle(self, signum: int,
                frame: types.FrameType | None) -> None:
        if self._requested and signum == signal.SIGINT:
            raise KeyboardInterrupt
        self.request(signum)

    def install(self) -> "GracefulShutdown":
        """Hook SIGINT/SIGTERM, remembering the handlers they replace."""
        if not self._installed:
            for signum in self.SIGNALS:
                self._previous[signum] = signal.getsignal(signum)
                signal.signal(signum, self._handle)
            self._installed = True
        return self

    def uninstall(self) -> None:
        """Restore the handlers that were active before :meth:`install`."""
        if self._installed:
            for signum, previous in self._previous.items():
                signal.signal(signum, previous)  # type: ignore[arg-type]
            self._previous.clear()
            self._installed = False

    def __enter__(self) -> "GracefulShutdown":
        return self.install()

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()


class ScheduledAbort:
    """A deterministic shutdown signal for chaos trials and tests.

    Trips when the run reaches any of the given round indices.  Unlike
    a real signal it is perfectly replayable: the chaos scheduler draws
    abort rounds from a seeded stream, and every re-run of the same
    seed interrupts at exactly the same boundaries.
    """

    def __init__(self, rounds: Iterable[int]) -> None:
        self._rounds = frozenset(int(r) for r in rounds)

    @property
    def rounds(self) -> frozenset[int]:
        """The round indices at which this signal trips."""
        return self._rounds

    def should_stop(self, round_index: int) -> bool:
        """:class:`ShutdownSignal` protocol: stop at scheduled rounds."""
        return round_index in self._rounds
