"""Deterministic resilience runtime: policies, watchdog, graceful shutdown.

Three composable layers harden long runs without perturbing results:

* :mod:`repro.resilience.policy` — retry / deadline / backoff policies
  with seeded-jitter delays, applied to persistence I/O and the
  parallel coordinator's task re-queue.
* :mod:`repro.resilience.watchdog` — a clock-injected stall detector
  for worker pools (per-task deadlines + heartbeat loss).
* :mod:`repro.resilience.shutdown` — cooperative SIGINT/SIGTERM drain
  and deterministic scheduled aborts.

The chaos harness that exercises all three lives in
:mod:`repro.resilience.chaos` (imported lazily by the CLI — it pulls in
the simulation engine, which this package otherwise never imports).

Everything defaults to a no-op posture (:data:`NOOP_POLICY`,
:data:`NO_WATCHDOG`, :data:`NEVER_STOP`): a run that does not opt in
is byte-identical to one built before this package existed.
"""

from repro.resilience.policy import (
    NO_DEADLINE,
    NO_RETRY,
    NOOP_POLICY,
    Backoff,
    Deadline,
    ResiliencePolicy,
    RetryPolicy,
    execute_with_policy,
)
from repro.resilience.shutdown import (
    NEVER_STOP,
    GracefulShutdown,
    ScheduledAbort,
    ShutdownSignal,
)
from repro.resilience.watchdog import (
    NO_WATCHDOG,
    StallVerdict,
    WatchdogConfig,
    WorkerWatchdog,
)

__all__ = [
    "Backoff",
    "RetryPolicy",
    "Deadline",
    "ResiliencePolicy",
    "execute_with_policy",
    "NO_RETRY",
    "NO_DEADLINE",
    "NOOP_POLICY",
    "WatchdogConfig",
    "WorkerWatchdog",
    "StallVerdict",
    "NO_WATCHDOG",
    "ShutdownSignal",
    "GracefulShutdown",
    "ScheduledAbort",
    "NEVER_STOP",
]
