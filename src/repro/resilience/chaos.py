"""Chaos-testing harness: seeded fault storms with an exactness oracle.

The resilience layers — retry policies, the worker watchdog, checkpoint
quarantine and rollback, graceful shutdown — each have unit tests, but
real failures compose: a sweep is interrupted, its newest checkpoint is
then corrupted on disk, the resumed sweep loses a worker to a crash,
and the worker after *that* wedges and must be shot by the watchdog.
This module drills exactly such compositions, deterministically.

A chaos run is ``rounds`` independent rounds.  Each round derives a
fault plan from ``seeded_generator([seed, round_index])`` — up to
``budget`` faults drawn from the menu below — applies them to a small
replication sweep running under a full resilience policy (retry +
generations + quarantine), finishes the sweep with a fault-free resume,
and hands the result to the recovery-equivalence oracle
(:func:`repro.verify.check_recovery_equivalence`): the battered sweep
must end **bit-identical** to a fault-free golden of the same
configuration.  Every layer that silently loses, recomputes, or
double-counts a seed fails the oracle, not just crashes.

Fault menu (one layer each):

* ``interrupt`` — a :class:`~repro.resilience.ScheduledAbort` stops the
  sweep at a seed boundary (graceful-shutdown layer).
* ``corrupt_checkpoint`` — a random byte of the newest checkpoint
  artefact is flipped (parse/checksum layer).
* ``tamper_checkpoint`` — a *semantically valid* edit: one completed
  seed's revenue sample is inflated while the stale checksum is kept.
  Only the checksum can catch this; it is the fault that kills the
  "disable verification" mutation.
* ``truncate_checkpoint`` — the artefact loses its tail (torn write).
* ``worker_crash`` — a parallel worker dies hard mid-seed (retry
  layer; uses the executor's single-shot crash injection).
* ``worker_stall`` — a parallel worker wedges mid-seed and must be
  killed by the watchdog (watchdog layer).

The process faults spawn real worker processes and a real (short)
watchdog timeout, so they dominate wall-clock time; disable them with
``include_process_faults=False`` for the fastest smoke drills.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field

import numpy as np

from repro.bandits.base import SelectionPolicy
from repro.bandits.policies import EpsilonFirstPolicy, UCBPolicy
from repro.exceptions import ConfigurationError, GracefulShutdownInterrupt
from repro.faults import FaultSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.parallel.worker import (
    CRASH_MARKER_ENV,
    CRASH_TASK_ENV,
    STALL_MARKER_ENV,
    STALL_TASK_ENV,
)
from repro.resilience.policy import (
    Backoff,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.resilience.shutdown import ScheduledAbort
from repro.resilience.watchdog import WatchdogConfig
from repro.sim.config import SimulationConfig
from repro.sim.replication import ReplicationResult, replicate_comparison
from repro.sim.rng import seeded_generator
from repro.verify.oracles import OracleCheck, check_recovery_equivalence

__all__ = [
    "CHAOS_FAULT_KINDS",
    "ChaosConfig",
    "ChaosRoundReport",
    "ChaosReport",
    "run_chaos",
]

#: The injectable fault kinds, in the order the planner indexes them.
CHAOS_FAULT_KINDS = (
    "interrupt",
    "corrupt_checkpoint",
    "tamper_checkpoint",
    "truncate_checkpoint",
    "worker_crash",
    "worker_stall",
)

#: Fault kinds that damage the checkpoint file between episodes.
_DISK_FAULTS = frozenset(
    {"corrupt_checkpoint", "tamper_checkpoint", "truncate_checkpoint"}
)

#: Fault kinds that need a real worker pool.
_PROCESS_FAULTS = frozenset({"worker_crash", "worker_stall"})


@dataclass(frozen=True)
class ChaosConfig:
    """Shape of one chaos run.

    Attributes
    ----------
    seed:
        Master seed; every planning decision derives from it, so two
        runs with the same config replay the same fault storm.
    rounds:
        Independent chaos rounds (fresh sweep, fresh fault plan each).
    budget:
        Maximum faults injected per round (at least one is always
        injected — a round without faults drills nothing).
    num_seeds:
        Seeds per sweep.  Small by design: the oracle's strength comes
        from fault composition, not sweep size.
    num_sellers / num_selected / sim_rounds:
        The per-seed simulation's size.
    workers:
        Pool size for the process-fault episodes.
    include_process_faults:
        When ``False`` the planner never draws ``worker_crash`` /
        ``worker_stall``, keeping the drill in-process and fast.
    """

    seed: int = 0
    rounds: int = 3
    budget: int = 3
    num_seeds: int = 4
    num_sellers: int = 8
    num_selected: int = 3
    sim_rounds: int = 25
    workers: int = 2
    include_process_faults: bool = True

    def __post_init__(self) -> None:
        for name in ("rounds", "budget", "num_seeds", "workers"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )


@dataclass
class ChaosRoundReport:
    """What one chaos round planned, applied, and concluded.

    ``plan`` is what the planner drew; ``applied`` records what actually
    happened (a disk fault is skipped when no checkpoint artefact exists
    yet, a process fault when the sweep already finished).
    """

    round_index: int
    fault_spec: dict | None
    plan: list[str]
    applied: list[dict] = field(default_factory=list)
    check: OracleCheck | None = None

    @property
    def passed(self) -> bool:
        """Whether the recovery-equivalence oracle agreed."""
        return self.check is not None and self.check.passed

    def to_dict(self) -> dict:
        """JSON-ready payload."""
        return {
            "round": self.round_index,
            "fault_spec": self.fault_spec,
            "plan": list(self.plan),
            "applied": [dict(entry) for entry in self.applied],
            "passed": self.passed,
            "detail": self.check.detail if self.check is not None else "",
            "max_error": (self.check.max_error
                          if self.check is not None else 0.0),
        }


@dataclass
class ChaosReport:
    """All rounds of one chaos run."""

    config: ChaosConfig
    rounds: list[ChaosRoundReport]

    @property
    def passed(self) -> bool:
        """Whether every round recovered bit-identically."""
        return all(entry.passed for entry in self.rounds)

    @property
    def num_violations(self) -> int:
        return sum(not entry.passed for entry in self.rounds)

    @property
    def num_faults_applied(self) -> int:
        return sum(
            sum(1 for fault in entry.applied if not fault.get("skipped"))
            for entry in self.rounds
        )

    def to_dict(self) -> dict:
        """JSON-ready payload (CI artefact)."""
        return {
            "seed": self.config.seed,
            "rounds": len(self.rounds),
            "budget": self.config.budget,
            "passed": self.passed,
            "num_violations": self.num_violations,
            "num_faults_applied": self.num_faults_applied,
            "round_reports": [entry.to_dict() for entry in self.rounds],
        }

    def to_text(self) -> str:
        """Human-readable summary."""
        lines = [
            f"chaos run: seed={self.config.seed} "
            f"rounds={len(self.rounds)} budget={self.config.budget}"
        ]
        for entry in self.rounds:
            status = "ok" if entry.passed else "VIOLATION"
            applied = ", ".join(
                fault["kind"] + (" (skipped)" if fault.get("skipped")
                                 else "")
                for fault in entry.applied
            ) or "none"
            lines.append(
                f"  round {entry.round_index} [{status}] faults: {applied}"
            )
            if not entry.passed and entry.check is not None:
                lines.append(f"    {entry.check.detail}")
        verdict = ("all rounds recovered bit-identically"
                   if self.passed
                   else f"{self.num_violations} recovery violation(s)")
        lines.append(f"{self.num_faults_applied} faults applied; {verdict}")
        return "\n".join(lines)


def _chaos_policy_factory(qualities: np.ndarray) -> list[SelectionPolicy]:
    """Two cheap, stateful policies — enough to exercise aggregation."""
    return [UCBPolicy(), EpsilonFirstPolicy(0.1)]


def _checkpoint_artifacts(checkpoint_path: str) -> list[str]:
    """The sweep checkpoint and its generation siblings, newest first."""
    candidates = [checkpoint_path]
    generation = 1
    while os.path.exists(f"{checkpoint_path}.gen-{generation}"):
        candidates.append(f"{checkpoint_path}.gen-{generation}")
        generation += 1
    return [path for path in candidates if os.path.exists(path)]


def _flip_byte(path: str, rng: np.random.Generator) -> dict:
    """Flip one random byte of ``path`` in place."""
    with open(path, "rb") as handle:
        raw = bytearray(handle.read())
    if not raw:
        return {"skipped": True, "reason": "empty file"}
    offset = int(rng.integers(0, len(raw)))
    raw[offset] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(raw)
    return {"offset": offset}


def _truncate(path: str, rng: np.random.Generator) -> dict:
    """Cut a random tail off ``path`` (torn-write model)."""
    size = os.path.getsize(path)
    if size == 0:
        return {"skipped": True, "reason": "empty file"}
    keep = int(rng.integers(0, size))
    with open(path, "rb") as handle:
        raw = handle.read(keep)
    with open(path, "wb") as handle:
        handle.write(raw)
    return {"kept_bytes": keep, "of": size}


def _tamper(path: str, rng: np.random.Generator) -> dict:
    """Inflate one completed seed's revenue sample, keep the checksum.

    The file stays valid JSON with a plausible schema — only the (now
    stale) checksum betrays it.  On code with working verification the
    load quarantines and rolls back; on code with verification disabled
    the poisoned sample reaches aggregation and the oracle flags it.
    """
    import json

    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return {"skipped": True, "reason": "not parseable JSON"}
    samples = payload.get("seed_samples")
    if not isinstance(samples, dict) or not samples:
        return {"skipped": True, "reason": "no completed seeds"}
    seed_key = sorted(samples)[int(rng.integers(0, len(samples)))]
    policies = samples[seed_key]
    if not isinstance(policies, dict) or not policies:
        return {"skipped": True, "reason": "malformed seed record"}
    policy_key = sorted(policies)[0]
    metrics = policies[policy_key]
    if not isinstance(metrics, dict) or "total_revenue" not in metrics:
        return {"skipped": True, "reason": "malformed policy record"}
    metrics["total_revenue"] = float(metrics["total_revenue"]) * 1.5 + 1.0
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return {"seed": seed_key, "policy": policy_key}


def _plan_round(rng: np.random.Generator, config: ChaosConfig) -> list[str]:
    """Draw this round's fault sequence from the menu."""
    menu = [
        kind for kind in CHAOS_FAULT_KINDS
        if config.include_process_faults or kind not in _PROCESS_FAULTS
    ]
    count = 1 + int(rng.integers(0, config.budget))
    return [menu[int(rng.integers(0, len(menu)))] for __ in range(count)]


def _run_episode(sim_config: SimulationConfig,
                 fault_spec: FaultSpec | None,
                 config: ChaosConfig,
                 checkpoint_path: str,
                 resilience: ResiliencePolicy,
                 *,
                 workers: int = 1,
                 watchdog: WatchdogConfig | None = None,
                 abort_after: int | None = None,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 ) -> ReplicationResult | None:
    """One sweep attempt; ``None`` when the scheduled abort fired."""
    shutdown = (ScheduledAbort(range(abort_after, config.num_seeds))
                if abort_after is not None else None)
    try:
        return replicate_comparison(
            sim_config, _chaos_policy_factory,
            num_seeds=config.num_seeds,
            fault_spec=fault_spec,
            checkpoint_path=checkpoint_path,
            resume=True,
            workers=workers,
            resilience=resilience,
            watchdog=watchdog,
            shutdown=shutdown,
            tracer=tracer,
            metrics=metrics,
        )
    except GracefulShutdownInterrupt:
        return None


def _injection_env(task_env: str, marker_env: str, task_id: int,
                   marker_path: str) -> dict[str, str]:
    return {task_env: str(task_id), marker_env: marker_path}


def _run_round(round_index: int, config: ChaosConfig, workdir: str,
               tracer: Tracer, metrics: MetricsRegistry,
               ) -> ChaosRoundReport:
    """Plan, apply, recover, and judge one chaos round."""
    rng = seeded_generator([config.seed, round_index])
    # Half the rounds also stress the *simulated* fault layer (seller
    # dropouts etc.) so infrastructure recovery is drilled on top of a
    # degraded market, not only a clean one.  The golden uses the same
    # spec: seller faults are part of the world, not the infrastructure.
    fault_spec = FaultSpec.random(rng) if rng.random() < 0.5 else None
    sim_config = SimulationConfig(
        num_sellers=config.num_sellers,
        num_selected=config.num_selected,
        num_rounds=config.sim_rounds,
    )
    plan = _plan_round(rng, config)
    report = ChaosRoundReport(
        round_index=round_index,
        fault_spec=fault_spec.to_dict() if fault_spec is not None else None,
        plan=list(plan),
    )

    golden = replicate_comparison(
        sim_config, _chaos_policy_factory, num_seeds=config.num_seeds,
        fault_spec=fault_spec,
    )

    checkpoint_path = os.path.join(workdir, f"round-{round_index}.json")
    resilience = ResiliencePolicy(
        retry=RetryPolicy.of(2, Backoff.none()),
        checkpoint_generations=3,
        quarantine=True,
    )
    # The per-task deadline is the stall detector (the injected stall
    # wedges at task start, so ~1.5s bounds the episode); heartbeat
    # monitoring runs too, but with a limit generous enough to never
    # falsely kill a worker on a loaded CI box.
    watchdog = WatchdogConfig(task_timeout_s=1.5,
                              heartbeat_interval_s=0.1,
                              heartbeat_timeout_s=10.0)
    # Bootstrap: run the sweep to its first seed boundary and stop, so
    # every round starts from a live partial checkpoint — the state the
    # disk faults damage and the resumes must honour.  (A storm hitting
    # an idle system drills nothing.)
    result: ReplicationResult | None = _run_episode(
        sim_config, fault_spec, config, checkpoint_path, resilience,
        abort_after=1, tracer=tracer, metrics=metrics,
    )
    for fault in plan:
        entry: dict = {"kind": fault}
        if fault == "interrupt":
            abort_after = 1 + int(rng.integers(0, config.num_seeds - 1)) \
                if config.num_seeds > 1 else 1
            entry["abort_after_seeds"] = abort_after
            result = _run_episode(
                sim_config, fault_spec, config, checkpoint_path,
                resilience, abort_after=abort_after,
                tracer=tracer, metrics=metrics,
            )
            entry["interrupted"] = result is None
        elif fault in _DISK_FAULTS:
            artifacts = _checkpoint_artifacts(checkpoint_path)
            if not artifacts:
                entry.update(skipped=True, reason="no checkpoint yet")
            else:
                # Corruption/truncation may hit any generation (that
                # drills rollback depth); a tamper must hit the newest
                # artefact — the one a resume actually loads — or only
                # the checksum-less generations would be poisoned and
                # the drill would prove nothing.
                target = (artifacts[0] if fault == "tamper_checkpoint"
                          else artifacts[int(rng.integers(0,
                                                          len(artifacts)))])
                damage = {"corrupt_checkpoint": _flip_byte,
                          "tamper_checkpoint": _tamper,
                          "truncate_checkpoint": _truncate}[fault]
                entry.update(damage(target, rng))
                entry["target"] = os.path.basename(target)
                result = None  # the damaged state must be re-proven
        elif fault in _PROCESS_FAULTS:
            task_env, marker_env = (
                (CRASH_TASK_ENV, CRASH_MARKER_ENV)
                if fault == "worker_crash"
                else (STALL_TASK_ENV, STALL_MARKER_ENV)
            )
            marker = os.path.join(
                workdir,
                f"round-{round_index}-{fault}-{len(report.applied)}.marker",
            )
            injection = _injection_env(task_env, marker_env, 0, marker)
            saved = {name: os.environ.get(name) for name in injection}
            os.environ.update(injection)
            try:
                result = _run_episode(
                    sim_config, fault_spec, config, checkpoint_path,
                    resilience, workers=config.workers,
                    watchdog=watchdog, tracer=tracer, metrics=metrics,
                )
            finally:
                for name, value in saved.items():
                    if value is None:
                        os.environ.pop(name, None)
                    else:
                        os.environ[name] = value
            entry["fired"] = os.path.exists(marker)
            if not entry["fired"]:
                entry.update(skipped=True,
                             reason="sweep already complete")
        report.applied.append(entry)

    if result is None:
        # Final fault-free resume: whatever the storm left behind must
        # still carry the sweep to completion.
        result = _run_episode(
            sim_config, fault_spec, config, checkpoint_path, resilience,
            tracer=tracer, metrics=metrics,
        )
    assert result is not None  # no abort scheduled on the final episode
    report.check = check_recovery_equivalence(
        golden, result, case=f"round-{round_index}"
    )
    return report


def run_chaos(config: ChaosConfig,
              *,
              tracer: Tracer | None = None,
              metrics: MetricsRegistry | None = None,
              workdir: str | None = None) -> ChaosReport:
    """Run the chaos drill described by ``config``.

    Parameters
    ----------
    config:
        The drill's shape; see :class:`ChaosConfig`.
    tracer / metrics:
        Optional observability sinks threaded through every sweep the
        drill runs, so ``retry_attempt`` / ``watchdog_kill`` /
        ``checkpoint_quarantined`` / ``graceful_shutdown`` events land
        in the same place as production telemetry.
    workdir:
        Directory for checkpoints and injection markers; a temporary
        one (cleaned afterwards) when omitted.

    Returns
    -------
    ChaosReport
        One entry per round; ``report.passed`` means every round's
        recovered sweep was bit-identical to its fault-free golden.
    """
    tr = tracer if tracer is not None else NULL_TRACER
    reg = metrics if metrics is not None else MetricsRegistry()
    rounds: list[ChaosRoundReport] = []

    def drill(root: str) -> None:
        for round_index in range(config.rounds):
            entry = _run_round(round_index, config, root, tr, reg)
            reg.counter("chaos.rounds").inc()
            if not entry.passed:
                reg.counter("chaos.violations").inc()
            rounds.append(entry)

    if workdir is not None:
        os.makedirs(workdir, exist_ok=True)
        drill(workdir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as root:
            drill(root)
    return ChaosReport(config=config, rounds=rounds)
