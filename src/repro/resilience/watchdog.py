"""Stall detection for worker pools: a pure, clock-injected state machine.

The parallel coordinator already notices *dead* workers (``exitcode``
flips non-``None``).  A *wedged* worker — alive but stuck in a syscall,
a native-extension loop, or a deadlock — looks healthy to that check
forever.  The watchdog closes the gap with two independent detectors:

* **per-task deadline** — a task has been running on a worker longer
  than ``task_timeout_s``;
* **heartbeat loss** — the worker's heartbeat thread (see
  :mod:`repro.parallel.worker`) has gone silent for longer than
  ``heartbeat_timeout_s``.

The class holds no threads and reads no clocks: the coordinator feeds
it observations (``worker_started`` / ``heartbeat`` / ``task_started``
/ ``task_finished``) stamped with its own monotonic clock and calls
:meth:`WorkerWatchdog.poll` from its existing scheduling loop.  That
keeps the policy unit-testable with a fake clock and leaves all
side effects (killing processes, re-queueing tasks, emitting
``watchdog_kill`` events) in the coordinator, where the process
handles live.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError

__all__ = ["WatchdogConfig", "StallVerdict", "WorkerWatchdog"]

#: Verdict reasons, matching the trace-event kinds the coordinator emits.
REASON_TASK_DEADLINE = "task_deadline_exceeded"
REASON_HEARTBEAT_LOST = "heartbeat_lost"


@dataclass(frozen=True)
class WatchdogConfig:
    """What the watchdog considers a stall.

    Attributes
    ----------
    task_timeout_s:
        Longest a single task may run on a worker before the worker is
        declared stalled (``None`` disables the per-task deadline).
    heartbeat_interval_s:
        How often workers beat; shipped to workers so both sides agree.
    heartbeat_timeout_s:
        Longest silence tolerated from a worker's heartbeat thread
        (``None`` disables heartbeat monitoring).  Must comfortably
        exceed ``heartbeat_interval_s`` to tolerate scheduling noise.
    """

    task_timeout_s: float | None = None
    heartbeat_interval_s: float = 0.5
    heartbeat_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.task_timeout_s is not None and self.task_timeout_s <= 0.0:
            raise ConfigurationError(
                f"task_timeout_s must be positive (or None), "
                f"got {self.task_timeout_s}"
            )
        if self.heartbeat_interval_s <= 0.0:
            raise ConfigurationError(
                f"heartbeat_interval_s must be positive, "
                f"got {self.heartbeat_interval_s}"
            )
        if self.heartbeat_timeout_s is not None:
            if self.heartbeat_timeout_s <= self.heartbeat_interval_s:
                raise ConfigurationError(
                    "heartbeat_timeout_s must exceed heartbeat_interval_s "
                    f"({self.heartbeat_timeout_s} <= "
                    f"{self.heartbeat_interval_s})"
                )

    @property
    def enabled(self) -> bool:
        """Whether any detector is armed."""
        return (self.task_timeout_s is not None
                or self.heartbeat_timeout_s is not None)


#: Watchdog disabled: no deadlines, no heartbeat monitoring.
NO_WATCHDOG = WatchdogConfig()


@dataclass(frozen=True)
class StallVerdict:
    """One stalled worker, as diagnosed by :meth:`WorkerWatchdog.poll`.

    Attributes
    ----------
    worker_id:
        The worker the coordinator should kill and replace.
    reason:
        ``"task_deadline_exceeded"`` or ``"heartbeat_lost"``.
    task_id:
        The task running on the worker at diagnosis time (``None`` if
        the worker was idle — possible only for heartbeat loss).
    elapsed_s:
        How long the task had been running / the heartbeat silent.
    limit_s:
        The configured limit that was crossed.
    """

    worker_id: int
    reason: str
    task_id: int | None
    elapsed_s: float
    limit_s: float


@dataclass
class _WorkerState:
    """Everything the watchdog tracks about one live worker."""

    last_heartbeat: float
    task_id: int | None = None
    task_started: float = 0.0
    verdicts: int = field(default=0)


class WorkerWatchdog:
    """Tracks worker liveness and diagnoses stalls.

    Observations arrive with explicit ``now`` timestamps from the
    caller's monotonic clock; :meth:`poll` compares them against the
    configured limits.  A worker that triggers a verdict is dropped
    from tracking immediately (the coordinator is about to kill it), so
    one stall yields exactly one verdict.
    """

    def __init__(self, config: WatchdogConfig) -> None:
        self._config = config
        self._workers: dict[int, _WorkerState] = {}

    @property
    def config(self) -> WatchdogConfig:
        """The limits this watchdog enforces."""
        return self._config

    def worker_started(self, worker_id: int, now: float) -> None:
        """A (re)spawned worker enters tracking with a fresh heartbeat."""
        self._workers[worker_id] = _WorkerState(last_heartbeat=now)

    def worker_gone(self, worker_id: int) -> None:
        """The coordinator reaped/killed the worker; stop tracking it."""
        self._workers.pop(worker_id, None)

    def heartbeat(self, worker_id: int, now: float) -> None:
        """The worker's heartbeat thread checked in."""
        state = self._workers.get(worker_id)
        if state is not None:
            state.last_heartbeat = now

    def task_started(self, worker_id: int, task_id: int, now: float) -> None:
        """The worker began running ``task_id``; its deadline starts now."""
        state = self._workers.get(worker_id)
        if state is not None:
            state.task_id = task_id
            state.task_started = now

    def task_finished(self, worker_id: int) -> None:
        """The worker reported its task done/failed; deadline disarmed."""
        state = self._workers.get(worker_id)
        if state is not None:
            state.task_id = None

    def running_task(self, worker_id: int) -> int | None:
        """The task currently attributed to ``worker_id``, if any."""
        state = self._workers.get(worker_id)
        return state.task_id if state is not None else None

    def poll(self, now: float) -> list[StallVerdict]:
        """Diagnose stalled workers as of ``now``.

        Returns at most one verdict per worker; diagnosed workers leave
        tracking so repeated polls never re-report the same stall.  The
        per-task deadline is checked first — it is the more precise
        diagnosis (a wedged task also stops heartbeats eventually, but
        the deadline names the offending task).
        """
        if not self._config.enabled:
            return []
        verdicts: list[StallVerdict] = []
        task_limit = self._config.task_timeout_s
        beat_limit = self._config.heartbeat_timeout_s
        for worker_id, state in list(self._workers.items()):
            verdict: StallVerdict | None = None
            if (task_limit is not None and state.task_id is not None
                    and now - state.task_started >= task_limit):
                verdict = StallVerdict(
                    worker_id=worker_id, reason=REASON_TASK_DEADLINE,
                    task_id=state.task_id,
                    elapsed_s=now - state.task_started, limit_s=task_limit,
                )
            elif (beat_limit is not None
                    and now - state.last_heartbeat >= beat_limit):
                verdict = StallVerdict(
                    worker_id=worker_id, reason=REASON_HEARTBEAT_LOST,
                    task_id=state.task_id,
                    elapsed_s=now - state.last_heartbeat, limit_s=beat_limit,
                )
            if verdict is not None:
                verdicts.append(verdict)
                del self._workers[worker_id]
        return verdicts
