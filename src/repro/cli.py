"""Command-line interface: ``python -m repro`` / ``repro-cdt``.

Subcommands:

* ``list`` — show every registered experiment.
* ``run <experiment-id> [...]`` — run experiments and print their text
  tables (``--paper-scale`` for Table II sizes, ``--seed N``).
* ``quickstart`` — run a small end-to-end trading simulation
  (``--strict`` checks every round against the paper's invariants).
* ``replicate`` — repeat the comparison over several seeds.
* ``trace`` — generate a synthetic taxi trace; ``trace summarize``
  rolls up a JSONL run trace written with ``--trace``; ``trace
  critical-path`` names the wall-clock-dominating phase chain.
* ``profile`` — run a profiled simulation and print the top-N hotspot
  table (rounds/sec, per-phase self time, peak memory); ``--out``
  writes the flat JSON profile.
* ``bench`` — the benchmark history store: ``record`` appends a
  machine-tagged measurement, ``history`` lists records, ``compare``
  gates regressions against the committed baseline (non-zero exit).
* ``serve`` — run the market as a service on the event-driven runtime:
  sellers arrive/depart (seeded churn or a recorded session script
  replayed by the load generator) while the CMAB-HS round loop fires as
  scheduled events; SIGINT drains gracefully into a resumable
  checkpoint and exits 0.
* ``verify`` — run the equilibrium verification subsystem (differential
  oracles, golden-trace regression, strict-mode invariant runs, the
  runtime batch-equivalence/churn-golden checks, and the scalar-vs-
  vector kernels differential); exits non-zero on any failure.
  ``--update-goldens`` blesses new goldens.
* ``chaos`` — drill the resilience layers with seeded fault storms
  (interrupts, checkpoint corruption, worker crashes and stalls) and
  verify every recovered sweep is bit-identical to its fault-free
  golden; exits non-zero on any recovery-equivalence violation.
* ``lint`` — run the :mod:`repro.lint` determinism/correctness static
  analyser over source files; exits non-zero on any finding.

``quickstart`` and ``replicate`` accept ``--trace PATH.jsonl`` (write a
structured event trace of the run) and ``--log-level LEVEL`` (configure
the library's stdlib logging).
"""

from __future__ import annotations

import argparse
import sys

from repro.exceptions import ReproError

__all__ = ["main", "build_parser"]


def _distribution_version() -> str:
    """The installed distribution's version, or the in-tree fallback.

    ``importlib.metadata`` sees the version pinned in ``pyproject.toml``
    once the package is installed; a source checkout on ``PYTHONPATH``
    is not a distribution, so fall back to ``repro.version``.
    """
    from importlib.metadata import PackageNotFoundError, version

    try:
        return version("repro")
    except PackageNotFoundError:
        from repro.version import __version__

        return __version__


def _add_fault_tolerance_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared fault-injection and checkpoint/resume flags."""
    parser.add_argument(
        "--faults", metavar="SPEC", default=None,
        help=(
            "inject seller failures, e.g. "
            "'dropout=0.2,corrupt=0.05,stall=0.01' (default: none)"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="periodically write crash-safe checkpoints into DIR",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="continue from the checkpoints in --checkpoint-dir",
    )


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared retry/timeout flags (default: no-op, byte-identical)."""
    parser.add_argument(
        "--timeout-s", type=float, default=None, metavar="S",
        help=(
            "per-task wall-clock budget in seconds: arms the parallel "
            "watchdog and bounds checkpoint-write retries "
            "(default: no deadline)"
        ),
    )
    parser.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help=(
            "retry transient checkpoint-I/O failures and worker "
            "crashes up to N times with seeded exponential backoff "
            "(default: no retries beyond the built-in crash handling)"
        ),
    )


def _build_resilience(args: argparse.Namespace):
    """The :class:`ResiliencePolicy` requested by the shared flags."""
    from repro.resilience import ResiliencePolicy

    return ResiliencePolicy.from_cli(args.timeout_s, args.max_retries)


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared tracing and logging flags."""
    parser.add_argument(
        "--trace", metavar="PATH", default=None, dest="trace_out",
        help=(
            "write a structured JSONL event trace of the run to PATH "
            "(inspect it with 'trace summarize PATH')"
        ),
    )
    parser.add_argument(
        "--log-level", metavar="LEVEL", default=None,
        choices=("debug", "info", "warning", "error", "critical"),
        help="configure library logging at LEVEL (default: off)",
    )


def _build_observability(args: argparse.Namespace):
    """The (tracer, metrics) pair requested by the CLI flags.

    Returns ``(None, None)`` when ``--trace`` was not given; otherwise
    a JSONL-backed :class:`~repro.obs.Tracer` (the sink opens eagerly,
    so unwritable paths fail fast with a clean error) plus a fresh
    :class:`~repro.obs.MetricsRegistry`.
    """
    from repro.obs import JsonlSink, MetricsRegistry, Tracer, configure_logging

    if args.log_level:
        configure_logging(args.log_level)
    if not args.trace_out:
        return None, None
    return Tracer(JsonlSink(args.trace_out)), MetricsRegistry()


def _finish_observability(args: argparse.Namespace, tracer, metrics) -> None:
    """Close the tracer and print where the telemetry went."""
    if tracer is None:
        return
    count = tracer.num_events
    tracer.close()
    print(f"\nwrote {count} trace events to {args.trace_out} "
          f"(inspect with 'trace summarize {args.trace_out}')")
    if metrics is not None and metrics.counters:
        counters = " ".join(
            f"{name}={value}" for name, value in sorted(metrics.counters.items())
        )
        print(f"counters: {counters}")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-cdt",
        description=(
            "CMAB-HS crowdsensing data trading — reproduction toolkit"
        ),
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {_distribution_version()}",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser(
        "run", help="run one or more experiments"
    )
    run_parser.add_argument(
        "experiments", nargs="+",
        help="experiment ids (for example fig7 fig13 table2), or 'all'",
    )
    run_parser.add_argument(
        "--paper-scale", action="store_true",
        help="use the paper's Table II sizes (slow)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=0, help="master seed (default 0)"
    )
    run_parser.add_argument(
        "--charts", action="store_true",
        help="append an ASCII chart per panel",
    )
    run_parser.add_argument(
        "--save-dir", metavar="DIR",
        help="also save each result as DIR/<experiment-id>.json",
    )
    run_parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help=(
            "fan the experiments out across N crash-tolerant worker "
            "processes (default: 1, serial)"
        ),
    )
    _add_resilience_arguments(run_parser)

    quick_parser = subparsers.add_parser(
        "quickstart", help="run a small end-to-end trading simulation"
    )
    quick_parser.add_argument("--sellers", type=int, default=50)
    quick_parser.add_argument("--selected", type=int, default=5)
    quick_parser.add_argument("--rounds", type=int, default=1_000)
    quick_parser.add_argument("--seed", type=int, default=0)
    quick_parser.add_argument(
        "--strict", action="store_true",
        help=(
            "check every round against the paper's analytic invariants "
            "and fail fast on the first violation"
        ),
    )
    _add_fault_tolerance_arguments(quick_parser)
    _add_resilience_arguments(quick_parser)
    _add_observability_arguments(quick_parser)

    replicate_parser = subparsers.add_parser(
        "replicate",
        help="repeat the policy comparison over several seeds",
    )
    replicate_parser.add_argument("--sellers", type=int, default=50)
    replicate_parser.add_argument("--selected", type=int, default=5)
    replicate_parser.add_argument("--rounds", type=int, default=1_000)
    replicate_parser.add_argument("--seeds", type=int, default=5,
                                  help="number of replications")
    replicate_parser.add_argument("--first-seed", type=int, default=0)
    replicate_parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help=(
            "shard the seeds across N crash-tolerant worker processes; "
            "metrics are bit-identical to a serial sweep (default: 1)"
        ),
    )
    _add_fault_tolerance_arguments(replicate_parser)
    _add_resilience_arguments(replicate_parser)
    _add_observability_arguments(replicate_parser)

    serve_parser = subparsers.add_parser(
        "serve",
        help=(
            "run the market as a service on the event-driven runtime "
            "(seeded churn, session scripts, graceful SIGINT shutdown)"
        ),
    )
    serve_parser.add_argument("--sellers", type=int, default=50)
    serve_parser.add_argument("--selected", type=int, default=5)
    serve_parser.add_argument("--rounds", type=int, default=1_000)
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument(
        "--arrival-rate", type=float, default=0.0, metavar="P",
        help="per-round probability an offline slot comes online",
    )
    serve_parser.add_argument(
        "--departure-rate", type=float, default=0.0, metavar="P",
        help="per-round probability an online seller departs",
    )
    serve_parser.add_argument(
        "--min-online", type=int, default=1, metavar="N",
        help="floor on the online population under churn (default 1)",
    )
    serve_parser.add_argument(
        "--drift-amplitude", type=float, default=0.0, metavar="A",
        help="sinusoidal arrival-intensity drift amplitude (default 0)",
    )
    serve_parser.add_argument(
        "--drift-period", type=float, default=200.0, metavar="T",
        help="drift period in rounds (default 200)",
    )
    serve_parser.add_argument(
        "--script", metavar="SCRIPT.json", default=None,
        help=(
            "replay a recorded session script through the service "
            "instead of trading continuously"
        ),
    )
    serve_parser.add_argument(
        "--checkpoint", metavar="PATH.npz", default=None,
        help="checkpoint file (written on graceful shutdown and, with "
             "--checkpoint-every, periodically)",
    )
    serve_parser.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="also checkpoint every N completed rounds (default: off)",
    )
    serve_parser.add_argument(
        "--resume", action="store_true",
        help="continue from --checkpoint if it exists",
    )
    _add_observability_arguments(serve_parser)

    verify_parser = subparsers.add_parser(
        "verify",
        help=(
            "verify the implementation: differential oracles, golden "
            "traces, strict-mode invariant runs"
        ),
    )
    verify_parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for the randomized oracle games (default 0)",
    )
    verify_parser.add_argument(
        "--oracle-cases", type=int, default=12, metavar="N",
        help="randomized games per differential oracle (default 12)",
    )
    verify_parser.add_argument(
        "--strict-rounds", type=int, default=60, metavar="N",
        help="rounds per strict-mode scenario (default 60)",
    )
    verify_parser.add_argument(
        "--goldens-dir", metavar="DIR", default=None,
        help="override the golden store location (default: checked-in)",
    )
    verify_parser.add_argument(
        "--only", action="append",
        choices=("oracles", "goldens", "strict", "runtime", "kernels"),
        metavar="SECTION",
        help=(
            "run only this section (repeatable; "
            "oracles, goldens, strict, runtime, or kernels)"
        ),
    )
    verify_parser.add_argument(
        "--update-goldens", action="store_true",
        help="recompute and rewrite the golden files instead of verifying",
    )
    verify_parser.add_argument(
        "--report", metavar="PATH.json", default=None,
        help="also write the verification report as JSON to PATH",
    )

    lint_parser = subparsers.add_parser(
        "lint",
        help=(
            "run the determinism/correctness static analyser "
            "(single-file rules RL001-RL006; whole-program rules "
            "RL101-RL105 with --flow) over source files"
        ),
    )
    lint_parser.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    lint_parser.add_argument(
        "--select", action="append", metavar="RULES", default=None,
        help=(
            "comma-separated rule ids to run, e.g. RL001,RL103 "
            "(repeatable; default: all rules; naming a flow rule "
            "implies --flow)"
        ),
    )
    lint_parser.add_argument(
        "--flow", action="store_true",
        help=(
            "also run the whole-program flow rules (RL101-RL105) over "
            "a project-wide call graph"
        ),
    )
    lint_parser.add_argument(
        "--diff", metavar="REV", default=None,
        help=(
            "flow mode: only report on functions changed since git "
            "revision REV plus their call-graph impact set (the index "
            "and summaries stay whole-program)"
        ),
    )
    lint_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help=(
            "shard the single-file rules over N parallel workers "
            "(default: 1; finding order is deterministic either way)"
        ),
    )
    lint_parser.add_argument(
        "--cache", metavar="PATH.json", default=None,
        help=(
            "flow mode: persist per-file analysis facts keyed by "
            "content hash so unchanged files skip re-extraction"
        ),
    )
    lint_parser.add_argument(
        "--baseline", metavar="PATH.json", default=None,
        help=(
            "suppress findings whose fingerprints appear in this "
            "baseline file (exit code then reflects new findings only)"
        ),
    )
    lint_parser.add_argument(
        "--write-baseline", metavar="PATH.json", default=None,
        help=(
            "write the surviving findings' fingerprints to PATH and "
            "exit 0 (accepts the current state as the baseline)"
        ),
    )
    lint_parser.add_argument(
        "--strict-pragmas", action="store_true",
        help=(
            "treat unused '# repro-lint:' suppression pragmas (RL007) "
            "as errors instead of warnings"
        ),
    )
    lint_parser.add_argument(
        "--format", choices=("human", "json", "sarif"), default="human",
        help="report format on stdout (default: human)",
    )
    lint_parser.add_argument(
        "--report", metavar="PATH", default=None,
        help=(
            "also write the report to PATH (JSON report schema, or "
            "SARIF when --format sarif)"
        ),
    )
    lint_parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )

    chaos_parser = subparsers.add_parser(
        "chaos",
        help=(
            "drill the resilience layers with seeded fault storms and "
            "verify bit-identical recovery"
        ),
    )
    chaos_parser.add_argument(
        "--seed", type=int, default=0,
        help="master seed of the fault storm (default 0)",
    )
    chaos_parser.add_argument(
        "--rounds", type=int, default=3, metavar="N",
        help="independent chaos rounds (default 3)",
    )
    chaos_parser.add_argument(
        "--budget", type=int, default=3, metavar="B",
        help="maximum faults injected per round (default 3)",
    )
    chaos_parser.add_argument(
        "--no-process-faults", action="store_true",
        help=(
            "skip worker-crash/stall faults (no subprocesses; "
            "fastest smoke drill)"
        ),
    )
    chaos_parser.add_argument(
        "--report", metavar="PATH.json", default=None,
        help="also write the chaos report as JSON to PATH",
    )
    _add_observability_arguments(chaos_parser)

    trace_parser = subparsers.add_parser(
        "trace",
        help="generate a synthetic taxi trace and derive PoIs/sellers",
    )
    trace_parser.add_argument("--trips", type=int, default=27_465,
                              help="trip count (default: paper scale)")
    trace_parser.add_argument("--taxis", type=int, default=300)
    trace_parser.add_argument("--pois", type=int, default=10)
    trace_parser.add_argument("--sellers", type=int, default=50)
    trace_parser.add_argument("--seed", type=int, default=0)
    trace_parser.add_argument("--out", metavar="CSV",
                              help="also save the trace as CSV")
    trace_subparsers = trace_parser.add_subparsers(
        dest="trace_command", required=False,
        metavar="{summarize,critical-path}",
    )
    summarize_parser = trace_subparsers.add_parser(
        "summarize",
        help="summarise a JSONL run trace written with --trace",
    )
    summarize_parser.add_argument(
        "path", metavar="TRACE.jsonl",
        help="the JSONL trace file to roll up",
    )
    critical_parser = trace_subparsers.add_parser(
        "critical-path",
        help=(
            "name the wall-clock-dominating phase chain of a JSONL "
            "run trace"
        ),
    )
    critical_parser.add_argument(
        "path", metavar="TRACE.jsonl",
        help="the JSONL trace file to analyse",
    )
    critical_parser.add_argument(
        "--report", metavar="PATH.json", default=None,
        help="also write the analysis as JSON to PATH",
    )

    profile_parser = subparsers.add_parser(
        "profile",
        help=(
            "run a profiled simulation and print the top-N hotspot "
            "table (rounds/sec, per-phase self time, peak memory)"
        ),
    )
    profile_parser.add_argument("--sellers", type=int, default=300)
    profile_parser.add_argument("--selected", type=int, default=10)
    profile_parser.add_argument("--rounds", type=int, default=500)
    profile_parser.add_argument("--seeds", type=int, default=1,
                                help="replication seeds to profile over")
    profile_parser.add_argument("--seed", type=int, default=0,
                                help="first seed (default 0)")
    profile_parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="profile a parallel sweep across N workers (default: serial)",
    )
    profile_parser.add_argument(
        "--policy", default="cmab-hs",
        choices=("cmab-hs", "optimal", "epsilon-first", "random", "all"),
        help="which policy to drive (default: cmab-hs)",
    )
    profile_parser.add_argument(
        "--memory", default="rss", choices=("off", "rss", "tracemalloc"),
        help=(
            "memory probe: cheap process peak RSS (default), exact "
            "tracemalloc peak (slow), or off"
        ),
    )
    profile_parser.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="hotspot table rows (default 10)",
    )
    profile_parser.add_argument(
        "--out", metavar="PATH.json", default=None,
        help="also write the flat JSON profile to PATH",
    )

    bench_parser = subparsers.add_parser(
        "bench",
        help=(
            "benchmark history store: record measurements, list "
            "history, gate regressions against the committed baseline"
        ),
    )
    bench_subparsers = bench_parser.add_subparsers(
        dest="bench_command", required=True,
        metavar="{record,history,compare}",
    )
    record_parser = bench_subparsers.add_parser(
        "record",
        help="run a profiled simulation and append one history record",
    )
    record_parser.add_argument(
        "--store", metavar="BENCH.json", default="BENCH_micro.json",
        help="history file to append to (default: BENCH_micro.json)",
    )
    record_parser.add_argument(
        "--name", required=True,
        help="benchmark name, e.g. engine.scalar.m300",
    )
    record_parser.add_argument("--sellers", type=int, default=300)
    record_parser.add_argument("--selected", type=int, default=10)
    record_parser.add_argument("--rounds", type=int, default=500)
    record_parser.add_argument("--seeds", type=int, default=1,
                               help="replication seeds (default 1)")
    record_parser.add_argument("--seed", type=int, default=0)
    record_parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="measure a parallel sweep across N workers",
    )
    record_parser.add_argument(
        "--scale", default=None,
        help="free-form scale tag stored with the record (e.g. small)",
    )
    record_parser.add_argument(
        "--baseline", action="store_true",
        help=(
            "flag the record as the committed baseline future "
            "'bench compare' runs are judged against"
        ),
    )
    history_parser = bench_subparsers.add_parser(
        "history", help="list the records of a history file",
    )
    history_parser.add_argument(
        "store", metavar="BENCH.json", nargs="?",
        default="BENCH_micro.json",
        help="history file to list (default: BENCH_micro.json)",
    )
    history_parser.add_argument(
        "--name", default=None, help="only this benchmark name",
    )
    compare_parser = bench_subparsers.add_parser(
        "compare",
        help=(
            "judge the newest measurements against the committed "
            "baselines; exits non-zero on regression"
        ),
    )
    compare_parser.add_argument(
        "stores", metavar="BENCH.json", nargs="*",
        default=["BENCH_micro.json"],
        help="history files to judge (default: BENCH_micro.json)",
    )
    compare_parser.add_argument(
        "--max-slowdown", type=float, default=0.20, metavar="FRAC",
        help=(
            "fail when rounds/sec drops by more than this fraction of "
            "the baseline (default 0.20)"
        ),
    )
    compare_parser.add_argument(
        "--max-memory-growth", type=float, default=0.25, metavar="FRAC",
        help=(
            "fail when peak memory grows by more than this fraction of "
            "the baseline (default 0.25)"
        ),
    )
    compare_parser.add_argument(
        "--report", metavar="PATH.json", default=None,
        help="also write the verdict as JSON to PATH",
    )
    return parser


def _command_list() -> int:
    from repro.experiments import list_experiments

    for experiment_id, title in list_experiments():
        print(f"{experiment_id:<10} {title}")
    return 0


def _experiment_task_runner(payload, context):
    """Worker-side runner for ``run --workers N``.

    The payload and return value cross process boundaries, so both are
    plain picklable data: ``(experiment_id, scale_value, seed)`` in, the
    experiment result's JSON dict out.
    """
    experiment_id, scale_value, seed = payload
    from repro.experiments import Scale, run_experiment
    from repro.sim.persistence import experiment_result_to_dict

    result = run_experiment(experiment_id, Scale(scale_value), seed)
    return experiment_result_to_dict(result)


def _command_run(args: argparse.Namespace) -> int:
    import os

    from repro.experiments import Scale, list_experiments, run_experiment
    from repro.experiments.reporting import render_experiment
    from repro.sim.persistence import save_experiment_result

    # --paper-scale forces Table II sizes; otherwise the REPRO_FULL_SCALE
    # environment variable decides (default: small).
    scale = Scale.PAPER if args.paper_scale else Scale.from_environment()
    wanted = list(args.experiments)
    if wanted == ["all"]:
        wanted = [experiment_id for experiment_id, __ in list_experiments()]
    if args.workers > 1 and len(wanted) > 1:
        from repro.parallel import ParallelExecutor
        from repro.resilience import WatchdogConfig
        from repro.sim.persistence import experiment_result_from_dict

        resilience = _build_resilience(args)
        # One experiment per chunk: the work units are few and heavy,
        # so fine-grained scheduling beats round-trip amortisation.
        executor = ParallelExecutor(
            _experiment_task_runner,
            workers=min(args.workers, len(wanted)),
            chunk_size=1,
            retry_policy=(resilience.retry
                          if not resilience.retry.is_noop else None),
            watchdog=(
                WatchdogConfig(task_timeout_s=resilience.deadline.timeout_s)
                if resilience.deadline.enabled else None
            ),
        )
        payloads = [(experiment_id, scale.value, args.seed)
                    for experiment_id in wanted]
        results = [
            experiment_result_from_dict(
                task.value,
                what=f"experiment {wanted[task.task_id]!r} worker result",
            )
            for task in executor.map(payloads)
        ]
    else:
        results = [run_experiment(experiment_id, scale, args.seed)
                   for experiment_id in wanted]
    for experiment_id, result in zip(wanted, results):
        if args.charts:
            print(render_experiment(result))
        else:
            print(result.to_text())
        print()
        if args.save_dir:
            os.makedirs(args.save_dir, exist_ok=True)
            path = os.path.join(args.save_dir, f"{experiment_id}.json")
            save_experiment_result(result, path)
            print(f"saved {path}")
    return 0


def _command_quickstart(args: argparse.Namespace) -> int:
    import os

    from repro.bandits import (
        EpsilonFirstPolicy,
        OptimalPolicy,
        RandomPolicy,
        UCBPolicy,
    )
    from repro.faults import FaultLog, parse_fault_spec
    from repro.sim import (
        PolicyComparison,
        SimulationConfig,
        TradingSimulator,
    )

    config = SimulationConfig(
        num_sellers=args.sellers,
        num_selected=args.selected,
        num_rounds=args.rounds,
        seed=args.seed,
    )
    simulator = TradingSimulator(config)
    policies = [
        OptimalPolicy(simulator.population.expected_qualities),
        UCBPolicy(),
        EpsilonFirstPolicy(0.1),
        RandomPolicy(),
    ]
    spec = parse_fault_spec(args.faults)
    fault_model = simulator.fault_model(spec) if spec is not None else None
    tracer, metrics = _build_observability(args)
    if args.checkpoint_dir:
        os.makedirs(args.checkpoint_dir, exist_ok=True)
    fault_logs: dict[str, FaultLog] = {}
    comparison = PolicyComparison()
    for policy in policies:
        log = FaultLog() if fault_model is not None else None
        checkpoint_path = (
            os.path.join(args.checkpoint_dir,
                         f"quickstart-{policy.name}.npz")
            if args.checkpoint_dir else None
        )
        comparison.add(simulator.run(
            policy, args.rounds,
            fault_model=fault_model,
            fault_log=log,
            checkpoint_path=checkpoint_path,
            checkpoint_every=(max(1, args.rounds // 10)
                              if checkpoint_path else 0),
            resume=args.resume and checkpoint_path is not None,
            tracer=tracer,
            metrics=metrics,
            strict=args.strict,
            resilience=_build_resilience(args),
        ))
        if log is not None:
            fault_logs[policy.name] = log
    print(
        f"M={config.num_sellers} K={config.num_selected} "
        f"L={config.num_pois} N={args.rounds}"
    )
    print(f"{'policy':>12} {'revenue':>12} {'regret':>10} "
          f"{'PoC/round':>10} {'PoP/round':>10} {'PoS/round':>10}")
    for name, run in comparison.runs.items():
        print(
            f"{name:>12} {run.total_realized_revenue:>12.1f} "
            f"{run.final_regret:>10.1f} {run.mean_consumer_profit:>10.2f} "
            f"{run.mean_platform_profit:>10.2f} "
            f"{run.mean_seller_profit:>10.3f}"
        )
    if spec is not None:
        print(f"\nfault injection: dropout={spec.dropout_rate} "
              f"corrupt={spec.corruption_rate} stall={spec.stall_rate}")
        for name, log in fault_logs.items():
            print(f"  {name}: {log.summary() or 'no events'}")
    _finish_observability(args, tracer, metrics)
    return 0


def _command_replicate(args: argparse.Namespace) -> int:
    import os

    from repro.bandits import (
        EpsilonFirstPolicy,
        OptimalPolicy,
        RandomPolicy,
        UCBPolicy,
    )
    from repro.faults import parse_fault_spec
    from repro.sim import SimulationConfig, replicate_comparison

    config = SimulationConfig(
        num_sellers=args.sellers,
        num_selected=args.selected,
        num_rounds=args.rounds,
    )

    def factory(qualities):
        return [
            OptimalPolicy(qualities),
            UCBPolicy(),
            EpsilonFirstPolicy(0.1),
            RandomPolicy(),
        ]

    spec = parse_fault_spec(args.faults)
    tracer, metrics = _build_observability(args)
    checkpoint_path = None
    if args.checkpoint_dir:
        os.makedirs(args.checkpoint_dir, exist_ok=True)
        checkpoint_path = os.path.join(args.checkpoint_dir,
                                       "replicate-sweep.json")
    result = replicate_comparison(
        config, factory, num_seeds=args.seeds, first_seed=args.first_seed,
        fault_spec=spec,
        checkpoint_path=checkpoint_path,
        resume=args.resume and checkpoint_path is not None,
        workers=args.workers,
        tracer=tracer,
        metrics=metrics,
        resilience=_build_resilience(args),
    )
    print(f"M={config.num_sellers} K={config.num_selected} "
          f"N={config.num_rounds}, seeds={result.seeds}"
          + (f", workers={args.workers}" if args.workers > 1 else ""))
    if spec is not None:
        print(f"fault injection: dropout={spec.dropout_rate} "
              f"corrupt={spec.corruption_rate} stall={spec.stall_rate}")
    print(result.to_table())
    separation = result.separation("CMAB-HS", "random")
    print(f"\nCMAB-HS vs random revenue separation: "
          f"{separation:.1f} pooled standard deviations")
    _finish_observability(args, tracer, metrics)
    return 0


def _command_chaos(args: argparse.Namespace) -> int:
    from repro.resilience.chaos import ChaosConfig, run_chaos

    tracer, metrics = _build_observability(args)
    report = run_chaos(
        ChaosConfig(
            seed=args.seed,
            rounds=args.rounds,
            budget=args.budget,
            include_process_faults=not args.no_process_faults,
        ),
        tracer=tracer,
        metrics=metrics,
    )
    print(report.to_text())
    if args.report:
        from repro.exceptions import PersistenceError
        from repro.sim.persistence import atomic_write_json

        try:
            atomic_write_json(args.report, report.to_dict())
        except OSError as error:
            raise PersistenceError(
                f"cannot write chaos report {args.report}: {error}"
            ) from error
        print(f"wrote report to {args.report}")
    _finish_observability(args, tracer, metrics)
    return 0 if report.passed else 1


def _command_serve(args: argparse.Namespace) -> int:
    from repro.exceptions import GracefulShutdownInterrupt
    from repro.quality.drift import SinusoidalDrift
    from repro.resilience.shutdown import GracefulShutdown
    from repro.runtime import (
        ChurnSpec,
        MarketRuntime,
        MarketService,
        load_script,
        replay_script,
    )
    from repro.sim import SimulationConfig

    config = SimulationConfig(
        num_sellers=args.sellers,
        num_selected=args.selected,
        num_rounds=args.rounds,
        seed=args.seed,
    )
    drift = (SinusoidalDrift(amplitude=args.drift_amplitude,
                             period=args.drift_period)
             if args.drift_amplitude > 0.0 else None)
    churn = ChurnSpec(arrival_rate=args.arrival_rate,
                      departure_rate=args.departure_rate,
                      min_online=args.min_online, drift=drift)
    tracer, metrics = _build_observability(args)
    print(f"serving market: M={config.num_sellers} "
          f"K={config.num_selected} N={config.num_rounds} "
          f"seed={config.seed}"
          + (f" churn=arrival:{churn.arrival_rate}/"
             f"departure:{churn.departure_rate}" if churn.enabled else ""))

    if args.script:
        # Scripted mode: the load generator drives the service through
        # a recorded register/quote/trade/close session script.
        service = MarketService(config, churn=churn if churn.enabled
                                else None, tracer=tracer, metrics=metrics)
        report = replay_script(service, load_script(args.script))
        status = service.status()
        print(f"replayed {args.script}: "
              f"{report.sessions_opened} sessions opened, "
              f"{report.sessions_closed} closed, "
              f"{report.rounds_traded} rounds traded, "
              f"{report.quotes} quotes "
              f"({report.sessions_per_s:,.0f} sessions/s)")
        print(f"ledger: {status['trades']} trades, "
              f"digest {report.ledger_digest[:16]}…")
        if args.checkpoint:
            service.runtime.save(args.checkpoint)
            print(f"checkpoint written to {args.checkpoint}")
        _finish_observability(args, tracer, metrics)
        return 0

    # Continuous mode: every slot starts online and the market trades
    # round after round (with organic churn if configured) until the
    # round budget is spent or a SIGINT/SIGTERM drains it gracefully.
    runtime = MarketRuntime(config, churn=churn if churn.enabled else None,
                            tracer=tracer, metrics=metrics)
    with GracefulShutdown() as stop:
        try:
            run_metrics = runtime.run(
                shutdown=stop,
                checkpoint_path=args.checkpoint,
                checkpoint_every=args.checkpoint_every,
                resume=args.resume,
            )
        except GracefulShutdownInterrupt as interrupt:
            print(f"\ngraceful shutdown at round {runtime.next_round}: "
                  f"{interrupt}")
            _finish_observability(args, tracer, metrics)
            return 0
    summary = run_metrics.summary()
    print(f"completed {runtime.next_round} rounds: "
          f"revenue={summary['total_revenue']:.1f} "
          f"regret={summary['regret']:.1f}")
    print(f"sessions: {runtime.sessions_opened} opened, "
          f"{runtime.sessions_closed} closed; "
          f"messages: {runtime.kernel.messages_delivered} delivered, "
          f"{runtime.kernel.messages_dropped} dropped")
    print(f"ledger: {len(runtime.ledger)} trades, "
          f"digest {runtime.ledger.digest()[:16]}…")
    _finish_observability(args, tracer, metrics)
    return 0


def _command_verify(args: argparse.Namespace) -> int:
    from repro.sim.persistence import atomic_write_json
    from repro.verify import (
        run_verification,
        update_goldens,
        update_runtime_golden,
    )

    if args.update_goldens:
        for path in update_goldens(args.goldens_dir):
            print(f"wrote {path}")
        print(f"wrote {update_runtime_golden(args.goldens_dir)}")
        return 0
    sections = tuple(args.only) if args.only else None
    report = run_verification(
        seed=args.seed,
        oracle_cases=args.oracle_cases,
        goldens_dir=args.goldens_dir,
        sections=sections,
        strict_rounds=args.strict_rounds,
    )
    print(report.to_text())
    if args.report:
        from repro.exceptions import PersistenceError

        try:
            atomic_write_json(args.report, report.to_dict())
        except OSError as error:
            raise PersistenceError(
                f"cannot write verification report {args.report}: {error}"
            ) from error
        print(f"wrote report to {args.report}")
    return 0 if report.passed else 1


def _command_lint(args: argparse.Namespace) -> int:
    import json

    from repro.lint import (
        LintSession,
        all_flow_rules,
        all_rules,
        filter_baselined,
        findings_to_json,
        findings_to_sarif,
        flow_rule_meta,
        load_baseline,
        render_findings,
        run_flow,
        write_baseline,
    )

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.title}")
            print(f"       {rule.rationale}")
        for rule_id, meta in sorted(flow_rule_meta().items()):
            tag = " [flow]" if rule_id != "RL007" else ""
            print(f"{rule_id}  {meta['title']}{tag}")
            print(f"       {meta['rationale']}")
        return 0

    classic_ids = {rule.rule_id for rule in all_rules()}
    flow_ids = {rule.rule_id for rule in all_flow_rules()}
    classic_select = flow_select = None
    run_classic_pass = True
    run_flow_pass = args.flow or args.diff is not None
    if args.select:
        selected = [rule_id.strip().upper()
                    for chunk in args.select
                    for rule_id in chunk.split(",") if rule_id.strip()]
        unknown = [s for s in selected
                   if s not in classic_ids and s not in flow_ids]
        if unknown:
            from repro.exceptions import ConfigurationError

            raise ConfigurationError(
                f"unknown lint rule(s): {', '.join(sorted(unknown))}"
            )
        classic_select = [s for s in selected if s in classic_ids]
        flow_select = [s for s in selected if s in flow_ids]
        run_classic_pass = bool(classic_select)
        run_flow_pass = run_flow_pass or bool(flow_select)
        if run_flow_pass and not flow_select:
            flow_select = sorted(flow_ids)

    session = LintSession(args.paths, select=classic_select)
    findings = session.run_classic(jobs=args.jobs) if run_classic_pass \
        else []
    executed = list(session.rule_ids) if run_classic_pass else []
    if run_flow_pass:
        flow_result = run_flow(session, cache_path=args.cache,
                               diff_rev=args.diff, select=flow_select)
        findings.extend(flow_result.findings)
        executed.extend(sorted(flow_ids) if flow_select is None
                        else flow_select)
    findings.extend(session.orphan_findings(
        executed, strict=args.strict_pragmas))
    findings.sort()

    if args.write_baseline:
        count = write_baseline(args.write_baseline, findings)
        print(f"wrote {count} fingerprint(s) to {args.write_baseline}")
        return 0
    suppressed = 0
    if args.baseline:
        findings, suppressed = filter_baselined(
            findings, load_baseline(args.baseline))

    rule_meta = None
    if run_flow_pass:
        rule_meta = {}
        if run_classic_pass:
            rule_meta.update({
                rule.rule_id: {"title": rule.title,
                               "rationale": rule.rationale}
                for rule in session.rules
            })
        rule_meta.update(flow_rule_meta())
    if args.format == "sarif":
        report = findings_to_sarif(findings, rules=rule_meta)
        print(json.dumps(report, indent=2))
    else:
        report = findings_to_json(findings,
                                  files_checked=session.files_checked,
                                  rules=rule_meta)
        if args.format == "json":
            print(json.dumps(report, indent=2))
        else:
            print(render_findings(findings,
                                  files_checked=session.files_checked))
            if suppressed:
                print(f"({suppressed} baselined finding(s) suppressed)")
    if args.report:
        from repro.sim.persistence import atomic_write_json

        try:
            atomic_write_json(args.report, report)
        except OSError as error:
            from repro.exceptions import PersistenceError

            raise PersistenceError(
                f"cannot write lint report {args.report}: {error}"
            ) from error
        if args.format == "human":
            print(f"wrote report to {args.report}")
    return 1 if any(f.severity == "error" for f in findings) else 0


def _command_trace_summarize(args: argparse.Namespace) -> int:
    from repro.obs import summarize_trace

    print(summarize_trace(args.path).to_text())
    return 0


def _command_trace_critical_path(args: argparse.Namespace) -> int:
    from repro.obs import critical_path

    report = critical_path(args.path)
    print(report.to_text())
    if args.report:
        from repro.sim.persistence import atomic_write_json

        atomic_write_json(args.report, report.to_dict())
        print(f"wrote report to {args.report}")
    return 0


def _profile_policy_factory(choice: str):
    """``factory(qualities) -> [policies]`` for ``profile --policy``."""
    from repro.bandits import (
        EpsilonFirstPolicy,
        OptimalPolicy,
        RandomPolicy,
        UCBPolicy,
    )

    def factory(qualities):
        if choice == "all":
            return [
                OptimalPolicy(qualities),
                UCBPolicy(),
                EpsilonFirstPolicy(0.1),
                RandomPolicy(),
            ]
        if choice == "optimal":
            return [OptimalPolicy(qualities)]
        if choice == "epsilon-first":
            return [EpsilonFirstPolicy(0.1)]
        if choice == "random":
            return [RandomPolicy()]
        return [UCBPolicy()]

    return factory


def _run_profiled_sweep(args: argparse.Namespace, *,
                        policy: str = "cmab-hs", memory: str = "rss"):
    """One profiled replication sweep; returns the finished report."""
    from repro.obs import PhaseProfiler
    from repro.sim import SimulationConfig, replicate_comparison

    config = SimulationConfig(
        num_sellers=args.sellers,
        num_selected=args.selected,
        num_rounds=args.rounds,
    )
    profiler = PhaseProfiler(memory=memory)
    replicate_comparison(
        config, _profile_policy_factory(policy),
        num_seeds=args.seeds, first_seed=args.seed,
        workers=args.workers, profiler=profiler,
    )
    return profiler.report()


def _command_profile(args: argparse.Namespace) -> int:
    report = _run_profiled_sweep(args, policy=args.policy,
                                 memory=args.memory)
    print(f"M={args.sellers} K={args.selected} N={args.rounds} "
          f"seeds={args.seeds} policy={args.policy}"
          + (f" workers={args.workers}" if args.workers > 1 else ""))
    print(report.hotspot_table(args.top))
    if args.out:
        from repro.sim.persistence import atomic_write_json

        atomic_write_json(args.out, report.to_dict())
        print(f"\nwrote profile to {args.out}")
    return 0


def _command_bench_record(args: argparse.Namespace) -> int:
    from repro.obs import BenchStore
    from repro.obs.benchstore import BenchRecord

    report = _run_profiled_sweep(args)
    record = BenchRecord.measure(
        name=args.name,
        rounds=report.rounds,
        wall_s=report.wall_s,
        peak_mb=report.peak_memory_mb,
        sellers=args.sellers,
        selected=args.selected,
        scale=args.scale,
        baseline=args.baseline,
        extra=({"seeds": args.seeds, "workers": args.workers}
               if args.seeds > 1 or args.workers > 1 else None),
    )
    store = BenchStore(args.store)
    store.append(record)
    kind = "baseline" if args.baseline else "record"
    print(f"appended {kind} {args.name!r} to {args.store}: "
          f"{record.rounds_per_s:,.1f} rounds/s, "
          f"{record.wall_s:.3f}s wall"
          + (f", {record.peak_mb:.1f} MiB peak"
             if record.peak_mb is not None else ""))
    return 0


def _command_bench_history(args: argparse.Namespace) -> int:
    from repro.obs import BenchStore

    store = BenchStore(args.store)
    records = store.records(args.name)
    if not records:
        print(f"{args.store}: no records"
              + (f" named {args.name!r}" if args.name else ""))
        return 0
    print(f"{'name':<28} {'rounds/s':>12} {'peak MiB':>9} "
          f"{'wall':>9} {'sha':>9}  {'flags'}")
    for record in records:
        peak = (f"{record.peak_mb:>9.1f}" if record.peak_mb is not None
                else f"{'n/a':>9}")
        print(f"{record.name:<28} {record.rounds_per_s:>12,.1f} {peak} "
              f"{record.wall_s:>8.3f}s {record.git_sha:>9}  "
              f"{'baseline' if record.baseline else ''}")
    return 0


def _command_bench_compare(args: argparse.Namespace) -> int:
    from repro.obs import BenchStore, compare

    verdicts = []
    for store_path in args.stores:
        store = BenchStore(store_path)
        verdict = compare(
            store,
            max_slowdown=args.max_slowdown,
            max_memory_growth=args.max_memory_growth,
        )
        print(f"{store_path}:")
        print(verdict.to_text())
        verdicts.append(verdict)
    if args.report:
        from repro.sim.persistence import atomic_write_json

        atomic_write_json(args.report, {
            "schema": 1,
            "ok": all(verdict.ok for verdict in verdicts),
            "stores": {
                path: verdict.to_dict()
                for path, verdict in zip(args.stores, verdicts)
            },
        })
        print(f"wrote report to {args.report}")
    return 0 if all(verdict.ok for verdict in verdicts) else 1


def _command_bench(args: argparse.Namespace) -> int:
    if args.bench_command == "record":
        return _command_bench_record(args)
    if args.bench_command == "history":
        return _command_bench_history(args)
    return _command_bench_compare(args)


def _command_trace(args: argparse.Namespace) -> int:
    from repro.data import (
        TraceSpec,
        extract_pois,
        generate_trace,
        save_trace,
        sellers_from_trace,
    )
    from repro.sim.rng import seeded_generator

    spec = TraceSpec(num_trips=args.trips, num_taxis=args.taxis,
                     seed=args.seed)
    trace = generate_trace(spec)
    print(f"generated {len(trace)} trips by {spec.num_taxis} taxis "
          f"over {spec.days} days (seed {spec.seed})")
    if args.out:
        count = save_trace(trace, args.out)
        print(f"saved {count} records to {args.out}")
    pois = extract_pois(trace, num_pois=args.pois)
    print(f"extracted {len(pois)} PoIs (busiest first):")
    for poi in pois:
        print(f"  PoI {poi.poi_id}: ({poi.latitude:.4f}, "
              f"{poi.longitude:.4f}), {poi.weight:.0f} events")
    derived = sellers_from_trace(
        trace, pois, num_sellers=args.sellers,
        rng=seeded_generator(args.seed), radius_degrees=0.02,
    )
    print(f"derived {len(derived.population)} sellers; PoI coverage "
          f"{derived.poi_coverage.min()}-{derived.poi_coverage.max()} "
          f"of {len(pois)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _command_list()
        if args.command == "run":
            return _command_run(args)
        if args.command == "quickstart":
            return _command_quickstart(args)
        if args.command == "replicate":
            return _command_replicate(args)
        if args.command == "trace":
            if getattr(args, "trace_command", None) == "summarize":
                return _command_trace_summarize(args)
            if getattr(args, "trace_command", None) == "critical-path":
                return _command_trace_critical_path(args)
            return _command_trace(args)
        if args.command == "profile":
            return _command_profile(args)
        if args.command == "bench":
            return _command_bench(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "verify":
            return _command_verify(args)
        if args.command == "chaos":
            return _command_chaos(args)
        if args.command == "lint":
            return _command_lint(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-print; exit quietly
        # (stdout is unusable, so point it at devnull to suppress the
        # interpreter's exit-time flush as well).
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
