"""The multi-consumer market simulator.

Each round:

1. the platform ranks all sellers by their UCB indices (shared learning
   state — quality knowledge is the platform's asset, amortised across
   consumers);
2. an :class:`~repro.market.allocation.AllocationStrategy` partitions the
   top sellers into disjoint per-consumer sets;
3. each consumer's three-stage Stackelberg game is solved in closed form
   on its own set (its own ``omega``, shared platform cost parameters);
4. every allocated seller collects data; the shared state updates.

The result tracks per-consumer profit series and the platform's total
profit, so allocation strategies can be compared on welfare and fairness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.incentive import solve_round_fast
from repro.core.state import LearningState
from repro.entities.seller import SellerPopulation
from repro.exceptions import ConfigurationError
from repro.market.allocation import AllocationStrategy
from repro.market.spec import ConsumerSpec
from repro.quality.distributions import (
    QualityModel,
    TruncatedGaussianQuality,
)
from repro.quality.sampler import QualitySampler
from repro.sim.rng import seed_sequence, seeded_generator

__all__ = ["MarketRunResult", "MarketSimulator"]

_QUALITY_FLOOR = 1e-6
_PRIOR_MEAN = 0.5


@dataclass
class MarketRunResult:
    """Per-consumer and platform outcomes of a market run.

    Attributes
    ----------
    allocation_name:
        The allocation strategy that produced the run.
    consumer_profits:
        ``consumer_id -> per-round profit array``.
    consumer_mean_quality:
        ``consumer_id -> per-round mean allocated estimated quality``.
    platform_profit:
        Per-round platform profit summed over all consumers' games.
    realized_revenue:
        Per-round observed quality total across all allocated sellers.
    """

    allocation_name: str
    consumer_profits: dict[int, np.ndarray]
    consumer_mean_quality: dict[int, np.ndarray]
    platform_profit: np.ndarray
    realized_revenue: np.ndarray

    @property
    def num_rounds(self) -> int:
        """Number of rounds in the run."""
        return int(self.platform_profit.size)

    def total_welfare(self) -> float:
        """Sum of all consumers' profits plus the platform's."""
        consumers = sum(
            float(series.sum()) for series in self.consumer_profits.values()
        )
        return consumers + float(self.platform_profit.sum())

    def fairness_gap(self) -> float:
        """Best-minus-worst mean consumer profit (0 = perfectly even)."""
        means = [float(series.mean())
                 for series in self.consumer_profits.values()]
        return max(means) - min(means)

    def consumer_totals(self) -> dict[int, float]:
        """Total profit per consumer."""
        return {
            consumer_id: float(series.sum())
            for consumer_id, series in self.consumer_profits.items()
        }


class MarketSimulator:
    """Simulates one platform serving several consumers.

    Parameters
    ----------
    population:
        The candidate sellers (shared by all consumers).
    specs:
        The consumers; their total demand ``sum k_c`` must not exceed the
        population size.
    theta, lam:
        Platform aggregation-cost parameters, applied per consumer's
        aggregation job.
    collection_price_bounds:
        The platform's price interval (shared across games).
    num_pois:
        PoIs per round (``L``) — drives the learning rate, as in the
        single-consumer mechanism.
    quality_model:
        Observation model; defaults to the truncated Gaussian around the
        population's qualities.
    seed:
        Master seed for observation noise and allocation randomness.
    """

    def __init__(self, population: SellerPopulation,
                 specs: list[ConsumerSpec], theta: float = 0.1,
                 lam: float = 1.0,
                 collection_price_bounds: tuple[float, float] = (0.0, 5.0),
                 num_pois: int = 10,
                 quality_model: QualityModel | None = None,
                 seed: int = 0) -> None:
        if not specs:
            raise ConfigurationError("a market needs at least one consumer")
        demand = sum(spec.k for spec in specs)
        if demand > len(population):
            raise ConfigurationError(
                f"consumers demand {demand} sellers per round but the "
                f"population has only {len(population)}"
            )
        ids = [spec.consumer_id for spec in specs]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("consumer ids must be unique")
        if num_pois <= 0:
            raise ConfigurationError(
                f"num_pois must be positive, got {num_pois}"
            )
        self._population = population
        self._specs = list(specs)
        self._theta = float(theta)
        self._lam = float(lam)
        self._col_bounds = collection_price_bounds
        self._num_pois = int(num_pois)
        self._seed = int(seed)
        if quality_model is None:
            quality_model = TruncatedGaussianQuality(
                population.expected_qualities
            )
        if quality_model.num_sellers != len(population):
            raise ConfigurationError(
                "quality model covers a different number of sellers than "
                "the population"
            )
        self._quality_model = quality_model

    @property
    def total_demand(self) -> int:
        """Sellers allocated per round across all consumers."""
        return sum(spec.k for spec in self._specs)

    def run(self, strategy: AllocationStrategy,
            num_rounds: int) -> MarketRunResult:
        """Run the market for ``num_rounds`` rounds under one strategy."""
        if num_rounds <= 0:
            raise ConfigurationError(
                f"num_rounds must be positive, got {num_rounds}"
            )
        m = len(self._population)
        seq = seed_sequence([self._seed, 0xC0FFEE])
        obs_seed, alloc_seed = seq.spawn(2)
        sampler = QualitySampler(
            self._quality_model, self._num_pois,
            seeded_generator(obs_seed),
        )
        alloc_rng = seeded_generator(alloc_seed)
        state = LearningState(m, prior_mean=_PRIOR_MEAN)
        cost_a_all = self._population.cost_a
        cost_b_all = self._population.cost_b
        coefficient = float(self.total_demand + 1)

        consumer_profits = {
            spec.consumer_id: np.empty(num_rounds) for spec in self._specs
        }
        mean_quality = {
            spec.consumer_id: np.empty(num_rounds) for spec in self._specs
        }
        platform = np.empty(num_rounds)
        revenue = np.empty(num_rounds)

        for t in range(num_rounds):
            if t == 0:
                ranked = alloc_rng.permutation(m)
            else:
                ucb = state.ucb_values(coefficient)
                ranked = np.argsort(-ucb, kind="stable")
            allocation = strategy.allocate(ranked, self._specs, alloc_rng)
            platform_round = 0.0
            union: list[np.ndarray] = []
            for spec in self._specs:
                sellers = allocation[spec.consumer_id]
                union.append(sellers)
                means = np.maximum(state.means[sellers], _QUALITY_FLOOR)
                p_j, p, taus = solve_round_fast(
                    means, cost_a_all[sellers], cost_b_all[sellers],
                    self._theta, self._lam, spec.omega,
                    spec.service_price_bounds, self._col_bounds,
                )
                total = float(taus.sum())
                aggregation = (
                    self._theta * total * total + self._lam * total
                )
                q_bar = float(means.mean())
                consumer_profits[spec.consumer_id][t] = (
                    spec.omega * np.log1p(q_bar * total) - p_j * total
                )
                mean_quality[spec.consumer_id][t] = q_bar
                platform_round += (p_j - p) * total - aggregation
            platform[t] = platform_round
            selected = np.sort(np.concatenate(union))
            observations = sampler.sample_round(selected, round_index=t)
            state.update(selected, observations.sums, self._num_pois)
            revenue[t] = observations.total

        return MarketRunResult(
            allocation_name=strategy.name,
            consumer_profits=consumer_profits,
            consumer_mean_quality=mean_quality,
            platform_profit=platform,
            realized_revenue=revenue,
        )

    def compare(self, strategies: list[AllocationStrategy],
                num_rounds: int) -> dict[str, MarketRunResult]:
        """Run every strategy on the same instance; keyed by name."""
        results: dict[str, MarketRunResult] = {}
        for strategy in strategies:
            if strategy.name in results:
                raise ConfigurationError(
                    f"duplicate allocation strategy {strategy.name!r}"
                )
            results[strategy.name] = self.run(strategy, num_rounds)
        return results
