"""Seller-allocation strategies for the multi-consumer market.

Each round the platform ranks all sellers (by UCB index) and must hand
each consumer ``c`` a *disjoint* set of ``k_c`` sellers.  Different
partitions trade total welfare against fairness:

* :class:`RichestFirstAllocation` — consumers in descending ``omega``
  order each take their ``k_c`` best remaining sellers; maximises the
  value-weighted quality but starves low-``omega`` consumers.
* :class:`SnakeDraftAllocation` — consumers pick one seller at a time in
  snake order (1..C, C..1, ...); near-equal quality across consumers.
* :class:`RandomPriorityAllocation` — a fresh random consumer order each
  round; fair in expectation.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ConfigurationError, SelectionError
from repro.market.spec import ConsumerSpec

__all__ = [
    "AllocationStrategy",
    "RichestFirstAllocation",
    "SnakeDraftAllocation",
    "RandomPriorityAllocation",
]


def _require_supply(ranked_sellers: np.ndarray,
                    specs: list[ConsumerSpec]) -> None:
    demand = sum(spec.k for spec in specs)
    if demand > ranked_sellers.size:
        raise SelectionError(
            f"consumers demand {demand} sellers but only "
            f"{ranked_sellers.size} are available"
        )
    ids = [spec.consumer_id for spec in specs]
    if len(set(ids)) != len(ids):
        raise ConfigurationError("consumer ids must be unique")


class AllocationStrategy(abc.ABC):
    """Partitions ranked sellers into disjoint per-consumer sets."""

    #: Display name used in experiment tables.
    name: str = "allocation"

    def allocate(self, ranked_sellers: np.ndarray,
                 specs: list[ConsumerSpec],
                 rng: np.random.Generator) -> dict[int, np.ndarray]:
        """Assign each consumer its sellers for the round.

        Parameters
        ----------
        ranked_sellers:
            Seller indices in descending desirability (UCB) order.
        specs:
            The consumers and their per-round demands ``k_c``.
        rng:
            Randomness for strategies that need it.

        Returns
        -------
        dict
            ``consumer_id -> seller indices`` (disjoint, each of size
            ``k_c``).
        """
        _require_supply(ranked_sellers, specs)
        return self._allocate(np.asarray(ranked_sellers, dtype=int),
                              specs, rng)

    @abc.abstractmethod
    def _allocate(self, ranked_sellers: np.ndarray,
                  specs: list[ConsumerSpec],
                  rng: np.random.Generator) -> dict[int, np.ndarray]:
        """Strategy-specific partitioning (inputs pre-validated)."""


class RichestFirstAllocation(AllocationStrategy):
    """Descending-``omega`` priority; each consumer takes its block."""

    name = "richest-first"

    def _allocate(self, ranked_sellers: np.ndarray,
                  specs: list[ConsumerSpec],
                  rng: np.random.Generator) -> dict[int, np.ndarray]:
        order = sorted(specs, key=lambda spec: (-spec.omega,
                                                spec.consumer_id))
        allocation: dict[int, np.ndarray] = {}
        cursor = 0
        for spec in order:
            allocation[spec.consumer_id] = np.sort(
                ranked_sellers[cursor:cursor + spec.k]
            )
            cursor += spec.k
        return allocation


class SnakeDraftAllocation(AllocationStrategy):
    """One seller per consumer per pick, reversing order each pass."""

    name = "snake-draft"

    def _allocate(self, ranked_sellers: np.ndarray,
                  specs: list[ConsumerSpec],
                  rng: np.random.Generator) -> dict[int, np.ndarray]:
        remaining = {spec.consumer_id: spec.k for spec in specs}
        picks: dict[int, list[int]] = {
            spec.consumer_id: [] for spec in specs
        }
        order = [spec.consumer_id for spec in specs]
        cursor = 0
        forward = True
        while any(remaining.values()):
            sequence = order if forward else list(reversed(order))
            for consumer_id in sequence:
                if remaining[consumer_id] == 0:
                    continue
                picks[consumer_id].append(int(ranked_sellers[cursor]))
                cursor += 1
                remaining[consumer_id] -= 1
            forward = not forward
        return {
            consumer_id: np.sort(np.array(sellers, dtype=int))
            for consumer_id, sellers in picks.items()
        }


class RandomPriorityAllocation(AllocationStrategy):
    """Fresh random consumer priority each round; blocks by priority."""

    name = "random-priority"

    def _allocate(self, ranked_sellers: np.ndarray,
                  specs: list[ConsumerSpec],
                  rng: np.random.Generator) -> dict[int, np.ndarray]:
        order = list(specs)
        rng.shuffle(order)
        allocation: dict[int, np.ndarray] = {}
        cursor = 0
        for spec in order:
            allocation[spec.consumer_id] = np.sort(
                ranked_sellers[cursor:cursor + spec.k]
            )
            cursor += spec.k
        return allocation
