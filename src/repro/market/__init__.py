"""Multi-consumer market extension.

The paper's architecture (Fig. 1) supports several consumers, but its
evaluation instantiates one.  This package serves many consumers from
one platform and shared quality learning: per-round UCB ranking,
disjoint seller allocation (richest-first / snake-draft /
random-priority), and one closed-form Stackelberg game per consumer.
"""

from repro.market.allocation import (
    AllocationStrategy,
    RandomPriorityAllocation,
    RichestFirstAllocation,
    SnakeDraftAllocation,
)
from repro.market.engine import MarketRunResult, MarketSimulator
from repro.market.spec import ConsumerSpec

__all__ = [
    "ConsumerSpec",
    "AllocationStrategy",
    "RichestFirstAllocation",
    "SnakeDraftAllocation",
    "RandomPriorityAllocation",
    "MarketSimulator",
    "MarketRunResult",
]
