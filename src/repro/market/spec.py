"""Consumer specifications for the multi-consumer market extension.

The paper's Fig. 1 shows *several* data consumers served by one platform,
but its evaluation instantiates only one.  This package extends the
mechanism to many concurrent consumers: each consumer has its own
valuation scale and its own per-round demand for sellers, and the
platform must partition the (disjoint) selected sellers among them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["ConsumerSpec"]


@dataclass(frozen=True)
class ConsumerSpec:
    """One consumer's demand in a multi-consumer market.

    Attributes
    ----------
    consumer_id:
        Stable identifier.
    omega:
        Valuation parameter of the consumer's log valuation (Eq. 10).
    k:
        Number of sellers the consumer wants served per round.
    service_price_bounds:
        Feasible ``p^J`` interval for this consumer's game.
    """

    consumer_id: int
    omega: float
    k: int
    service_price_bounds: tuple[float, float] = (0.0, 1_000.0)

    def __post_init__(self) -> None:
        if self.consumer_id < 0:
            raise ConfigurationError(
                f"consumer_id must be >= 0, got {self.consumer_id}"
            )
        if not (math.isfinite(self.omega) and self.omega > 1.0):
            raise ConfigurationError(
                f"omega must be > 1, got {self.omega}"
            )
        if self.k <= 0:
            raise ConfigurationError(f"k must be positive, got {self.k}")
        lo, hi = self.service_price_bounds
        if not (0.0 <= lo < hi):
            raise ConfigurationError(
                f"service_price_bounds must satisfy 0 <= lo < hi, "
                f"got {self.service_price_bounds}"
            )
