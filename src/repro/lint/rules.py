"""The domain-specific rules RL001–RL006.

Each rule encodes one invariant the runtime tests cannot enforce ahead
of time; DESIGN.md §11 catalogues the bug class behind every id.  All
rules are pure AST checks — no file is ever imported or executed — so
the linter is safe to run on arbitrary (even deliberately broken)
fixture code.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.lint.framework import (
    Finding,
    LintContext,
    LintRule,
    register_rule,
)

__all__ = [
    "RngConstructionRule",
    "WallClockRule",
    "EmitKindRule",
    "FloatEqualityRule",
    "SwallowedExceptionRule",
    "TaskBoundaryPicklabilityRule",
]


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _ImportTable:
    """Which local names refer to which imported modules/objects."""

    def __init__(self, tree: ast.AST) -> None:
        #: local alias -> imported module path (``import numpy as np``
        #: maps ``np`` to ``numpy``).
        self.modules: dict[str, str] = {}
        #: local alias -> fully-qualified object (``from time import
        #: perf_counter as pc`` maps ``pc`` to ``time.perf_counter``).
        self.objects: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    self.modules[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:  # relative import — not a stdlib module
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.objects[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> str | None:
        """The fully-qualified dotted path ``node`` refers to, if any.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` under ``import numpy as np``;
        ``default_rng`` resolves the same under ``from numpy.random
        import default_rng``.  Unresolvable expressions return ``None``.
        """
        dotted = _dotted_name(node)
        if dotted is None:
            return None
        head, __, rest = dotted.partition(".")
        if head in self.objects:
            resolved = self.objects[head]
            return f"{resolved}.{rest}" if rest else resolved
        if head in self.modules:
            resolved = self.modules[head]
            return f"{resolved}.{rest}" if rest else resolved
        return None


def _calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


@register_rule
class RngConstructionRule(LintRule):
    """RL001 — every RNG must come from :mod:`repro.sim.rng`.

    A generator built straight from ``np.random.default_rng()`` /
    ``np.random.SeedSequence`` / stdlib ``random`` bypasses the
    :class:`~repro.sim.rng.RngFactory` seed-derivation discipline; an
    unseeded one silently breaks bit-identical replay across
    checkpoint/resume and parallel workers.
    """

    rule_id = "RL001"
    title = "RNG construction outside repro.sim.rng"
    rationale = (
        "off-factory RNG streams break bit-identical replay; unseeded "
        "ones are irreproducible outright"
    )

    #: The one module allowed to construct generators directly.
    _ALLOWED_PACKAGE = "repro.sim.rng"

    def check(self, context: LintContext) -> Iterable[Finding]:
        if context.package == self._ALLOWED_PACKAGE:
            return
        imports = _ImportTable(context.tree)
        for call in _calls(context.tree):
            resolved = imports.resolve(call.func)
            if resolved is None:
                continue
            if resolved.startswith("numpy.random."):
                attr = resolved.removeprefix("numpy.random.")
                yield self.finding(
                    context, call,
                    f"np.random.{attr}(...) constructs an RNG stream "
                    "outside repro.sim.rng; use "
                    "repro.sim.rng.seeded_generator / seed_sequence / "
                    "RngFactory instead",
                )
            elif resolved == "random" or resolved.startswith("random."):
                yield self.finding(
                    context, call,
                    f"stdlib {resolved}(...) is unseeded global-state "
                    "randomness; derive a generator from "
                    "repro.sim.rng instead",
                )


@register_rule
class WallClockRule(LintRule):
    """RL002 — no wall-clock reads in the deterministic hot paths.

    ``repro.sim`` / ``repro.game`` / ``repro.bandits`` / ``repro.core``
    / ``repro.runtime`` must behave identically run-to-run; a clock
    read that leaks into
    control flow (adaptive iteration counts, time-based seeds, ...)
    destroys that silently.  Duration telemetry goes through the
    auditable :mod:`repro.obs.timing` shim instead.
    """

    rule_id = "RL002"
    title = "wall-clock read in a deterministic hot path"
    rationale = (
        "clock reads leaking into control flow make hot-path behaviour "
        "timing-dependent and kill bit-identical replay"
    )

    _SCOPED_PACKAGES = ("repro.sim", "repro.game", "repro.bandits",
                        "repro.core", "repro.runtime")
    #: Whitelisted timer-shim home: the obs package owns all timing.
    _WHITELIST = ("repro.obs",)
    _CLOCK_CALLS = frozenset({
        "time.time", "time.time_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns", "time.localtime",
        "time.gmtime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })

    def check(self, context: LintContext) -> Iterable[Finding]:
        if not context.in_package(*self._SCOPED_PACKAGES):
            return
        if context.in_package(*self._WHITELIST):  # pragma: no cover
            return
        imports = _ImportTable(context.tree)
        # Flag the wall-clock imports themselves: `from time import
        # perf_counter` in a hot path invites unshimmed timing.
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                names = ", ".join(alias.name for alias in node.names)
                yield self.finding(
                    context, node,
                    f"'from time import {names}' in a deterministic "
                    "package; import the timer shim from "
                    "repro.obs.timing instead",
                )
        for call in _calls(context.tree):
            resolved = imports.resolve(call.func)
            if resolved in self._CLOCK_CALLS:
                yield self.finding(
                    context, call,
                    f"{resolved}(...) reads the wall clock inside a "
                    "deterministic hot path; route timing through "
                    "repro.obs.timing",
                )


@register_rule
class EmitKindRule(LintRule):
    """RL003 — literal ``Tracer.emit`` kinds must be in ``EVENT_KINDS``.

    ``repro trace summarize`` and the golden-trace store only
    understand the kinds enumerated in
    :data:`repro.obs.events.EVENT_KINDS`; an unknown literal kind is a
    typo or a forgotten registry entry either way.
    """

    rule_id = "RL003"
    title = "Tracer.emit kind missing from EVENT_KINDS"
    rationale = (
        "an emit kind outside EVENT_KINDS is invisible to trace "
        "summaries and golden-trace comparisons"
    )

    def _known_kinds(self) -> frozenset[str]:
        # Imported lazily so the rule module stays import-light; the
        # registry is the single source of truth for valid kinds.
        from repro.obs.events import EVENT_KINDS

        return EVENT_KINDS

    def check(self, context: LintContext) -> Iterable[Finding]:
        known = self._known_kinds()
        for call in _calls(context.tree):
            func = call.func
            if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
                continue
            if not call.args:
                continue
            kind = call.args[0]
            if isinstance(kind, ast.Constant) and isinstance(kind.value, str):
                if kind.value not in known:
                    yield self.finding(
                        context, call,
                        f"emit kind {kind.value!r} is not a member of "
                        "repro.obs.events.EVENT_KINDS; register it "
                        "there (with docs) or fix the typo",
                    )


def _is_float_like(node: ast.expr) -> bool:
    """Whether ``node`` is statically known to produce a float."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub,
                                                              ast.UAdd)):
        return _is_float_like(node.operand)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "float"
    return False


@register_rule
class FloatEqualityRule(LintRule):
    """RL004 — no exact float equality on model quantities.

    Equilibrium prices, profits, and sensing times come out of
    floating-point solvers; comparing them with ``==``/``!=`` passes
    or fails on representation noise.  ``math.isclose`` or the
    tolerance-aware helpers in :mod:`repro.verify.compare`
    (``values_close`` / ``diff_values``) encode the intent.
    """

    rule_id = "RL004"
    title = "exact float equality on a model quantity"
    rationale = (
        "solver outputs carry representation noise; exact equality "
        "flips on harmless last-ulp differences"
    )

    _SCOPED_PACKAGES = ("repro.game", "repro.verify")

    def check(self, context: LintContext) -> Iterable[Finding]:
        if not context.in_package(*self._SCOPED_PACKAGES):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_like(left) or _is_float_like(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        context, node,
                        f"float {symbol} comparison; use math.isclose "
                        "or repro.verify.compare.values_close with an "
                        "explicit tolerance",
                    )
                    break


@register_rule
class SwallowedExceptionRule(LintRule):
    """RL005 — no silently swallowed exceptions in recovery code.

    The fault-injection, parallel-execution, and persistence layers
    exist to surface and survive failures; a bare ``except:`` or an
    ``except Exception: pass`` there converts a real defect (corrupt
    checkpoint, dead worker) into silent data loss.
    """

    rule_id = "RL005"
    title = "swallowed exception in recovery-critical code"
    rationale = (
        "recovery layers that swallow exceptions turn crashes into "
        "silent data corruption"
    )

    _SCOPED_PACKAGES = ("repro.faults", "repro.parallel",
                        "repro.sim.persistence", "repro.runtime")
    _BROAD = frozenset({"Exception", "BaseException"})

    def _is_trivial_body(self, body: list[ast.stmt]) -> bool:
        """Whether the handler does nothing observable."""
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Continue):
                continue
            if (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)):
                continue  # docstring / ellipsis
            return False
        return True

    def check(self, context: LintContext) -> Iterable[Finding]:
        if not context.in_package(*self._SCOPED_PACKAGES):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    context, node,
                    "bare 'except:' catches SystemExit/KeyboardInterrupt "
                    "too; name the exceptions this handler can recover "
                    "from",
                )
                continue
            caught = _dotted_name(node.type)
            if caught in self._BROAD and self._is_trivial_body(node.body):
                yield self.finding(
                    context, node,
                    f"'except {caught}: pass' swallows every failure; "
                    "log, re-raise, or narrow the exception type",
                )


@register_rule
class TaskBoundaryPicklabilityRule(LintRule):
    """RL006 — only picklable callables cross the task boundary.

    :class:`~repro.parallel.ParallelExecutor` ships runners and
    :class:`~repro.parallel.TaskSpec` payloads to worker processes via
    ``multiprocessing.Queue``; lambdas and nested functions do not
    pickle, so they crash the pool at submit time — or worse, only on
    the crash-recovery path.  Runners must be module-level callables.
    """

    rule_id = "RL006"
    title = "unpicklable callable crosses the ParallelExecutor boundary"
    rationale = (
        "lambdas/closures do not pickle; they break worker dispatch "
        "exactly on the paths the pool exists to protect"
    )

    _BOUNDARY_CALLS = frozenset({"ParallelExecutor", "TaskSpec"})

    def _nested_functions(self, tree: ast.AST) -> set[str]:
        """Names of functions defined inside another function."""
        nested: set[str] = set()

        def walk(node: ast.AST, inside_function: bool) -> None:
            for child in ast.iter_child_nodes(node):
                is_function = isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
                if is_function and inside_function:
                    nested.add(child.name)
                walk(child, inside_function or is_function)

        walk(tree, False)
        return nested

    def check(self, context: LintContext) -> Iterable[Finding]:
        nested = self._nested_functions(context.tree)
        for call in _calls(context.tree):
            callee = _dotted_name(call.func)
            if callee is None:
                continue
            basename = callee.rsplit(".", 1)[-1]
            if basename not in self._BOUNDARY_CALLS:
                continue
            arguments = list(call.args) + [kw.value for kw in call.keywords]
            for argument in arguments:
                if isinstance(argument, ast.Lambda):
                    yield self.finding(
                        context, argument,
                        f"lambda passed to {basename}(...) cannot "
                        "pickle across the worker boundary; use a "
                        "module-level function",
                    )
                elif (isinstance(argument, ast.Name)
                      and argument.id in nested):
                    yield self.finding(
                        context, argument,
                        f"nested function {argument.id!r} passed to "
                        f"{basename}(...) cannot pickle across the "
                        "worker boundary; hoist it to module level",
                    )
