"""Core machinery of the ``repro.lint`` static analyser.

The framework is deliberately small: a :class:`LintRule` registry, a
:class:`LintContext` describing one source file (its AST, raw lines,
inferred package, and suppression table), and a :class:`LintSession`
driver that parses each file exactly once per run and shares the
parsed contexts between the classic single-file rules and the
whole-program flow engine (:mod:`repro.lint.flow`).

Pragma syntax
-------------
A finding is suppressed when the flagged line carries a comment of the
form ``# repro-lint: disable=RL001`` (several ids comma-separated, or
``all``).  A whole file opts out of one rule with
``# repro-lint: disable-file=RL001`` on any line.  Fixture files may
also override the inferred package with ``# repro-lint:
package=repro.sim`` so package-scoped rules can be exercised from
paths outside ``src/repro``.

Two further directives annotate rather than suppress and are consumed
by the flow rules: ``# repro-lint: twin=repro.core.foo`` on (or above)
a ``def`` line declares the scalar twin of a kernel entry point
(RL105), and ``# repro-lint: mutates=out,scratch`` declares parameters
a kernel is allowed to write through (RL102).

Suppression pragmas that never match a finding are themselves
reported (rule ``RL007``) so stale ``disable=`` comments cannot hide
regressions silently; see :meth:`LintSession.orphan_findings`.
"""

from __future__ import annotations

import ast
import os
import re
import tokenize
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Iterator, Sequence

from repro.exceptions import ConfigurationError

__all__ = [
    "Finding",
    "LintContext",
    "LintRule",
    "LintSession",
    "ORPHAN_PRAGMA_RULE",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "register_rule",
]

#: ``# repro-lint: <directive>`` comment, e.g. ``disable=RL001,RL004``.
_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(?P<directive>disable-file|disable|package"
    r"|twin|mutates)\s*=\s*"
    r"(?P<value>[A-Za-z0-9_.,\s-]+)"
)

#: Rule id under which unused suppression pragmas are reported.
ORPHAN_PRAGMA_RULE = "RL007"

#: Scope key used for file-level pragma entries in inventories.
_FILE_SCOPE = 0


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    column: int
    rule: str
    message: str
    snippet: str = field(default="", compare=False)
    severity: str = field(default="error", compare=False)

    def format(self) -> str:
        """The conventional ``path:line:col: RULE message`` line."""
        location = f"{self.path}:{self.line}:{self.column + 1}"
        text = f"{location}: {self.rule} {self.message}"
        if self.severity != "error":
            text = f"{location}: {self.rule} [{self.severity}] {self.message}"
        if self.snippet:
            text += f"\n    {self.snippet}"
        return text

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly form consumed by the JSON reporter."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
            "severity": self.severity,
        }


class _Suppressions:
    """Per-file pragma table parsed from ``# repro-lint:`` comments."""

    def __init__(self, source: str) -> None:
        self.line_rules: dict[int, set[str]] = {}
        self.file_rules: set[str] = set()
        self.package_override: str | None = None
        #: ``lineno -> dotted scalar-twin path`` (``twin=`` directives).
        self.twins: dict[int, str] = {}
        #: ``lineno -> declared mutable parameter names`` (``mutates=``).
        self.mutates: dict[int, tuple[str, ...]] = {}
        #: ``(scope, rule) -> pragma lineno`` for every suppression
        #: entry; ``scope`` is the target line, or ``_FILE_SCOPE`` for
        #: ``disable-file``.
        self.entries: dict[tuple[int, str], int] = {}
        self._used: set[tuple[int, str]] = set()
        for lineno, comment in _iter_comments(source):
            match = _PRAGMA.search(comment)
            if match is None:
                continue
            directive = match.group("directive")
            value = match.group("value").strip()
            if directive == "package":
                self.package_override = value
                continue
            if directive == "twin":
                self.twins[lineno] = value
                continue
            if directive == "mutates":
                self.mutates[lineno] = tuple(
                    item.strip() for item in value.split(",") if item.strip()
                )
                continue
            rules = {item.strip().upper() for item in value.split(",")
                     if item.strip()}
            if directive == "disable-file":
                self.file_rules |= rules
                for rule in rules:
                    self.entries.setdefault((_FILE_SCOPE, rule), lineno)
            else:
                self.line_rules.setdefault(lineno, set()).update(rules)
                for rule in rules:
                    self.entries.setdefault((lineno, rule), lineno)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is disabled at ``line`` (1-based).

        Matching pragma entries are recorded as *used* so the session
        can later report the orphaned ones (``RL007``).
        """
        suppressed = False
        for scope, entry_rule in ((_FILE_SCOPE, "ALL"), (_FILE_SCOPE, rule),
                                  (line, "ALL"), (line, rule)):
            if (scope, entry_rule) in self.entries:
                self._used.add((scope, entry_rule))
                suppressed = True
        return suppressed

    def inventory(self) -> dict[tuple[int, str], tuple[int, bool]]:
        """``(scope, rule) -> (pragma_lineno, used)`` for every entry."""
        return {key: (lineno, key in self._used)
                for key, lineno in self.entries.items()}

    def directive_for(self, start: int, end: int,
                      table: dict[int, object]) -> object | None:
        """The directive value attached to lines ``start..end`` if any.

        Used to bind ``twin=`` / ``mutates=`` pragmas to a ``def``
        whose decorators may carry the comment.
        """
        for lineno in range(start, end + 1):
            if lineno in table:
                return table[lineno]
        return None


def _iter_comments(source: str) -> Iterator[tuple[int, str]]:
    """Yield ``(lineno, comment_text)`` for every comment in ``source``.

    Uses :mod:`tokenize` so string literals containing ``#`` never read
    as comments; a file that fails to tokenize yields nothing (the AST
    parse will surface the real syntax error).
    """
    lines = iter(source.splitlines(keepends=True))
    try:
        for token in tokenize.generate_tokens(lambda: next(lines, "")):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError):
        return


def _infer_package(path: str) -> str:
    """Dotted package of ``path`` rooted at the ``repro`` directory.

    ``src/repro/sim/engine.py`` maps to ``repro.sim.engine``; paths not
    under a ``repro`` directory map to ``""`` (package-scoped rules
    then skip the file unless a ``package=`` pragma overrides).
    """
    parts = os.path.normpath(path).split(os.sep)
    if "repro" not in parts:
        return ""
    module_parts = parts[parts.index("repro"):]
    leaf = module_parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[:-3]
    if leaf == "__init__":
        module_parts = module_parts[:-1]
    else:
        module_parts = module_parts[:-1] + [leaf]
    return ".".join(module_parts)


@dataclass
class LintContext:
    """Everything a rule needs to know about one source file."""

    path: str
    source: str
    tree: ast.AST
    package: str
    suppressions: _Suppressions

    @property
    def lines(self) -> list[str]:
        return self.source.splitlines()

    def in_package(self, *prefixes: str) -> bool:
        """Whether this file lives under any of the dotted ``prefixes``."""
        return any(
            self.package == prefix or self.package.startswith(prefix + ".")
            for prefix in prefixes
        )

    def snippet(self, node: ast.AST) -> str:
        """The first source line of ``node``, stripped (for reports)."""
        lineno = getattr(node, "lineno", None)
        if lineno is None or lineno > len(self.lines):
            return ""
        return self.lines[lineno - 1].strip()


def build_context(source: str, path: str) -> LintContext:
    """Parse ``source`` into a :class:`LintContext`.

    Raises
    ------
    ConfigurationError
        If the source does not parse.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        raise ConfigurationError(
            f"cannot lint {path}: {error.msg} (line {error.lineno})"
        ) from error
    suppressions = _Suppressions(source)
    package = suppressions.package_override
    if package is None:
        package = _infer_package(path)
    return LintContext(path=path, source=source, tree=tree,
                       package=package, suppressions=suppressions)


class LintRule:
    """Base class for one named check.

    Subclasses set :attr:`rule_id` / :attr:`title` / :attr:`rationale`
    and implement :meth:`check`, yielding :class:`Finding`\\ s (the
    driver applies suppressions afterwards, so rules never need to).
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, context: LintContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, context: LintContext, node: ast.AST,
                message: str) -> Finding:
        """A :class:`Finding` for ``node`` in ``context``."""
        return Finding(
            path=context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule=self.rule_id,
            message=message,
            snippet=context.snippet(node),
        )


_REGISTRY: dict[str, LintRule] = {}


def register_rule(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule to the global registry."""
    rule = cls()
    if not rule.rule_id:
        raise ConfigurationError(f"rule {cls.__name__} lacks a rule_id")
    if rule.rule_id in _REGISTRY:
        raise ConfigurationError(
            f"duplicate lint rule id {rule.rule_id!r}"
        )
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> tuple[LintRule, ...]:
    """Every registered rule, ordered by id."""
    return tuple(rule for __, rule in sorted(_REGISTRY.items()))


def get_rule(rule_id: str) -> LintRule:
    """The registered rule with this id.

    Raises
    ------
    ConfigurationError
        If no rule with ``rule_id`` exists.
    """
    try:
        return _REGISTRY[rule_id.upper()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown lint rule {rule_id!r} (known: {known})"
        ) from None


def _select_rules(select: Iterable[str] | None) -> tuple[LintRule, ...]:
    if select is None:
        return all_rules()
    return tuple(get_rule(rule_id) for rule_id in select)


def _check_context(context: LintContext,
                   rules: Sequence[LintRule]) -> list[Finding]:
    """Run ``rules`` over one parsed file, applying suppressions."""
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check(context):
            if not context.suppressions.is_suppressed(finding.rule,
                                                      finding.line):
                findings.append(finding)
    return findings


def lint_source(source: str, path: str = "<string>",
                select: Iterable[str] | None = None) -> list[Finding]:
    """Lint one source string, returning unsuppressed findings.

    Parameters
    ----------
    source:
        Python source text.
    path:
        Path reported in findings and used to infer the package (a
        ``# repro-lint: package=...`` pragma overrides the inference).
    select:
        Optional iterable of rule ids to run (default: all).

    Raises
    ------
    ConfigurationError
        If the source does not parse, or ``select`` names an unknown
        rule.
    """
    rules = _select_rules(select)
    findings = _check_context(build_context(source, path), rules)
    findings.sort()
    return findings


def _iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Every ``.py`` file under the given files/directories, sorted."""
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d != "__pycache__" and not d.startswith(".")
                )
                for name in sorted(names):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        elif not os.path.exists(path):
            raise ConfigurationError(f"cannot lint {path!r}: no such file")
        elif path.endswith(".py"):
            yield path


def _lint_file_task(payload: dict, context: object) -> dict:
    """Worker-side runner for ``--jobs`` sharding (must be picklable).

    Returns finding dicts plus the file's pragma inventory so the
    coordinator can still compute orphaned-pragma findings across the
    process boundary.
    """
    path = payload["path"]
    select = payload["select"]
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as error:
        raise ConfigurationError(f"cannot read {path}: {error}") from error
    file_context = build_context(source, path)
    findings = _check_context(file_context, _select_rules(select))
    inventory = file_context.suppressions.inventory()
    return {
        "findings": [finding.to_dict() for finding in findings],
        "inventory": [[scope, rule, lineno, used]
                      for (scope, rule), (lineno, used)
                      in inventory.items()],
    }


class LintSession:
    """One lint run: shared parsed files, classic rules, pragma audit.

    The session owns the file list and a parse cache so each file is
    read and parsed exactly once per run even when several analysis
    passes (classic rules, the flow engine, the orphan audit) need the
    same AST.
    """

    def __init__(self, paths: Iterable[str],
                 select: Iterable[str] | None = None,
                 on_file: Callable[[str], None] | None = None) -> None:
        self.rules = _select_rules(select)
        self.rule_ids = [rule.rule_id for rule in self.rules]
        self.full_rule_set = select is None
        self.files: list[str] = list(_iter_python_files(paths))
        self.on_file = on_file
        self._contexts: dict[str, LintContext] = {}
        #: ``path -> {(scope, rule): (pragma_lineno, used)}`` merged
        #: across classic, flow, and worker-side passes.
        self._inventories: dict[str, dict[tuple[int, str],
                                          tuple[int, bool]]] = {}

    @property
    def files_checked(self) -> int:
        return len(self.files)

    def context(self, path: str) -> LintContext:
        """The parsed context for ``path`` (cached)."""
        cached = self._contexts.get(path)
        if cached is not None:
            return cached
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            raise ConfigurationError(
                f"cannot read {path}: {error}"
            ) from error
        context = build_context(source, path)
        self._contexts[path] = context
        return context

    def parsed(self, path: str) -> LintContext | None:
        """The already-parsed context for ``path``, if any (no I/O)."""
        return self._contexts.get(path)

    def contexts(self) -> Iterator[LintContext]:
        """Parsed contexts for every file in the session, in order."""
        for path in self.files:
            yield self.context(path)

    def run_classic(self, jobs: int = 1) -> list[Finding]:
        """Run the registered single-file rules over every file.

        ``jobs > 1`` shards files over
        :class:`repro.parallel.ParallelExecutor`; finding order is
        deterministic either way (files are pre-sorted and findings
        are fully sorted before returning).
        """
        if jobs > 1 and len(self.files) > 1:
            findings = self._run_classic_parallel(jobs)
        else:
            findings = []
            for path in self.files:
                if self.on_file is not None:
                    self.on_file(path)
                findings.extend(_check_context(self.context(path),
                                               self.rules))
        findings.sort()
        return findings

    def _run_classic_parallel(self, jobs: int) -> list[Finding]:
        from repro.parallel import ParallelExecutor

        payloads = [{"path": path, "select": self.rule_ids}
                    for path in self.files]
        executor = ParallelExecutor(_lint_file_task,
                                    workers=min(jobs, len(payloads)))
        findings: list[Finding] = []
        for result in executor.map(payloads):
            path = payloads[result.task_id]["path"]
            if self.on_file is not None:
                self.on_file(path)
            value = result.value
            findings.extend(Finding(**item) for item in value["findings"])
            inventory = {(scope, rule): (lineno, used)
                         for scope, rule, lineno, used in value["inventory"]}
            self._merge_inventory(path, inventory)
        return findings

    # -- orphaned-pragma audit (RL007) --------------------------------

    def _merge_inventory(self, path: str,
                         inventory: dict[tuple[int, str],
                                         tuple[int, bool]]) -> None:
        merged = self._inventories.setdefault(path, {})
        for key, (lineno, used) in inventory.items():
            prev = merged.get(key)
            merged[key] = (lineno, used or (prev is not None and prev[1]))

    def merge_inventory(self, path: str,
                        suppressions: _Suppressions) -> None:
        """Fold an external pass's pragma usage into the audit."""
        self._merge_inventory(path, suppressions.inventory())

    def collect_usage(self) -> None:
        """Fold pragma usage from every parsed context into the audit."""
        for path, context in self._contexts.items():
            self._merge_inventory(path, context.suppressions.inventory())

    def orphan_findings(self, executed_rules: Iterable[str],
                        strict: bool = False) -> list[Finding]:
        """Findings for suppression pragmas that never fired.

        Only pragmas naming a rule in ``executed_rules`` are audited
        (a ``disable=RL101`` comment is not orphaned just because the
        flow pass was skipped); ``disable=all`` entries are audited
        only when the full rule set ran.  Orphans are warnings by
        default and errors under ``--strict-pragmas``.
        """
        self.collect_usage()
        executed = {rule_id.upper() for rule_id in executed_rules}
        # ``disable=all`` can only be judged orphaned when every
        # registered rule (classic and flow alike) actually ran.
        from repro.lint.rules_flow import all_flow_rules

        registered = {rule.rule_id for rule in _REGISTRY.values()}
        registered |= {rule.rule_id for rule in all_flow_rules()}
        audit_all = registered <= executed
        severity = "error" if strict else "warning"
        findings: list[Finding] = []
        for path in self.files:
            inventory = self._inventories.get(path, {})
            for (scope, rule), (lineno, used) in inventory.items():
                if used:
                    continue
                if rule == "ALL":
                    if not audit_all:
                        continue
                elif rule not in executed:
                    continue
                where = ("file-wide" if scope == _FILE_SCOPE
                         else f"line {scope}")
                findings.append(Finding(
                    path=path, line=lineno, column=0,
                    rule=ORPHAN_PRAGMA_RULE,
                    message=(f"unused suppression pragma: disable="
                             f"{rule} ({where}) never matched a finding"),
                    snippet="",
                    severity=severity,
                ))
        findings.sort()
        return findings


def lint_paths(paths: Iterable[str],
               select: Iterable[str] | None = None,
               on_file: Callable[[str], None] | None = None,
               jobs: int = 1,
               ) -> tuple[list[Finding], int]:
    """Lint files and directory trees.

    Returns ``(findings, files_checked)``.  ``on_file`` (if given) is
    called with each path before it is linted — the CLI uses it for
    verbose progress.  ``jobs`` shards files over worker processes.

    Raises
    ------
    ConfigurationError
        On unreadable/unparsable files or unknown paths or rules.
    """
    session = LintSession(paths, select=select, on_file=on_file)
    findings = session.run_classic(jobs=jobs)
    return findings, session.files_checked
