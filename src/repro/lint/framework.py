"""Core machinery of the ``repro.lint`` static analyser.

The framework is deliberately small: a :class:`LintRule` registry, a
:class:`LintContext` describing one source file (its AST, raw lines,
inferred package, and suppression table), and driver functions that
run every registered rule over files or directories.

Suppression syntax
------------------
A finding is suppressed when the flagged line carries a comment of the
form ``# repro-lint: disable=RL001`` (several ids comma-separated, or
``all``).  A whole file opts out of one rule with
``# repro-lint: disable-file=RL001`` on any line.  Fixture files may
also override the inferred package with ``# repro-lint:
package=repro.sim`` so package-scoped rules can be exercised from
paths outside ``src/repro``.
"""

from __future__ import annotations

import ast
import os
import re
import tokenize
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Iterator

from repro.exceptions import ConfigurationError

__all__ = [
    "Finding",
    "LintContext",
    "LintRule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "register_rule",
]

#: ``# repro-lint: <directive>`` comment, e.g. ``disable=RL001,RL004``.
_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(?P<directive>disable-file|disable|package)\s*=\s*"
    r"(?P<value>[A-Za-z0-9_.,\s-]+)"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    column: int
    rule: str
    message: str
    snippet: str = field(default="", compare=False)

    def format(self) -> str:
        """The conventional ``path:line:col: RULE message`` line."""
        location = f"{self.path}:{self.line}:{self.column + 1}"
        text = f"{location}: {self.rule} {self.message}"
        if self.snippet:
            text += f"\n    {self.snippet}"
        return text

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly form consumed by the JSON reporter."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
        }


class _Suppressions:
    """Per-file suppression table parsed from ``# repro-lint:`` pragmas."""

    def __init__(self, source: str) -> None:
        self.line_rules: dict[int, set[str]] = {}
        self.file_rules: set[str] = set()
        self.package_override: str | None = None
        for lineno, comment in _iter_comments(source):
            match = _PRAGMA.search(comment)
            if match is None:
                continue
            directive = match.group("directive")
            value = match.group("value").strip()
            if directive == "package":
                self.package_override = value
                continue
            rules = {item.strip().upper() for item in value.split(",")
                     if item.strip()}
            if directive == "disable-file":
                self.file_rules |= rules
            else:
                self.line_rules.setdefault(lineno, set()).update(rules)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is disabled at ``line`` (1-based)."""
        if "ALL" in self.file_rules or rule in self.file_rules:
            return True
        at_line = self.line_rules.get(line)
        return at_line is not None and (
            "ALL" in at_line or rule in at_line
        )


def _iter_comments(source: str) -> Iterator[tuple[int, str]]:
    """Yield ``(lineno, comment_text)`` for every comment in ``source``.

    Uses :mod:`tokenize` so string literals containing ``#`` never read
    as comments; a file that fails to tokenize yields nothing (the AST
    parse will surface the real syntax error).
    """
    lines = iter(source.splitlines(keepends=True))
    try:
        for token in tokenize.generate_tokens(lambda: next(lines, "")):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError):
        return


def _infer_package(path: str) -> str:
    """Dotted package of ``path`` rooted at the ``repro`` directory.

    ``src/repro/sim/engine.py`` maps to ``repro.sim.engine``; paths not
    under a ``repro`` directory map to ``""`` (package-scoped rules
    then skip the file unless a ``package=`` pragma overrides).
    """
    parts = os.path.normpath(path).split(os.sep)
    if "repro" not in parts:
        return ""
    module_parts = parts[parts.index("repro"):]
    leaf = module_parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[:-3]
    if leaf == "__init__":
        module_parts = module_parts[:-1]
    else:
        module_parts = module_parts[:-1] + [leaf]
    return ".".join(module_parts)


@dataclass
class LintContext:
    """Everything a rule needs to know about one source file."""

    path: str
    source: str
    tree: ast.AST
    package: str
    suppressions: _Suppressions

    @property
    def lines(self) -> list[str]:
        return self.source.splitlines()

    def in_package(self, *prefixes: str) -> bool:
        """Whether this file lives under any of the dotted ``prefixes``."""
        return any(
            self.package == prefix or self.package.startswith(prefix + ".")
            for prefix in prefixes
        )

    def snippet(self, node: ast.AST) -> str:
        """The first source line of ``node``, stripped (for reports)."""
        lineno = getattr(node, "lineno", None)
        if lineno is None or lineno > len(self.lines):
            return ""
        return self.lines[lineno - 1].strip()


class LintRule:
    """Base class for one named check.

    Subclasses set :attr:`rule_id` / :attr:`title` / :attr:`rationale`
    and implement :meth:`check`, yielding :class:`Finding`\\ s (the
    driver applies suppressions afterwards, so rules never need to).
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, context: LintContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, context: LintContext, node: ast.AST,
                message: str) -> Finding:
        """A :class:`Finding` for ``node`` in ``context``."""
        return Finding(
            path=context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule=self.rule_id,
            message=message,
            snippet=context.snippet(node),
        )


_REGISTRY: dict[str, LintRule] = {}


def register_rule(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule to the global registry."""
    rule = cls()
    if not rule.rule_id:
        raise ConfigurationError(f"rule {cls.__name__} lacks a rule_id")
    if rule.rule_id in _REGISTRY:
        raise ConfigurationError(
            f"duplicate lint rule id {rule.rule_id!r}"
        )
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> tuple[LintRule, ...]:
    """Every registered rule, ordered by id."""
    return tuple(rule for __, rule in sorted(_REGISTRY.items()))


def get_rule(rule_id: str) -> LintRule:
    """The registered rule with this id.

    Raises
    ------
    ConfigurationError
        If no rule with ``rule_id`` exists.
    """
    try:
        return _REGISTRY[rule_id.upper()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown lint rule {rule_id!r} (known: {known})"
        ) from None


def _select_rules(select: Iterable[str] | None) -> tuple[LintRule, ...]:
    if select is None:
        return all_rules()
    return tuple(get_rule(rule_id) for rule_id in select)


def lint_source(source: str, path: str = "<string>",
                select: Iterable[str] | None = None) -> list[Finding]:
    """Lint one source string, returning unsuppressed findings.

    Parameters
    ----------
    source:
        Python source text.
    path:
        Path reported in findings and used to infer the package (a
        ``# repro-lint: package=...`` pragma overrides the inference).
    select:
        Optional iterable of rule ids to run (default: all).

    Raises
    ------
    ConfigurationError
        If the source does not parse, or ``select`` names an unknown
        rule.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        raise ConfigurationError(
            f"cannot lint {path}: {error.msg} (line {error.lineno})"
        ) from error
    suppressions = _Suppressions(source)
    package = suppressions.package_override
    if package is None:
        package = _infer_package(path)
    context = LintContext(path=path, source=source, tree=tree,
                          package=package, suppressions=suppressions)
    findings: list[Finding] = []
    for rule in _select_rules(select):
        for finding in rule.check(context):
            if not suppressions.is_suppressed(finding.rule, finding.line):
                findings.append(finding)
    findings.sort()
    return findings


def _iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Every ``.py`` file under the given files/directories, sorted."""
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d != "__pycache__" and not d.startswith(".")
                )
                for name in sorted(names):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        elif not os.path.exists(path):
            raise ConfigurationError(f"cannot lint {path!r}: no such file")
        elif path.endswith(".py"):
            yield path


def lint_paths(paths: Iterable[str],
               select: Iterable[str] | None = None,
               on_file: Callable[[str], None] | None = None,
               ) -> tuple[list[Finding], int]:
    """Lint files and directory trees.

    Returns ``(findings, files_checked)``.  ``on_file`` (if given) is
    called with each path before it is linted — the CLI uses it for
    verbose progress.

    Raises
    ------
    ConfigurationError
        On unreadable/unparsable files or unknown paths or rules.
    """
    findings: list[Finding] = []
    checked = 0
    rules = _select_rules(select)  # validate ids before any file I/O
    rule_ids = [rule.rule_id for rule in rules]
    for file_path in _iter_python_files(paths):
        if on_file is not None:
            on_file(file_path)
        try:
            with open(file_path, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            raise ConfigurationError(
                f"cannot read {file_path}: {error}"
            ) from error
        findings.extend(lint_source(source, path=file_path,
                                    select=rule_ids))
        checked += 1
    findings.sort()
    return findings, checked
