"""Whole-program index: symbol resolution, call graph, SCC order.

Built from per-file :class:`~repro.lint.summaries.ModuleFacts`, the
:class:`ProjectIndex` answers the cross-module questions the flow
rules ask: *which function does this dotted call name actually reach*
(chasing import aliases and package re-exports), *what class is this
local variable an instance of* (direct-constructor inference), and
*which functions can reach which* (the call graph, condensed into
Tarjan SCCs so summaries can be computed bottom-up).

Resolution is deliberately syntactic and unsound in the usual linter
ways — no duck typing, no dynamic dispatch, no ``getattr`` — the
precise limits are documented in DESIGN.md §16.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.lint.summaries import FunctionFacts, ModuleFacts

__all__ = [
    "CallSite",
    "ProjectIndex",
    "build_call_graph",
    "function_env",
    "strongly_connected_components",
]

#: Recursion guard for alias-chain resolution inside one function.
_MAX_VALUE_DEPTH = 8


@dataclass(frozen=True)
class CallSite:
    """One resolved project-internal call."""

    caller: str  #: fq of the calling function
    target: str  #: fq of the reached function (``mod.fn`` / ``mod.Cls.m``)
    call: Any  #: the ``["call", ...]`` vexpr
    line: int
    col: int
    is_ctor: bool  #: call of a class (reaches ``__init__`` if defined)


class ProjectIndex:
    """All extracted modules, with cross-module name resolution."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleFacts] = {}
        self.by_path: dict[str, str] = {}

    def add(self, facts: ModuleFacts) -> None:
        if not facts.module:
            return  # unpackaged file: single-file rules still cover it
        self.modules[facts.module] = facts
        self.by_path[facts.path] = facts.module

    # -- name resolution ----------------------------------------------

    def module_of(self, fq: str) -> str | None:
        """Longest known module that is a prefix of (or equals) ``fq``."""
        candidate = fq
        while candidate:
            if candidate in self.modules:
                return candidate
            if "." not in candidate:
                return None
            candidate = candidate.rsplit(".", 1)[0]
        return None

    def canonicalize(self, fq: str) -> str:
        """Chase re-exports until ``fq`` names a definition site.

        ``repro.kernels.ucb_scores`` (a package re-export) becomes
        ``repro.kernels.selection.ucb_scores``.  Unknown names pass
        through unchanged.
        """
        seen: set[str] = set()
        while fq not in seen:
            seen.add(fq)
            owner = self.module_of(fq)
            if owner is None or owner == fq:
                return fq
            symbol = fq[len(owner) + 1:]
            head, _, rest = symbol.partition(".")
            facts = self.modules[owner]
            suffix = f".{rest}" if rest else ""
            if head in facts.imports_objects:
                fq = facts.imports_objects[head] + suffix
                continue
            if head in facts.imports_modules:
                fq = facts.imports_modules[head] + suffix
                continue
            return fq
        return fq

    def resolve(self, module_name: str, dotted: str) -> str:
        """Canonical fully-qualified name of ``dotted`` seen from a module."""
        facts = self.modules.get(module_name)
        head, _, rest = dotted.partition(".")
        suffix = f".{rest}" if rest else ""
        if facts is not None:
            if head in facts.imports_objects:
                return self.canonicalize(facts.imports_objects[head]
                                         + suffix)
            if head in facts.imports_modules:
                return self.canonicalize(facts.imports_modules[head]
                                         + suffix)
            if (head in facts.top_names or head in facts.functions
                    or head in facts.classes):
                return self.canonicalize(f"{module_name}.{dotted}")
        return self.canonicalize(dotted)

    def split(self, fq: str) -> tuple[ModuleFacts, str] | None:
        """``(owning module facts, symbol path)`` for a project name."""
        owner = self.module_of(fq)
        if owner is None or owner == fq:
            return None
        return self.modules[owner], fq[len(owner) + 1:]

    def lookup_function(self, fq: str) -> tuple[ModuleFacts,
                                                FunctionFacts] | None:
        """Facts for a project function/method named by canonical ``fq``."""
        located = self.split(fq)
        if located is None:
            return None
        facts, symbol = located
        found = facts.functions.get(symbol)
        if found is not None:
            return facts, found
        if "." in symbol:  # possibly an inherited method
            cls_name, method = symbol.split(".", 1)
            if cls_name in facts.classes:
                inherited = self.lookup_method(
                    f"{facts.module}.{cls_name}", method)
                if inherited is not None and inherited != fq:
                    return self.lookup_function(inherited)
        return None

    def lookup_class(self, fq: str) -> tuple[ModuleFacts,
                                             str,
                                             dict[str, Any]] | None:
        located = self.split(fq)
        if located is None:
            return None
        facts, symbol = located
        info = facts.classes.get(symbol)
        if info is None:
            return None
        return facts, symbol, info

    def lookup_method(self, cls_fq: str, method: str,
                      _depth: int = 0) -> str | None:
        """fq of ``method`` on ``cls_fq``, walking project base classes."""
        if _depth > 8:
            return None
        located = self.lookup_class(cls_fq)
        if located is None:
            return None
        facts, cls_name, info = located
        if method in info["methods"]:
            return f"{facts.module}.{cls_name}.{method}"
        for base in info["bases"]:
            base_fq = self.resolve(facts.module, base)
            found = self.lookup_method(base_fq, method, _depth + 1)
            if found is not None:
                return found
        return None

    # -- constant evaluation ------------------------------------------

    def eval_constexpr(self, module_name: str, expr: Any,
                       _guard: frozenset[str] = frozenset(),
                       ) -> set[str] | None:
        """String set denoted by a ``constexpr``, or None if opaque."""
        if not isinstance(expr, list) or not expr:
            return None
        kind = expr[0]
        if kind == "str":
            return {expr[1]}
        if kind == "seq":
            union: set[str] = set()
            for item in expr[1]:
                values = self.eval_constexpr(module_name, item, _guard)
                if values is None:
                    return None
                union |= values
            return union
        if kind == "concat":
            left = self.eval_constexpr(module_name, expr[1], _guard)
            right = self.eval_constexpr(module_name, expr[2], _guard)
            if left is None or right is None:
                return None
            return left | right
        if kind == "ref":
            fq = self.resolve(module_name, expr[1])
            if fq in _guard:
                return None
            located = self.split(fq)
            if located is None:
                return None
            facts, symbol = located
            constant = facts.constants.get(symbol)
            if constant is None:
                return None
            return self.eval_constexpr(facts.module, constant[0],
                                       _guard | {fq})
        return None

    # -- value resolution ---------------------------------------------

    def resolve_value(self, module_name: str, env: dict[str, Any],
                      value: Any, depth: int = 0) -> tuple[str, ...]:
        """Abstract value of a vexpr: what does this expression denote?

        Returns one of ``("class", fq)``, ``("func", fq)``,
        ``("instance", cls_fq)``, ``("ret_of", fq)``,
        ``("external", fq)``, ``("external_call", fq)``,
        ``("str", s)``, or ``("other",)``.
        """
        if depth > _MAX_VALUE_DEPTH or not isinstance(value, list) \
                or not value:
            return ("other",)
        kind = value[0]
        if kind == "str":
            return ("str", value[1])
        if kind == "ref":
            fq = self.resolve(module_name, value[1])
            located = self.split(fq)
            if located is None:
                return ("external", fq)
            facts, symbol = located
            if symbol in facts.classes:
                return ("class", fq)
            if self.lookup_function(fq) is not None:
                return ("func", fq)
            return ("external", fq)
        if kind == "name":
            bound = env.get(value[1])
            if bound is None:
                return ("other",)
            return self.resolve_value(module_name, env, bound, depth + 1)
        if kind == "call":
            func = self.resolve_value(module_name, env, value[1],
                                      depth + 1)
            if func[0] == "class":
                return ("instance", func[1])
            if func[0] == "func":
                return ("ret_of", func[1])
            if func[0] == "external":
                return ("external_call", func[1])
            return ("other",)
        return ("other",)


def function_env(facts: FunctionFacts) -> dict[str, Any]:
    """Last-assignment environment of a function body.

    Maps local names to the vexpr most recently assigned to them
    (flow-insensitive: the textually last assignment wins, which is
    the common straight-line case the rules care about).
    """
    env: dict[str, Any] = {}
    for op in facts.ops:
        if op[0] == "assign":
            env[op[1]] = op[2]
    return env


def resolve_call_target(index: ProjectIndex, module_name: str,
                        caller: FunctionFacts, env: dict[str, Any],
                        call: Any) -> tuple[str, bool] | None:
    """``(target_fq, is_ctor)`` for a call vexpr, if it stays in-project."""
    func = call[1]
    if not isinstance(func, list) or not func:
        return None
    if func[0] in ("ref", "name"):
        resolved = index.resolve_value(module_name, env, func)
        if resolved[0] == "func":
            return resolved[1], False
        if resolved[0] == "class":
            return resolved[1], True
        return None
    if func[0] == "attr":
        base, attr = func[1], func[2]
        base_value = index.resolve_value(module_name, env, base)
        if (isinstance(base, list) and base
                and base[0] == "name" and base[1] in ("self", "cls")
                and caller.is_method and "." in caller.name):
            cls_name = caller.name.rsplit(".", 1)[0]
            found = index.lookup_method(f"{module_name}.{cls_name}", attr)
            if found is not None:
                return found, False
            return None
        if base_value[0] == "instance":
            found = index.lookup_method(base_value[1], attr)
            if found is not None:
                return found, False
        if base_value[0] == "class":
            found = index.lookup_method(base_value[1], attr)
            if found is not None:
                return found, False
    return None


def build_call_graph(index: ProjectIndex) -> dict[str, list[CallSite]]:
    """``caller fq -> resolved in-project call sites`` for every function."""
    graph: dict[str, list[CallSite]] = {}
    for module_name, module_facts in index.modules.items():
        for qualname, facts in module_facts.functions.items():
            caller_fq = f"{module_name}.{qualname}"
            env = function_env(facts)
            sites: list[CallSite] = []
            for call in facts.calls:
                resolved = resolve_call_target(index, module_name, facts,
                                               env, call)
                if resolved is None:
                    continue
                target, is_ctor = resolved
                if is_ctor:
                    init = index.lookup_method(target, "__init__")
                    target_fn = init if init is not None else target
                else:
                    target_fn = target
                sites.append(CallSite(caller=caller_fq, target=target_fn,
                                      call=call, line=call[4],
                                      col=call[5], is_ctor=is_ctor))
            graph[caller_fq] = sites
    return graph


def strongly_connected_components(
        graph: dict[str, list[CallSite]]) -> list[list[str]]:
    """Tarjan SCCs of the call graph, in reverse-topological order.

    Callees appear before callers, so a bottom-up summary pass can
    fold each component once (iterating to a fixpoint only *inside*
    recursive components).  Iterative implementation — src call chains
    are deeper than the default recursion limit is generous for.
    """
    edges: dict[str, list[str]] = {
        node: sorted({site.target for site in sites if site.target in graph})
        for node, sites in graph.items()
    }
    index_counter = 0
    indices: dict[str, int] = {}
    lowlinks: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []

    for root in sorted(graph):
        if root in indices:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, edge_index = work.pop()
            if edge_index == 0:
                indices[node] = index_counter
                lowlinks[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            successors = edges[node]
            while edge_index < len(successors):
                successor = successors[edge_index]
                edge_index += 1
                if successor not in indices:
                    work.append((node, edge_index))
                    work.append((successor, 0))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlinks[node] = min(lowlinks[node],
                                         indices[successor])
            if advanced:
                continue
            if lowlinks[node] == indices[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
    return components
