"""Whole-program flow analysis driver (``repro lint --flow``).

Orchestrates the two analysis phases:

1. **Extraction** (per file, cached): each file is lowered to
   :class:`~repro.lint.summaries.ModuleFacts` — reusing the session's
   already-parsed AST when available and a content-hash disk cache
   (:class:`~repro.lint.summaries.FactsCache`) across runs, so
   incremental invocations only re-extract files whose bytes changed.
2. **Interpretation** (whole program, cheap): a
   :class:`~repro.lint.project.ProjectIndex` resolves names across
   modules, the call graph is condensed into SCCs, and per-function
   :class:`FunctionSummary` facts (RNG taint of return values,
   emit-kind forwarding, mutated parameters, global writes) are
   computed bottom-up to a fixpoint.  The RL101–RL105 rules then read
   those summaries to report findings.

``--diff <rev>`` mode keeps phase 2's index/summaries whole-program
(they are cheap and cached) but restricts *rule interpretation* to the
impact set: functions overlapping the diff hunks, expanded through the
reverse call graph to every caller whose behaviour the change can
alter, mapped back to files.
"""

from __future__ import annotations

import os
import subprocess
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import ConfigurationError
from repro.lint.framework import (Finding, LintSession, _Suppressions,
                                  build_context)
from repro.lint.project import (CallSite, ProjectIndex, build_call_graph,
                                function_env, strongly_connected_components)
from repro.lint.summaries import (FactsCache, FunctionFacts, ModuleFacts,
                                  content_hash, extract_module_facts)

__all__ = [
    "FlowAnalysis",
    "FlowResult",
    "FunctionSummary",
    "run_flow",
]

#: Raw RNG stream constructors (canonical dotted names).
RAW_RNG_CONSTRUCTORS = frozenset({
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.MT19937",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "random.Random",
    "random.SystemRandom",
})

#: The only functions allowed to *birth* RNG streams (and therefore
#: exempt from RL101 inside their own bodies).
SANCTIONED_RNG_FUNCTIONS = frozenset({
    "repro.sim.rng.seeded_generator",
    "repro.sim.rng.seed_sequence",
})

#: Fixpoint iteration cap inside one recursive SCC.
_MAX_SCC_PASSES = 10

#: Reverse-call-graph expansion cap for ``--diff`` impact sets.
_MAX_IMPACT = 10_000


@dataclass
class FunctionSummary:
    """Bottom-up facts about one function, joined over all paths."""

    #: Return-value lattice points: ``taint`` (returns a raw-born RNG),
    #: ``clean`` (returns a sanctioned stream), ``other``, plus
    #: parameter-dependent tokens ``pid:<p>`` (returns parameter p) and
    #: ``pcall:<p>`` (returns/invokes a call of parameter p).
    returns: frozenset[str] = frozenset()
    #: Parameters this function forwards into an emit-kind position.
    emit_params: frozenset[str] = frozenset()
    #: Parameters written through (directly or via callees).
    mutated_params: frozenset[str] = frozenset()
    #: Writes module-level state, directly or transitively.
    writes_global: bool = False
    #: First impure callee fq (for diagnostics), if any.
    impure_via: str | None = None


@dataclass
class FlowResult:
    """Outcome of one ``run_flow`` invocation."""

    findings: list[Finding]
    total_files: int
    analyzed_files: list[str]
    cache_hits: int = 0
    cache_misses: int = 0
    changed_functions: list[str] = field(default_factory=list)
    impact_functions: int = 0


class FlowAnalysis:
    """Everything the flow rules need, precomputed once per run."""

    def __init__(self, index: ProjectIndex,
                 sources: dict[str, str]) -> None:
        self.index = index
        self.sources = sources
        #: fq -> (module name, function facts)
        self.functions: dict[str, tuple[str, FunctionFacts]] = {}
        for module_name, module_facts in index.modules.items():
            for qualname, facts in module_facts.functions.items():
                self.functions[f"{module_name}.{qualname}"] = (
                    module_name, facts)
        self.call_graph: dict[str, list[CallSite]] = build_call_graph(index)
        self.reverse_graph: dict[str, set[str]] = {}
        for caller, sites in self.call_graph.items():
            for site in sites:
                self.reverse_graph.setdefault(site.target,
                                              set()).add(caller)
        self.summaries: dict[str, FunctionSummary] = {}
        self._compute_summaries()

    # -- summary fixpoint ---------------------------------------------

    def _compute_summaries(self) -> None:
        self.summaries = {fq: FunctionSummary() for fq in self.functions}
        components = strongly_connected_components(self.call_graph)
        for component in components:
            for _ in range(_MAX_SCC_PASSES):
                changed = False
                for fq in component:
                    if fq not in self.functions:
                        continue
                    updated = self._summarize(fq)
                    if updated != self.summaries[fq]:
                        self.summaries[fq] = updated
                        changed = True
                if not changed:
                    break

    def summary_of(self, fq: str) -> FunctionSummary | None:
        return self.summaries.get(fq)

    def bind_args(self, callee: FunctionFacts,
                  call: Any) -> dict[str, Any]:
        """Map callee parameter names to the caller's argument vexprs."""
        bound: dict[str, Any] = {}
        for position, arg in enumerate(call[2]):
            if position < len(callee.params):
                bound[callee.params[position]] = arg
        for keyword, value in call[3]:
            if keyword in callee.params or keyword in callee.kwonly:
                bound[keyword] = value
        return bound

    def _summarize(self, fq: str) -> FunctionSummary:
        module_name, facts = self.functions[fq]
        env = function_env(facts)
        params = set(facts.params) | set(facts.kwonly)
        returns: set[str] = set()
        for op in facts.ops:
            if op[0] != "ret":
                continue
            value = op[1]
            if value[0] == "name" and value[1] in params:
                returns.add(f"pid:{value[1]}")
                continue
            if (value[0] == "call" and value[1][0] == "name"
                    and value[1][1] in params):
                returns.add(f"pcall:{value[1][1]}")
                continue
            returns.add(self.rng_value(module_name, env, value))
        emit_params: set[str] = set()
        mutated = self._direct_mutations(facts, env, params)
        writes_global = any(
            not mutation[4] and mutation[1] not in params
            and mutation[1] not in ("self", "cls")
            and self.is_module_state(module_name, mutation[1])
            and not self.is_module_function_call(module_name, mutation)
            for mutation in facts.mutations
        )
        impure_via: str | None = None
        for call in facts.calls:
            kind_value = _emit_kind_arg(call)
            if kind_value is not None:
                if kind_value[0] == "name" and kind_value[1] in params:
                    emit_params.add(kind_value[1])
        for site in self.call_graph.get(fq, ()):
            callee = self.functions.get(site.target)
            callee_summary = self.summaries.get(site.target)
            if callee is None or callee_summary is None:
                continue
            bound = self.bind_args(callee[1], site.call)
            for param_name, arg in bound.items():
                if arg[0] != "name" or arg[1] not in params:
                    continue
                if param_name in callee_summary.emit_params:
                    emit_params.add(arg[1])
                if param_name in callee_summary.mutated_params:
                    mutated.add(arg[1])
            if callee_summary.writes_global and not writes_global:
                writes_global = True
                impure_via = site.target
        return FunctionSummary(
            returns=frozenset(returns),
            emit_params=frozenset(emit_params),
            mutated_params=frozenset(mutated),
            writes_global=writes_global,
            impure_via=impure_via,
        )

    def _direct_mutations(self, facts: FunctionFacts, env: dict[str, Any],
                          params: set[str]) -> set[str]:
        """Parameter names mutated in this body (aliases included)."""
        mutated: set[str] = set()
        for kind, root, _line, _col, _local in facts.mutations:
            if root in params:
                mutated.add(root)
                continue
            alias = env.get(root)
            if (isinstance(alias, list) and alias
                    and alias[0] == "name" and alias[1] in params):
                mutated.add(alias[1])
        return mutated

    def is_module_function_call(self, module_name: str,
                                mutation: list) -> bool:
        """Whether a ``method:*`` mutation is really ``module.func(...)``.

        ``np.sort(x)`` parses as a ``.sort()`` call on the name ``np``;
        when the receiver is an imported module the call cannot mutate
        it, so it must not count as a mutation.
        """
        kind, root = mutation[0], mutation[1]
        if not isinstance(kind, str) or not kind.startswith("method:"):
            return False
        facts = self.index.modules.get(module_name)
        return facts is not None and root in facts.imports_modules

    def is_module_state(self, module_name: str, root: str) -> bool:
        facts = self.index.modules.get(module_name)
        if facts is None:
            return False
        return root in facts.top_names or root in facts.imports_modules \
            or root in facts.imports_objects

    # -- RNG taint lattice --------------------------------------------

    def rng_value(self, module_name: str, env: dict[str, Any],
                  value: Any, depth: int = 0) -> str:
        """Taint of a value: ``taint`` / ``clean`` / ``other``."""
        if depth > 8 or not isinstance(value, list) or not value:
            return "other"
        kind = value[0]
        if kind == "name":
            bound = env.get(value[1])
            if bound is None:
                return "other"
            return self.rng_value(module_name, env, bound, depth + 1)
        if kind == "call":
            callable_kind = self.rng_callable(module_name, env, value[1])
            if callable_kind == "raw":
                return "taint"
            if callable_kind == "clean":
                return "clean"
            if callable_kind.startswith("func:"):
                summary = self.summaries.get(callable_kind[5:])
                if summary is not None:
                    if "taint" in summary.returns:
                        return "taint"
                    if "clean" in summary.returns:
                        return "clean"
            return "other"
        return "other"

    def rng_callable(self, module_name: str, env: dict[str, Any],
                     func: Any, depth: int = 0) -> str:
        """Classify a callee: ``raw`` / ``clean`` / ``func:<fq>`` / ``other``."""
        if depth > 8 or not isinstance(func, list) or not func:
            return "other"
        if func[0] == "name":
            bound = env.get(func[1])
            if bound is None:
                return "other"
            return self.rng_callable(module_name, env, bound, depth + 1)
        if func[0] == "ref":
            fq = self.index.resolve(module_name, func[1])
            if fq in RAW_RNG_CONSTRUCTORS:
                return "raw"
            if fq in SANCTIONED_RNG_FUNCTIONS:
                return "clean"
            if self.index.lookup_function(fq) is not None:
                return f"func:{fq}"
        return "other"

    # -- reporting helpers --------------------------------------------

    def snippet(self, path: str, lineno: int) -> str:
        source = self.sources.get(path)
        if source is None:
            return ""
        lines = source.splitlines()
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return ""

    def path_of_module(self, module_name: str) -> str:
        facts = self.index.modules.get(module_name)
        return facts.path if facts is not None else "<unknown>"


def _emit_kind_arg(call: Any) -> Any | None:
    """The event-kind argument if ``call`` is a ``*.emit(...)`` call."""
    func = call[1]
    if not (isinstance(func, list) and func
            and func[0] == "attr" and func[2] == "emit"):
        if not (isinstance(func, list) and func and func[0] == "ref"
                and func[1].endswith(".emit")):
            return None
    if call[2]:
        return call[2][0]
    for keyword, value in call[3]:
        if keyword == "kind":
            return value
    return None


# -- diff-aware impact computation ------------------------------------


def _git_changed_lines(rev: str, repo_root: str) -> dict[str, set[int]]:
    """New-side changed line numbers per repo-relative path."""
    command = ["git", "diff", "--unified=0", rev, "--", "*.py"]
    try:
        completed = subprocess.run(
            command, cwd=repo_root, capture_output=True, text=True,
            timeout=120, check=False)
    except (OSError, subprocess.TimeoutExpired) as error:
        raise ConfigurationError(
            f"cannot run git diff against {rev!r}: {error}"
        ) from error
    if completed.returncode != 0:
        detail = completed.stderr.strip() or "git diff failed"
        raise ConfigurationError(
            f"cannot diff against {rev!r}: {detail}"
        )
    changed: dict[str, set[int]] = {}
    current: str | None = None
    for line in completed.stdout.splitlines():
        if line.startswith("+++ "):
            target = line[4:].strip()
            if target.startswith("b/"):
                target = target[2:]
            current = None if target == "/dev/null" else target
        elif line.startswith("@@") and current is not None:
            try:
                new_span = line.split("+", 1)[1].split(" ", 1)[0]
            except IndexError:
                continue
            if "," in new_span:
                start_text, count_text = new_span.split(",", 1)
                start, count = int(start_text), int(count_text)
            else:
                start, count = int(new_span), 1
            lines = changed.setdefault(current, set())
            if count == 0:  # pure deletion: touch the boundary line
                lines.add(max(start, 1))
            else:
                lines.update(range(start, start + count))
    return changed


def _changed_functions(analysis: FlowAnalysis,
                       changed: dict[str, set[int]],
                       repo_root: str) -> tuple[set[str], set[str]]:
    """``(changed function fqs, files changed outside any function)``."""
    by_relpath: dict[str, ModuleFacts] = {}
    for module_facts in analysis.index.modules.values():
        rel = os.path.relpath(os.path.abspath(module_facts.path),
                              repo_root).replace(os.sep, "/")
        by_relpath[rel] = module_facts
    changed_fqs: set[str] = set()
    whole_files: set[str] = set()
    for rel, lines in changed.items():
        module_facts = by_relpath.get(rel)
        if module_facts is None:
            continue
        claimed: set[int] = set()
        for qualname, facts in module_facts.functions.items():
            if qualname == "<module>":
                continue
            span = set(range(facts.lineno, facts.end_lineno + 1))
            hit = lines & span
            if hit:
                changed_fqs.add(f"{module_facts.module}.{qualname}")
                claimed |= hit
        if lines - claimed:
            # a change outside every function body (imports, constants,
            # class attributes) can affect anything in the file
            whole_files.add(module_facts.path)
            changed_fqs.update(
                f"{module_facts.module}.{qualname}"
                for qualname in module_facts.functions)
    return changed_fqs, whole_files


def _impact_files(analysis: FlowAnalysis, changed_fqs: set[str],
                  whole_files: set[str]) -> tuple[set[str], int]:
    """Expand changed functions through the reverse call graph."""
    impact = set(changed_fqs)
    frontier = list(changed_fqs)
    while frontier and len(impact) < _MAX_IMPACT:
        fq = frontier.pop()
        for caller in analysis.reverse_graph.get(fq, ()):
            if caller not in impact:
                impact.add(caller)
                frontier.append(caller)
    files = set(whole_files)
    for fq in impact:
        located = analysis.functions.get(fq)
        if located is not None:
            files.add(analysis.path_of_module(located[0]))
    return files, len(impact)


# -- driver -----------------------------------------------------------


def run_flow(session: LintSession, *,
             cache_path: str | None = None,
             diff_rev: str | None = None,
             repo_root: str = ".",
             select: list[str] | None = None) -> FlowResult:
    """Run the whole-program rules over the session's files.

    Parameters
    ----------
    session:
        The shared :class:`LintSession` (its parse cache is reused and
        its pragma-usage audit is fed so orphan detection covers flow
        suppressions too).
    cache_path:
        Facts-cache JSON path, or None to disable the disk cache.
    diff_rev:
        Git revision for diff-aware mode; rule findings are restricted
        to the impact set of functions changed since that revision.
    select:
        Flow rule ids to run (default: all RL10x rules).
    """
    from repro.lint.rules_flow import select_flow_rules

    rules = select_flow_rules(select)
    cache = FactsCache(cache_path)
    index = ProjectIndex()
    sources: dict[str, str] = {}
    tables: dict[str, _Suppressions] = {}
    keep_hashes: set[str] = set()
    for path in session.files:
        parsed = session.parsed(path)
        if parsed is not None:
            source = parsed.source
        else:
            try:
                with open(path, encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as error:
                raise ConfigurationError(
                    f"cannot read {path}: {error}"
                ) from error
        sources[path] = source
        digest = content_hash(source)
        keep_hashes.add(digest)
        cached = cache.get(digest)
        if cached is not None and cached.path == path:
            facts = cached
            tables[path] = (parsed.suppressions if parsed is not None
                            else _Suppressions(source))
        else:
            context = parsed if parsed is not None \
                else session.context(path)
            facts = extract_module_facts(context)
            cache.put(facts)
            tables[path] = context.suppressions
        index.add(facts)
    cache.save(keep=keep_hashes)

    analysis = FlowAnalysis(index, sources)

    analyzed: set[str] = {facts.path
                          for facts in index.modules.values()}
    changed_fqs: set[str] = set()
    impact_count = 0
    if diff_rev is not None:
        changed = _git_changed_lines(diff_rev, repo_root)
        changed_fqs, whole_files = _changed_functions(analysis, changed,
                                                      repo_root)
        analyzed, impact_count = _impact_files(analysis, changed_fqs,
                                               whole_files)

    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check(analysis):
            if finding.path not in analyzed:
                continue
            table = tables.get(finding.path)
            if table is not None and table.is_suppressed(finding.rule,
                                                         finding.line):
                continue
            findings.append(finding)
    findings.sort()
    for path, table in tables.items():
        session.merge_inventory(path, table)
    return FlowResult(
        findings=findings,
        total_files=len(session.files),
        analyzed_files=sorted(analyzed),
        cache_hits=cache.hits,
        cache_misses=cache.misses,
        changed_functions=sorted(changed_fqs),
        impact_functions=impact_count,
    )
