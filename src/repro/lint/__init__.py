"""Determinism & correctness static analysis for the reproduction.

``repro.lint`` is an AST-based linter in two layers.  The *classic*
single-file rules encode repo-specific invariants that keep CMAB-HS
runs bit-identical across checkpoint/resume, parallel workers, and
strict verification mode:

* **RL001** — RNG construction (``np.random.*``, stdlib ``random``)
  only inside :mod:`repro.sim.rng`.
* **RL002** — no wall-clock reads in the ``sim``/``game``/``bandits``/
  ``core`` hot paths; use the :mod:`repro.obs.timing` shim.
* **RL003** — every literal ``Tracer.emit(kind, ...)`` kind must be a
  member of :data:`repro.obs.events.EVENT_KINDS`.
* **RL004** — no float ``==``/``!=`` on model quantities in
  ``game``/``verify``; use ``math.isclose`` or
  :mod:`repro.verify.compare`.
* **RL005** — no swallowed exceptions (bare ``except:`` /
  ``except Exception: pass``) in ``faults``/``parallel``/persistence.
* **RL006** — nothing unpicklable (lambdas, nested functions) may
  cross the :class:`~repro.parallel.ParallelExecutor` task boundary.

The *flow* layer (``repro lint --flow``) runs whole-program rules
RL101–RL105 over a project-wide call graph with bottom-up function
summaries — interprocedural RNG taint, kernel purity, event-kind
exhaustiveness across call chains, checkpoint schema symmetry, and
scalar/vector backend parity.  See :mod:`repro.lint.flow` and
:mod:`repro.lint.rules_flow`.

Findings are suppressed per line with ``# repro-lint: disable=RL001``
(comma-separate several ids, or ``disable=all``); a justification on
the same comment is encouraged — suppressions that stop matching any
finding are themselves reported (RL007).  Run it as ``repro lint
src/`` (optionally ``--flow``) or via :func:`lint_paths`.
"""

from repro.lint.framework import (
    Finding,
    LintContext,
    LintRule,
    LintSession,
    ORPHAN_PRAGMA_RULE,
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
    register_rule,
)
from repro.lint.baseline import (
    filter_baselined,
    finding_fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lint.reporters import (
    findings_to_json,
    findings_to_sarif,
    render_findings,
)
from repro.lint.flow import FlowAnalysis, FlowResult, run_flow
from repro.lint import rules as _rules  # registers RL001-RL006
from repro.lint.rules_flow import (  # registers RL101-RL105
    all_flow_rules,
    flow_rule_meta,
)

__all__ = [
    "Finding",
    "FlowAnalysis",
    "FlowResult",
    "LintContext",
    "LintRule",
    "LintSession",
    "ORPHAN_PRAGMA_RULE",
    "all_flow_rules",
    "all_rules",
    "filter_baselined",
    "finding_fingerprint",
    "findings_to_json",
    "findings_to_sarif",
    "flow_rule_meta",
    "get_rule",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register_rule",
    "render_findings",
    "run_flow",
    "write_baseline",
]
