"""Determinism & correctness static analysis for the reproduction.

``repro.lint`` is a small AST-based linter whose rules encode the
repo-specific invariants that keep CMAB-HS runs bit-identical across
checkpoint/resume, parallel workers, and strict verification mode:

* **RL001** — RNG construction (``np.random.*``, stdlib ``random``)
  only inside :mod:`repro.sim.rng`.
* **RL002** — no wall-clock reads in the ``sim``/``game``/``bandits``/
  ``core`` hot paths; use the :mod:`repro.obs.timing` shim.
* **RL003** — every literal ``Tracer.emit(kind, ...)`` kind must be a
  member of :data:`repro.obs.events.EVENT_KINDS`.
* **RL004** — no float ``==``/``!=`` on model quantities in
  ``game``/``verify``; use ``math.isclose`` or
  :mod:`repro.verify.compare`.
* **RL005** — no swallowed exceptions (bare ``except:`` /
  ``except Exception: pass``) in ``faults``/``parallel``/persistence.
* **RL006** — nothing unpicklable (lambdas, nested functions) may
  cross the :class:`~repro.parallel.ParallelExecutor` task boundary.

Findings are suppressed per line with ``# repro-lint: disable=RL001``
(comma-separate several ids, or ``disable=all``); a justification on
the same comment is encouraged.  Run it as ``repro lint src/`` or via
:func:`lint_paths`.
"""

from repro.lint.framework import (
    Finding,
    LintContext,
    LintRule,
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
    register_rule,
)
from repro.lint.reporters import findings_to_json, render_findings
from repro.lint import rules as _rules  # registers RL001-RL006

__all__ = [
    "Finding",
    "LintContext",
    "LintRule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "register_rule",
    "findings_to_json",
    "render_findings",
]
