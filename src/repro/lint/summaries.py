"""Per-file fact extraction for the whole-program flow engine.

:func:`extract_module_facts` lowers one parsed file into
:class:`ModuleFacts`: import tables, top-level constants, classes, and
per-function :class:`FunctionFacts` holding a tiny JSON-serialisable
IR (assignments, returns, calls, mutations, dict-key traffic).  The
IR is deliberately lossy — just enough structure for the RL101–RL105
rules — and is cached on disk keyed by file content hash
(:class:`FactsCache`), so incremental ``repro lint --flow`` runs skip
re-extraction of unchanged files entirely.

Value-expression mini-IR (``vexpr``), encoded as nested lists so it
round-trips through JSON unchanged::

    ["str", s]                      string literal
    ["const"]                       any other literal
    ["name", ident]                 function-local name (incl. params)
    ["ref", dotted]                 dotted chain rooted outside locals
    ["attr", base_vexpr, ident]     attribute on a computed base
    ["call", func, [args], [[kw, v], ...], line, col]
    ["other"]                       anything else

Constant expressions (``constexpr``) describe key domains for RL104::

    ["str", s] | ["seq", [items]] | ["concat", a, b] | ["ref", dotted]
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any

from repro.lint.framework import LintContext

__all__ = [
    "FACTS_VERSION",
    "FactsCache",
    "FunctionFacts",
    "ModuleFacts",
    "extract_module_facts",
]

#: Bump whenever the extraction output changes shape — invalidates
#: every cached entry at once.
FACTS_VERSION = 1

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "clear", "reverse", "sort",
    "add", "discard", "update", "setdefault", "pop", "popitem",
    "fill", "resize", "put", "itemset", "setflags", "partial",
})

#: Parameter names treated as declared output buffers by convention.
_CONVENTIONAL_OUT = ("out", "scratch")


def _is_conventional_out(name: str) -> bool:
    return name in _CONVENTIONAL_OUT or name.startswith("out_")


def _dotted_chain(node: ast.AST) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _root_name(node: ast.AST) -> str | None:
    """The base ``Name`` a subscript/attribute chain hangs off."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


@dataclass
class FunctionFacts:
    """Extraction result for one function, method, or module body."""

    name: str
    lineno: int
    end_lineno: int
    col: int
    params: list[str] = field(default_factory=list)
    kwonly: list[str] = field(default_factory=list)
    required: int = 0
    is_method: bool = False
    out_params: list[str] = field(default_factory=list)
    twin: str | None = None
    #: ``["assign", name, vexpr, line, col]`` / ``["ret", vexpr, line, col]``
    ops: list[list[Any]] = field(default_factory=list)
    #: Every call expression in the body (``["call", ...]`` vexprs).
    calls: list[list[Any]] = field(default_factory=list)
    #: ``[kind, root, line, col, root_is_local]``
    mutations: list[list[Any]] = field(default_factory=list)
    global_decls: list[str] = field(default_factory=list)
    dict_writes: list[list[Any]] = field(default_factory=list)
    write_domains: list[Any] = field(default_factory=list)
    writes_open: bool = False
    dict_reads: list[str] = field(default_factory=list)
    reads_required: list[str] = field(default_factory=list)
    read_domains: list[Any] = field(default_factory=list)
    reads_open: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name, "lineno": self.lineno,
            "end_lineno": self.end_lineno, "col": self.col,
            "params": self.params, "kwonly": self.kwonly,
            "required": self.required, "is_method": self.is_method,
            "out_params": self.out_params, "twin": self.twin,
            "ops": self.ops, "calls": self.calls,
            "mutations": self.mutations,
            "global_decls": self.global_decls,
            "dict_writes": self.dict_writes,
            "write_domains": self.write_domains,
            "writes_open": self.writes_open,
            "dict_reads": self.dict_reads,
            "reads_required": self.reads_required,
            "read_domains": self.read_domains,
            "reads_open": self.reads_open,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> FunctionFacts:
        return cls(**payload)


@dataclass
class ModuleFacts:
    """Extraction result for one file."""

    module: str
    path: str
    content_hash: str
    imports_modules: dict[str, str] = field(default_factory=dict)
    imports_objects: dict[str, str] = field(default_factory=dict)
    top_names: list[str] = field(default_factory=list)
    #: ``name -> [constexpr, lineno]`` for evaluable top-level assigns.
    constants: dict[str, list[Any]] = field(default_factory=dict)
    #: ``class -> {"bases": [dotted], "methods": [names],
    #: "lineno": int, "twin": str | None}``
    classes: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: qualname (``f`` / ``Cls.m`` / ``<module>``) -> facts
    functions: dict[str, FunctionFacts] = field(default_factory=dict)
    #: Every dotted reference appearing anywhere in the file.
    refs: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "module": self.module, "path": self.path,
            "content_hash": self.content_hash,
            "imports_modules": self.imports_modules,
            "imports_objects": self.imports_objects,
            "top_names": self.top_names,
            "constants": self.constants,
            "classes": self.classes,
            "functions": {name: facts.to_dict()
                          for name, facts in self.functions.items()},
            "refs": self.refs,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> ModuleFacts:
        functions = {name: FunctionFacts.from_dict(facts)
                     for name, facts in payload["functions"].items()}
        return cls(**{**payload, "functions": functions})


def _constexpr(node: ast.AST) -> list[Any] | None:
    """Lower a constant-ish expression to a ``constexpr``, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return ["str", node.value]
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        items = [_constexpr(element) for element in node.elts]
        if all(item is not None for item in items):
            return ["seq", items]
        return None
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("frozenset", "tuple", "list", "set", "sorted"):
            if len(node.args) == 1 and not node.keywords:
                return _constexpr(node.args[0])
        return None
    if isinstance(node, ast.Name):
        return ["ref", node.id]
    if isinstance(node, ast.Attribute):
        dotted = _dotted_chain(node)
        return ["ref", dotted] if dotted else None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _constexpr(node.left)
        right = _constexpr(node.right)
        if left is not None and right is not None:
            return ["concat", left, right]
    return None


class _BodyExtractor(ast.NodeVisitor):
    """Walks one function (or module) body collecting facts.

    Nested function and lambda bodies are folded into the enclosing
    function: their calls and mutations happen (at most) when the
    parent runs, and treating them inline keeps the summary lattice
    one level deep.
    """

    def __init__(self, facts: FunctionFacts, local_names: set[str],
                 refs: list[str]) -> None:
        self.facts = facts
        self.locals = local_names
        self.refs = refs
        #: comprehension/loop variable -> key-domain constexpr (or None)
        self.var_domains: dict[str, list[Any] | None] = {}

    # -- vexpr lowering -----------------------------------------------

    def vexpr(self, node: ast.AST) -> list[Any]:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str):
                return ["str", node.value]
            return ["const"]
        if isinstance(node, ast.Name):
            if node.id in self.locals:
                return ["name", node.id]
            self.refs.append(node.id)
            return ["ref", node.id]
        if isinstance(node, ast.Attribute):
            dotted = _dotted_chain(node)
            if dotted is not None:
                root = dotted.split(".", 1)[0]
                if root not in self.locals:
                    self.refs.append(dotted)
                    return ["ref", dotted]
            return ["attr", self.vexpr(node.value), node.attr]
        if isinstance(node, ast.Call):
            args = []
            for arg in node.args:
                if isinstance(arg, ast.Starred):
                    args.append(["other"])
                else:
                    args.append(self.vexpr(arg))
            kwargs = [[kw.arg, self.vexpr(kw.value)]
                      for kw in node.keywords if kw.arg is not None]
            return ["call", self.vexpr(node.func), args, kwargs,
                    node.lineno, node.col_offset]
        return ["other"]

    # -- statement visitors -------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        value = self.vexpr(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if target.id in self.facts.global_decls:
                    self._mutation("global", target.id, target, local=False)
                self.facts.ops.append(["assign", target.id, value,
                                       node.lineno, node.col_offset])
            else:
                self._store_target(target)
        if (len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.DictComp)):
            domain = self._comp_domain(node.value)
            self.var_domains[node.targets[0].id] = domain
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        # The annotation itself is a type expression, not a value
        # flow — visiting it would make `x: np.random.Generator` look
        # like an RNG reference, so only the assigned value is walked.
        if node.value is not None:
            value = self.vexpr(node.value)
            if isinstance(node.target, ast.Name):
                self.facts.ops.append(["assign", node.target.id, value,
                                       node.lineno, node.col_offset])
            else:
                self._store_target(node.target)
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, ast.Name):
            if target.id in self.facts.global_decls:
                self._mutation("global", target.id, target, local=False)
            self.facts.ops.append(["assign", target.id, ["other"],
                                   node.lineno, node.col_offset])
        else:
            self._store_target(target, kind="augassign")
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        value = self.vexpr(node.value) if node.value is not None else ["const"]
        self.facts.ops.append(["ret", value, node.lineno, node.col_offset])
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if isinstance(node.target, ast.Name):
            domain = _constexpr(node.iter)
            previous = self.var_domains.get(node.target.id)
            self.var_domains[node.target.id] = domain
            self.generic_visit(node)
            self.var_domains[node.target.id] = previous
            return
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested(node)

    def _visit_nested(self, node: ast.AST) -> None:
        for statement in getattr(node, "body", []):
            self.visit(statement)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return  # nested classes are out of scope for flow facts

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, ast.Load):
            self._dict_access(node, write=False)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        if (len(node.ops) == 1
                and isinstance(node.ops[0], (ast.In, ast.NotIn))):
            self._record_key(node.left, write=False, required=False)
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        for key, value in zip(node.keys, node.values):
            if key is None:  # ``**spread``
                domain = None
                if (isinstance(value, ast.Name)
                        and value.id in self.var_domains):
                    domain = self.var_domains[value.id]
                if domain is not None:
                    self.facts.write_domains.append(domain)
                else:
                    self.facts.writes_open = True
            elif (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)):
                self.facts.dict_writes.append(
                    [key.value, key.lineno, key.col_offset])
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        domain = self._comp_domain(node)
        if domain is not None:
            self.facts.write_domains.append(domain)
        else:
            self.facts.writes_open = True
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        call = self.vexpr(node)
        self.facts.calls.append(call)
        self._call_mutations(node)
        self._call_dict_traffic(node)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self.facts.global_decls.extend(node.names)

    # -- helpers ------------------------------------------------------

    def _comp_domain(self, node: ast.DictComp) -> list[Any] | None:
        """Key domain of ``{k: ... for k in DOMAIN}`` if resolvable."""
        if len(node.generators) != 1:
            return None
        generator = node.generators[0]
        if not isinstance(generator.target, ast.Name):
            return None
        if not (isinstance(node.key, ast.Name)
                and node.key.id == generator.target.id):
            return None
        if generator.ifs:
            return None
        return _constexpr(generator.iter)

    def _mutation(self, kind: str, root: str | None, node: ast.AST,
                  local: bool | None = None) -> None:
        if root is None:
            return
        if local is None:
            local = root in self.locals
        self.facts.mutations.append(
            [kind, root, node.lineno, node.col_offset, bool(local)])

    def _store_target(self, target: ast.AST, kind: str | None = None) -> None:
        if isinstance(target, ast.Subscript):
            self._mutation(kind or "subscript", _root_name(target), target)
            self._dict_access(target, write=True)
        elif isinstance(target, ast.Attribute):
            self._mutation(kind or "attribute", _root_name(target), target)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if not isinstance(element, ast.Name):
                    self._store_target(element, kind)

    def _dict_access(self, node: ast.Subscript, write: bool) -> None:
        self._record_key(node.slice, write=write, required=not write)

    def _record_key(self, key: ast.AST, write: bool, required: bool) -> None:
        if isinstance(key, ast.Constant):
            if not isinstance(key.value, str):
                return  # numeric indexing is not dict-schema traffic
            if write:
                self.facts.dict_writes.append(
                    [key.value, key.lineno, key.col_offset])
            else:
                self.facts.dict_reads.append(key.value)
                if required:
                    self.facts.reads_required.append(key.value)
            return
        if isinstance(key, ast.Name):
            domain = self.var_domains.get(key.id)
            if domain is not None:
                if write:
                    self.facts.write_domains.append(domain)
                else:
                    self.facts.read_domains.append(domain)
                return
            if key.id in self.var_domains:  # loop var with opaque domain
                if write:
                    self.facts.writes_open = True
                else:
                    self.facts.reads_open = True
                return
            if write:
                self.facts.writes_open = True
            else:
                self.facts.reads_open = True
            return
        if isinstance(key, (ast.Slice, ast.Tuple)):
            return  # array slicing, not key traffic
        if write:
            self.facts.writes_open = True
        else:
            self.facts.reads_open = True

    def _call_mutations(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS):
            self._mutation(f"method:{func.attr}", _root_name(func.value),
                           func)
        for keyword in node.keywords:
            if keyword.arg == "out" and isinstance(keyword.value, ast.Name):
                self._mutation("out=", keyword.value.id, node)

    def _call_dict_traffic(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in ("get", "pop") and node.args:
            key = node.args[0]
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                self.facts.dict_reads.append(key.value)
                if func.attr == "pop" and len(node.args) == 1:
                    self.facts.reads_required.append(key.value)
            elif isinstance(key, ast.Name):
                domain = self.var_domains.get(key.id)
                if domain is not None:
                    self.facts.read_domains.append(domain)
                else:
                    self.facts.reads_open = True
        elif func.attr in ("keys", "items", "values") and not node.args:
            self.facts.reads_open = True
        elif func.attr == "update":
            if not (node.args and isinstance(node.args[0], ast.Dict)):
                if node.args or node.keywords:
                    self.facts.writes_open = True


class _LocalNames(ast.NodeVisitor):
    """Collects every name bound inside a function body."""

    def __init__(self) -> None:
        self.names: set[str] = set()
        self.globals: set[str] = set()

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self.names.add(node.id)

    def visit_Global(self, node: ast.Global) -> None:
        self.globals.update(node.names)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.globals.update(node.names)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.names.add(node.name)
        self._add_args(node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.names.add(node.name)
        self._add_args(node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._add_args(node.args)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.names.add(node.name)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name:
            self.names.add(node.name)
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.names.add(alias.asname or alias.name.split(".", 1)[0])

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            self.names.add(alias.asname or alias.name)

    def _add_args(self, args: ast.arguments) -> None:
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            self.names.add(arg.arg)
        if args.vararg:
            self.names.add(args.vararg.arg)
        if args.kwarg:
            self.names.add(args.kwarg.arg)


def _function_locals(node: ast.AST) -> tuple[set[str], set[str]]:
    collector = _LocalNames()
    for statement in getattr(node, "body", []):
        collector.visit(statement)
    return collector.names - collector.globals, collector.globals


def _extract_function(node: ast.FunctionDef | ast.AsyncFunctionDef,
                      qualname: str, is_method: bool,
                      context: LintContext,
                      refs: list[str]) -> FunctionFacts:
    args = node.args
    positional = [arg.arg for arg in (args.posonlyargs + args.args)]
    if is_method and positional and positional[0] in ("self", "cls"):
        positional = positional[1:]
    required = len(positional) - min(len(args.defaults), len(positional))
    facts = FunctionFacts(
        name=qualname,
        lineno=node.lineno,
        end_lineno=node.end_lineno or node.lineno,
        col=node.col_offset,
        params=positional,
        kwonly=[arg.arg for arg in args.kwonlyargs],
        required=required,
        is_method=is_method,
    )
    out_params = [name for name in positional + facts.kwonly
                  if _is_conventional_out(name)]
    # A standalone pragma comment directly above the def (or its first
    # decorator) binds too — multi-line signatures leave no room inline.
    pragma_start = min([node.lineno]
                       + [deco.lineno for deco in node.decorator_list]) - 1
    suppressions = context.suppressions
    twin = suppressions.directive_for(pragma_start, node.lineno,
                                      suppressions.twins)
    declared = suppressions.directive_for(pragma_start, node.lineno,
                                          suppressions.mutates)
    if isinstance(twin, str):
        facts.twin = twin
    if isinstance(declared, tuple):
        out_params.extend(name for name in declared
                          if name not in out_params)
    facts.out_params = out_params
    local_names, global_decls = _function_locals(node)
    facts.global_decls = sorted(global_decls)
    local_names |= set(positional) | set(facts.kwonly)
    if args.vararg:
        local_names.add(args.vararg.arg)
    if args.kwarg:
        local_names.add(args.kwarg.arg)
    if is_method:
        local_names |= {"self", "cls"}
    extractor = _BodyExtractor(facts, local_names, refs)
    for statement in node.body:
        extractor.visit(statement)
    return facts


def _extract_module_body(tree: ast.Module, context: LintContext,
                         refs: list[str]) -> FunctionFacts:
    facts = FunctionFacts(name="<module>", lineno=1, end_lineno=1, col=0)
    top_level = [statement for statement in tree.body
                 if not isinstance(statement, (ast.FunctionDef,
                                               ast.AsyncFunctionDef,
                                               ast.ClassDef))]
    if top_level:
        facts.end_lineno = max(statement.end_lineno or statement.lineno
                               for statement in top_level)
    local_names: set[str] = set()
    extractor = _BodyExtractor(facts, local_names, refs)
    for statement in top_level:
        extractor.visit(statement)
    return facts


def extract_module_facts(context: LintContext,
                         module: str | None = None) -> ModuleFacts:
    """Lower one parsed file into :class:`ModuleFacts`."""
    tree = context.tree
    assert isinstance(tree, ast.Module)
    facts = ModuleFacts(
        module=module if module is not None else context.package,
        path=context.path,
        content_hash=content_hash(context.source),
    )
    refs = facts.refs
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                facts.imports_modules[alias.asname
                                      or alias.name] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import — resolve against module
                is_package = os.path.basename(
                    context.path) == "__init__.py"
                parts = facts.module.split(".") if facts.module else []
                if not is_package:
                    parts = parts[:-1]
                drop = node.level - 1
                anchor = parts[:len(parts) - drop] if drop else parts
                package = ".".join(anchor)
                base = (f"{package}.{node.module}" if node.module
                        else package) if package else (node.module or "")
            else:
                base = node.module or ""
            if not base:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                facts.imports_objects[alias.asname or alias.name] = (
                    f"{base}.{alias.name}")
    for statement in tree.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            facts.top_names.append(statement.name)
            facts.functions[statement.name] = _extract_function(
                statement, statement.name, is_method=False,
                context=context, refs=refs)
        elif isinstance(statement, ast.ClassDef):
            facts.top_names.append(statement.name)
            bases = [base for base in
                     (_dotted_chain(node) for node in statement.bases)
                     if base is not None]
            methods: list[str] = []
            for item in statement.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    methods.append(item.name)
                    qualname = f"{statement.name}.{item.name}"
                    facts.functions[qualname] = _extract_function(
                        item, qualname, is_method=True,
                        context=context, refs=refs)
            pragma_start = min(
                [statement.lineno]
                + [deco.lineno for deco in statement.decorator_list]) - 1
            twin = context.suppressions.directive_for(
                pragma_start, statement.lineno,
                context.suppressions.twins)
            facts.classes[statement.name] = {
                "bases": bases,
                "methods": methods,
                "lineno": statement.lineno,
                "twin": twin if isinstance(twin, str) else None,
            }
        elif isinstance(statement, (ast.Assign, ast.AnnAssign)):
            targets = (statement.targets
                       if isinstance(statement, ast.Assign)
                       else [statement.target])
            for target in targets:
                if isinstance(target, ast.Name):
                    facts.top_names.append(target.id)
                    if statement.value is not None:
                        expr = _constexpr(statement.value)
                        if expr is not None:
                            facts.constants[target.id] = [
                                expr, statement.lineno]
    facts.functions["<module>"] = _extract_module_body(tree, context, refs)
    facts.refs = sorted(set(refs))
    return facts


def content_hash(source: str) -> str:
    """Cache key for one file's content."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class FactsCache:
    """Content-addressed disk cache of :class:`ModuleFacts`.

    One JSON file maps content hashes to serialised facts; entries for
    files no longer in the run are pruned on save so the cache cannot
    grow without bound.
    """

    def __init__(self, path: str | None) -> None:
        self.path = path
        self._entries: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        if path is not None and os.path.exists(path):
            try:
                with open(path, encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError, ValueError):
                payload = {}
            if (isinstance(payload, dict)
                    and payload.get("version") == FACTS_VERSION
                    and isinstance(payload.get("entries"), dict)):
                self._entries = payload["entries"]

    def get(self, digest: str) -> ModuleFacts | None:
        entry = self._entries.get(digest)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        try:
            return ModuleFacts.from_dict(entry)
        except (KeyError, TypeError):
            self.misses += 1
            self.hits -= 1
            return None

    def put(self, facts: ModuleFacts) -> None:
        self._entries[facts.content_hash] = facts.to_dict()

    def save(self, keep: set[str] | None = None) -> None:
        """Persist the cache, pruning to the ``keep`` hash set."""
        if self.path is None:
            return
        entries = self._entries
        if keep is not None:
            entries = {digest: entry for digest, entry in entries.items()
                       if digest in keep}
        payload = {"version": FACTS_VERSION, "entries": entries}
        try:
            with open(self.path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
        except OSError:
            return  # a read-only checkout must not fail the lint run
