"""Whole-program rules RL101–RL105 (the ``--flow`` family).

Where the classic RL001–RL006 rules see one file at a time, these see
the :class:`~repro.lint.flow.FlowAnalysis` — project index, call
graph, and bottom-up function summaries — and can therefore follow a
value across helper calls, modules, and method boundaries.

* **RL101** — interprocedural RNG-stream taint: a generator born from
  a raw constructor (``numpy.random.default_rng`` and friends) outside
  ``repro.sim.rng.seeded_generator`` / ``seed_sequence`` is flagged
  even when the constructor is laundered through a local alias, a
  helper that invokes a constructor passed as a parameter, or a
  factory whose return value is tainted.
* **RL102** — kernel purity: ``repro.kernels`` functions must not
  mutate non-``out`` parameters, write module-level state, or call a
  callee that (transitively) does.
* **RL103** — event-kind exhaustiveness across call chains: literals
  forwarded into ``Tracer.emit`` through wrapper parameters and
  ``TraceEvent(...)`` constructions must be members of ``EVENT_KINDS``;
  declared kinds that no call site can ever produce are dead.
* **RL104** — checkpoint schema symmetry: every key a ``save_X``
  closure writes must be read (or defaulted) by the paired ``load_X``
  closure, and every key ``load_X`` requires must be written.
* **RL105** — backend parity: each public ``repro.kernels`` entry
  point needs a resolvable, signature-compatible scalar twin
  (``# repro-lint: twin=...``) and must be exercised by the
  scalar-vs-vector differential harness (``repro.verify.kernels``).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

from repro.exceptions import ConfigurationError
from repro.lint.flow import (FlowAnalysis, RAW_RNG_CONSTRUCTORS,
                             SANCTIONED_RNG_FUNCTIONS, _emit_kind_arg)
from repro.lint.framework import Finding, ORPHAN_PRAGMA_RULE
from repro.lint.project import function_env
from repro.lint.summaries import FunctionFacts

__all__ = [
    "FlowRule",
    "all_flow_rules",
    "flow_rule_meta",
    "select_flow_rules",
]

#: Max functions walked per save/load closure (RL104) — keeps a
#: pathological call web from turning one pair into a whole-program
#: traversal.
_MAX_CLOSURE = 25


class FlowRule:
    """Base class for one whole-program check."""

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, analysis: FlowAnalysis) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, analysis: FlowAnalysis, path: str, line: int,
                col: int, message: str) -> Finding:
        return Finding(path=path, line=line, column=col,
                       rule=self.rule_id, message=message,
                       snippet=analysis.snippet(path, line))


_FLOW_REGISTRY: dict[str, FlowRule] = {}


def register_flow_rule(cls: type[FlowRule]) -> type[FlowRule]:
    rule = cls()
    if not rule.rule_id:
        raise ConfigurationError(f"rule {cls.__name__} lacks a rule_id")
    if rule.rule_id in _FLOW_REGISTRY:
        raise ConfigurationError(
            f"duplicate flow rule id {rule.rule_id!r}")
    _FLOW_REGISTRY[rule.rule_id] = rule
    return cls


def all_flow_rules() -> tuple[FlowRule, ...]:
    """Every registered flow rule, ordered by id."""
    return tuple(rule for __, rule in sorted(_FLOW_REGISTRY.items()))


def select_flow_rules(select: list[str] | None) -> tuple[FlowRule, ...]:
    """The flow rules matching ``select`` (default: all)."""
    if select is None:
        return all_flow_rules()
    chosen: list[FlowRule] = []
    for rule_id in select:
        rule = _FLOW_REGISTRY.get(rule_id.upper())
        if rule is None:
            known = ", ".join(sorted(_FLOW_REGISTRY))
            raise ConfigurationError(
                f"unknown lint rule {rule_id!r} (known: {known})")
        chosen.append(rule)
    return tuple(chosen)


def flow_rule_meta() -> dict[str, dict[str, str]]:
    """Rule metadata (incl. the orphan-pragma pseudo-rule) for reports."""
    meta = {rule.rule_id: {"title": rule.title,
                           "rationale": rule.rationale}
            for rule in all_flow_rules()}
    meta[ORPHAN_PRAGMA_RULE] = {
        "title": "unused suppression pragma",
        "rationale": ("a disable= pragma that matches no finding hides "
                      "future regressions at that site"),
    }
    return meta


def _literal_string(env: dict[str, Any], value: Any,
                    depth: int = 0) -> str | None:
    """The string a vexpr denotes, following local-constant aliases."""
    if depth > 4 or not isinstance(value, list) or not value:
        return None
    if value[0] == "str":
        return value[1]
    if value[0] == "name":
        bound = env.get(value[1])
        if bound is not None:
            return _literal_string(env, bound, depth + 1)
    return None


@register_flow_rule
class InterproceduralRngTaintRule(FlowRule):
    """RL101 — RNG streams must be born in ``repro.sim.rng``."""

    rule_id = "RL101"
    title = "RNG stream born outside repro.sim.rng (interprocedural)"
    rationale = (
        "a generator constructed from a raw numpy/stdlib constructor — "
        "even through an alias or a helper — escapes the seed-universe "
        "discipline that makes runs replayable"
    )

    def check(self, analysis: FlowAnalysis) -> Iterable[Finding]:
        for fq, (module_name, facts) in sorted(analysis.functions.items()):
            if fq in SANCTIONED_RNG_FUNCTIONS:
                continue
            env = function_env(facts)
            path = analysis.path_of_module(module_name)
            for call in facts.calls:
                func = call[1]
                kind = analysis.rng_callable(module_name, env, func)
                if kind == "raw":
                    direct = (
                        isinstance(func, list) and func
                        and func[0] == "ref"
                        and analysis.index.resolve(module_name, func[1])
                        in RAW_RNG_CONSTRUCTORS
                    )
                    if direct and module_name != "repro.sim.rng":
                        continue  # the single-file RL001 already flags it
                    yield self.finding(
                        analysis, path, call[4], call[5],
                        "RNG stream born from a raw constructor; route "
                        "it through repro.sim.rng.seeded_generator / "
                        "seed_sequence",
                    )
                    continue
                if kind.startswith("func:"):
                    callee_fq = kind[5:]
                    located = analysis.functions.get(callee_fq)
                    summary = analysis.summary_of(callee_fq)
                    if located is None or summary is None:
                        continue
                    bound = analysis.bind_args(located[1], call)
                    for param, arg in sorted(bound.items()):
                        if f"pcall:{param}" not in summary.returns:
                            continue
                        if analysis.rng_callable(module_name, env,
                                                 arg) == "raw":
                            yield self.finding(
                                analysis, path, call[4], call[5],
                                f"raw RNG constructor passed to "
                                f"{callee_fq} (parameter {param!r}), "
                                f"which invokes it — the stream is born "
                                f"outside repro.sim.rng",
                            )


@register_flow_rule
class KernelPurityRule(FlowRule):
    """RL102 — ``repro.kernels`` functions must be pure."""

    rule_id = "RL102"
    title = "impure repro.kernels function"
    rationale = (
        "the vectorized kernels are differential-tested against the "
        "scalar engine; hidden argument mutation or module state makes "
        "results depend on call history and breaks bit-reproducibility"
    )

    _SCOPE = "repro.kernels"

    def _in_scope(self, module_name: str) -> bool:
        return (module_name == self._SCOPE
                or module_name.startswith(self._SCOPE + "."))

    def check(self, analysis: FlowAnalysis) -> Iterable[Finding]:
        for fq, (module_name, facts) in sorted(analysis.functions.items()):
            if not self._in_scope(module_name):
                continue
            if facts.name == "<module>":
                continue
            path = analysis.path_of_module(module_name)
            params = set(facts.params) | set(facts.kwonly)
            out_params = set(facts.out_params)
            env = function_env(facts)
            for kind, root, line, col, local in facts.mutations:
                if analysis.is_module_function_call(
                        module_name, [kind, root, line, col, local]):
                    continue
                target = root
                if target not in params:
                    alias = env.get(root)
                    if (isinstance(alias, list) and alias
                            and alias[0] == "name"
                            and alias[1] in params):
                        target = alias[1]
                if target in ("self", "cls"):
                    continue
                if target in params:
                    if target not in out_params:
                        yield self.finding(
                            analysis, path, line, col,
                            f"kernel {facts.name!r} mutates parameter "
                            f"{target!r} which is not a declared out= "
                            f"parameter (add '# repro-lint: "
                            f"mutates={target}' if intentional)",
                        )
                    continue
                if local:
                    continue
                if (kind == "global"
                        or analysis.is_module_state(module_name, root)):
                    yield self.finding(
                        analysis, path, line, col,
                        f"kernel {facts.name!r} writes module-level "
                        f"state {root!r}; kernels must be pure "
                        f"functions of their inputs",
                    )
            for site in analysis.call_graph.get(fq, ()):
                summary = analysis.summary_of(site.target)
                located = analysis.functions.get(site.target)
                if summary is None or located is None:
                    continue
                if summary.writes_global:
                    via = (f" (via {summary.impure_via})"
                           if summary.impure_via else "")
                    yield self.finding(
                        analysis, path, site.line, site.col,
                        f"kernel {facts.name!r} calls impure "
                        f"{site.target}{via}, which writes "
                        f"module-level state",
                    )
                bound = analysis.bind_args(located[1], site.call)
                for param, arg in sorted(bound.items()):
                    if param not in summary.mutated_params:
                        continue
                    if (isinstance(arg, list) and arg
                            and arg[0] == "name" and arg[1] in params
                            and arg[1] not in out_params):
                        yield self.finding(
                            analysis, path, site.line, site.col,
                            f"kernel {facts.name!r} passes parameter "
                            f"{arg[1]!r} to {site.target}, which "
                            f"mutates it",
                        )


@register_flow_rule
class EventKindFlowRule(FlowRule):
    """RL103 — event kinds are exhaustive across call chains."""

    rule_id = "RL103"
    title = "event kind invalid or dead across call chains"
    rationale = (
        "trace consumers switch on EVENT_KINDS; a kind that sneaks in "
        "through a wrapper is invisible to them, and a declared kind "
        "nothing emits is schema rot"
    )

    #: Where the kind census and the EVENT_KINDS constant live.
    events_module = "repro.obs.events"

    def check(self, analysis: FlowAnalysis) -> Iterable[Finding]:
        index = analysis.index
        kinds = index.eval_constexpr(self.events_module,
                                     ["ref", "EVENT_KINDS"])
        if not kinds:
            return
        census: set[str] = set()
        event_class = f"{self.events_module}.TraceEvent"
        for fq, (module_name, facts) in sorted(analysis.functions.items()):
            if module_name == self.events_module:
                continue  # the schema module itself defines, not emits
            env = function_env(facts)
            path = analysis.path_of_module(module_name)
            for call in facts.calls:
                kind_arg = _emit_kind_arg(call)
                if kind_arg is None:
                    continue
                literal = _literal_string(env, kind_arg)
                if literal is not None:
                    census.add(literal)
                    # membership of *direct* emit literals is RL003's
                    # single-file job; the census is all RL103 needs
            for site in analysis.call_graph.get(fq, ()):
                # the call-graph target is ``Cls.__init__`` when the
                # class defines one, the bare class fq otherwise
                if site.is_ctor and site.target in (
                        event_class, event_class + ".__init__"):
                    literal = self._ctor_kind(env, site.call)
                    if literal is not None:
                        census.add(literal)
                        if literal not in kinds:
                            yield self.finding(
                                analysis, path, site.line, site.col,
                                f"TraceEvent constructed with kind "
                                f"{literal!r}, which is not in "
                                f"EVENT_KINDS",
                            )
                    continue
                summary = analysis.summary_of(site.target)
                located = analysis.functions.get(site.target)
                if summary is None or located is None:
                    continue
                if not summary.emit_params:
                    continue
                bound = analysis.bind_args(located[1], site.call)
                for param in sorted(summary.emit_params):
                    literal = _literal_string(env, bound.get(param))
                    if literal is None:
                        continue
                    census.add(literal)
                    if literal not in kinds:
                        yield self.finding(
                            analysis, path, site.line, site.col,
                            f"event kind {literal!r} reaches "
                            f"Tracer.emit through {site.target} but is "
                            f"not in EVENT_KINDS",
                        )
        events_facts = index.modules.get(self.events_module)
        if events_facts is None:
            return
        constant = events_facts.constants.get("EVENT_KINDS")
        anchor_line = constant[1] if constant else 1
        for kind in sorted(kinds - census):
            yield self.finding(
                analysis, events_facts.path, anchor_line, 0,
                f"event kind {kind!r} is declared in EVENT_KINDS but no "
                f"call chain can emit it (dead kind)",
            )

    @staticmethod
    def _ctor_kind(env: dict[str, Any], call: Any) -> str | None:
        for keyword, value in call[3]:
            if keyword == "kind":
                return _literal_string(env, value)
        if call[2]:
            return _literal_string(env, call[2][0])
        return None


@register_flow_rule
class CheckpointSchemaSymmetryRule(FlowRule):
    """RL104 — ``save_X``/``load_X`` pairs agree on their key schema."""

    rule_id = "RL104"
    title = "checkpoint schema drift between save_*/load_* pair"
    rationale = (
        "a field written but never read back (or required but never "
        "written) is silent schema drift that today only the chaos "
        "harness catches at runtime"
    )

    def check(self, analysis: FlowAnalysis) -> Iterable[Finding]:
        for module_name, module_facts in sorted(
                analysis.index.modules.items()):
            for name in sorted(module_facts.functions):
                if not name.startswith("save_") or "." in name:
                    continue
                partner = "load_" + name[len("save_"):]
                if partner not in module_facts.functions:
                    continue
                yield from self._check_pair(
                    analysis, module_name, name, partner)

    def _closure(self, analysis: FlowAnalysis,
                 root_fq: str) -> list[tuple[str, FunctionFacts]]:
        seen = [root_fq]
        queue = [root_fq]
        while queue and len(seen) < _MAX_CLOSURE:
            fq = queue.pop(0)
            for site in analysis.call_graph.get(fq, ()):
                if site.target in seen:
                    continue
                if site.target in analysis.functions:
                    seen.append(site.target)
                    queue.append(site.target)
        return [(fq,) + (analysis.functions[fq][1],)
                for fq in seen if fq in analysis.functions]

    def _check_pair(self, analysis: FlowAnalysis, module_name: str,
                    save_name: str, load_name: str) -> Iterable[Finding]:
        index = analysis.index
        save_fq = f"{module_name}.{save_name}"
        load_fq = f"{module_name}.{load_name}"

        writes: dict[str, tuple[str, int, int]] = {}
        write_domain: set[str] = set()
        writes_open = False
        for fq, facts in self._closure(analysis, save_fq):
            owner = analysis.functions[fq][0]
            owner_path = analysis.path_of_module(owner)
            for key, line, col in facts.dict_writes:
                writes.setdefault(key, (owner_path, line, col))
            for domain in facts.write_domains:
                resolved = index.eval_constexpr(owner, domain)
                if resolved is None:
                    writes_open = True
                else:
                    write_domain |= resolved
            writes_open = writes_open or facts.writes_open

        reads: set[str] = set()
        required: set[str] = set()
        reads_open = False
        for fq, facts in self._closure(analysis, load_fq):
            owner = analysis.functions[fq][0]
            reads.update(facts.dict_reads)
            required.update(facts.reads_required)
            for domain in facts.read_domains:
                resolved = index.eval_constexpr(owner, domain)
                if resolved is None:
                    reads_open = True
                else:
                    reads |= resolved
            reads_open = reads_open or facts.reads_open

        if not reads_open:
            for key in sorted(writes):
                if key in reads:
                    continue
                path, line, col = writes[key]
                yield self.finding(
                    analysis, path, line, col,
                    f"key {key!r} written by {save_name} is never read "
                    f"or defaulted by {load_name} (schema drift)",
                )
        if not writes_open:
            load_facts = analysis.functions[load_fq][1]
            load_path = analysis.path_of_module(module_name)
            for key in sorted(required):
                if key in writes or key in write_domain:
                    continue
                yield self.finding(
                    analysis, load_path, load_facts.lineno,
                    load_facts.col,
                    f"{load_name} requires key {key!r} (no default) but "
                    f"{save_name} never writes it",
                )


@register_flow_rule
class BackendParityRule(FlowRule):
    """RL105 — every public kernel has a scalar twin and harness leg."""

    rule_id = "RL105"
    title = "public kernel entry point without scalar-twin coverage"
    rationale = (
        "the scalar/vector differential harness proves backend "
        "equivalence; an entry point without a declared twin or a "
        "harness reference can silently lose that coverage"
    )

    kernels_package = "repro.kernels"
    harness_module = "repro.verify.kernels"

    def check(self, analysis: FlowAnalysis) -> Iterable[Finding]:
        index = analysis.index
        package = index.modules.get(self.kernels_package)
        if package is None:
            return
        exported = package.constants.get("__all__")
        if exported is None:
            return
        names = index.eval_constexpr(self.kernels_package, exported[0])
        if not names:
            return
        harness = index.modules.get(self.harness_module)
        harness_refs: set[str] = set()
        if harness is not None:
            for ref in harness.refs:
                harness_refs.add(index.resolve(self.harness_module, ref))
            for target in harness.imports_objects.values():
                harness_refs.add(index.canonicalize(target))
        for name in sorted(names):
            fq = index.resolve(self.kernels_package, name)
            yield from self._check_symbol(analysis, name, fq,
                                          harness_refs, exported[1],
                                          package.path)

    def _check_symbol(self, analysis: FlowAnalysis, name: str, fq: str,
                      harness_refs: set[str], all_line: int,
                      package_path: str) -> Iterable[Finding]:
        index = analysis.index
        function = index.lookup_function(fq)
        klass = index.lookup_class(fq)
        if function is not None:
            module_facts, facts = function
            path, line, col = module_facts.path, facts.lineno, facts.col
            twin = facts.twin
        elif klass is not None:
            module_facts, cls_name, info = klass
            path, line, col = module_facts.path, int(info["lineno"]), 0
            twin = info.get("twin")
        else:
            yield self.finding(
                analysis, package_path, all_line, 0,
                f"__all__ exports {name!r} but it does not resolve to a "
                f"project function or class",
            )
            return
        if not twin:
            yield self.finding(
                analysis, path, line, col,
                f"public kernel entry point {name!r} declares no scalar "
                f"twin (add '# repro-lint: twin=<dotted scalar "
                f"reference>')",
            )
        else:
            twin_fq = index.canonicalize(twin)
            twin_fn = index.lookup_function(twin_fq)
            twin_cls = index.lookup_class(twin_fq)
            if twin_fn is None and twin_cls is None:
                yield self.finding(
                    analysis, path, line, col,
                    f"declared scalar twin {twin!r} of {name!r} does "
                    f"not resolve to a project function or class",
                )
            elif function is not None and twin_fn is not None:
                yield from self._check_signatures(
                    analysis, path, line, col, name, facts, twin_fq,
                    twin_fn[1])
            elif klass is not None and twin_cls is not None:
                yield from self._check_class_twin(
                    analysis, path, line, name, module_facts.module,
                    cls_name, info, twin_fq)
        if fq not in harness_refs:
            yield self.finding(
                analysis, path, line, col,
                f"public kernel entry point {name!r} is not referenced "
                f"by the differential harness "
                f"({self.harness_module}); the scalar-vs-vector "
                f"equivalence leg lost coverage",
            )

    def _check_signatures(self, analysis: FlowAnalysis, path: str,
                          line: int, col: int, name: str,
                          kernel: FunctionFacts, twin_fq: str,
                          twin: FunctionFacts) -> Iterable[Finding]:
        kernel_params = [p for p in kernel.params
                         if p not in kernel.out_params]
        twin_params = [p for p in twin.params + twin.kwonly
                       if p not in twin.out_params]
        shared = [p for p in kernel_params if p in twin_params]
        if not shared:
            yield self.finding(
                analysis, path, line, col,
                f"kernel {name!r} and its twin {twin_fq} share no "
                f"parameter names; the differential harness cannot map "
                f"arguments between backends",
            )
            return
        twin_order = [p for p in twin_params if p in shared]
        if twin_order != shared:
            yield self.finding(
                analysis, path, line, col,
                f"kernel {name!r} and twin {twin_fq} disagree on the "
                f"relative order of shared parameters "
                f"({shared} vs {twin_order})",
            )

    def _check_class_twin(self, analysis: FlowAnalysis, path: str,
                          line: int, name: str, module_name: str,
                          cls_name: str, info: dict[str, Any],
                          twin_fq: str) -> Iterable[Finding]:
        index = analysis.index
        for method in sorted(info["methods"]):
            if method.startswith("_"):
                continue
            if index.lookup_method(twin_fq, method) is None:
                yield self.finding(
                    analysis, path, line, 0,
                    f"kernel class {name!r} exposes method {method!r} "
                    f"with no counterpart on scalar twin {twin_fq}",
                )
