"""Human, JSON, and SARIF renderings of lint findings.

The JSON schema (``version`` 2) is the artifact CI uploads::

    {
      "version": 2,
      "tool": "repro-lint",
      "files_checked": 124,
      "findings": [
        {"path": "...", "line": 10, "column": 4, "rule": "RL001",
         "message": "...", "snippet": "...", "severity": "error"}
      ],
      "counts": {"RL001": 1},
      "rules": {"RL001": {"title": "...", "rationale": "..."}}
    }

Version 2 added the per-finding ``severity`` field ("error" or
"warning"); version-1 consumers that ignore unknown keys keep working.

:func:`findings_to_sarif` emits a minimal SARIF 2.1.0 log (one run,
one ``tool.driver``) suitable for GitHub code-scanning upload; each
result carries a line-number-independent ``partialFingerprints`` entry
shared with the baseline file so annotations survive rebases.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping, Sequence

from repro.lint.baseline import finding_fingerprint
from repro.lint.framework import Finding, all_rules

__all__ = ["findings_to_json", "findings_to_sarif", "render_findings"]

#: Schema version of the JSON report.
JSON_REPORT_VERSION = 2

#: SARIF constants for the generated log.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def _default_rule_meta() -> dict[str, dict[str, str]]:
    return {
        rule.rule_id: {"title": rule.title, "rationale": rule.rationale}
        for rule in all_rules()
    }


def render_findings(findings: Sequence[Finding],
                    files_checked: int | None = None) -> str:
    """The human report: one ``path:line:col: RULE message`` per finding.

    Ends with a one-line summary (``clean`` when there are none).
    """
    lines = [finding.format() for finding in findings]
    if findings:
        by_rule = Counter(finding.rule for finding in findings)
        breakdown = ", ".join(
            f"{rule}={count}" for rule, count in sorted(by_rule.items())
        )
        noun = "finding" if len(findings) == 1 else "findings"
        lines.append(f"{len(findings)} {noun} ({breakdown})")
    else:
        checked = (f" in {files_checked} files"
                   if files_checked is not None else "")
        lines.append(f"clean{checked}: no lint findings")
    return "\n".join(lines)


def findings_to_json(findings: Iterable[Finding],
                     files_checked: int = 0,
                     rules: Mapping[str, Mapping[str, str]] | None = None,
                     ) -> dict[str, object]:
    """The machine-readable report dict (see module docstring).

    ``rules`` overrides the rule-metadata block (the flow driver passes
    the union of classic and flow rules); the default is the classic
    registry.
    """
    items = [finding.to_dict() for finding in findings]
    counts = Counter(str(item["rule"]) for item in items)
    rule_meta = dict(rules) if rules is not None else _default_rule_meta()
    return {
        "version": JSON_REPORT_VERSION,
        "tool": "repro-lint",
        "files_checked": int(files_checked),
        "findings": items,
        "counts": dict(sorted(counts.items())),
        "rules": {rule_id: dict(meta)
                  for rule_id, meta in sorted(rule_meta.items())},
    }


def findings_to_sarif(findings: Sequence[Finding],
                      rules: Mapping[str, Mapping[str, str]] | None = None,
                      root: str = ".") -> dict[str, object]:
    """A SARIF 2.1.0 log for ``findings``.

    ``rules`` supplies the driver rule metadata (defaults to the
    classic registry); rules never mentioned by a finding are still
    listed so code-scanning UIs can show the full policy.
    """
    rule_meta = dict(rules) if rules is not None else _default_rule_meta()
    rule_ids = sorted(set(rule_meta) | {f.rule for f in findings})
    rule_index = {rule_id: index for index, rule_id in enumerate(rule_ids)}
    driver_rules = []
    for rule_id in rule_ids:
        meta = rule_meta.get(rule_id, {})
        driver_rules.append({
            "id": rule_id,
            "shortDescription": {
                "text": str(meta.get("title", rule_id)),
            },
            "fullDescription": {
                "text": str(meta.get("rationale", "")),
            },
        })
    results = []
    for finding in findings:
        results.append({
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": "error" if finding.severity == "error" else "warning",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.column + 1,
                        "snippet": {"text": finding.snippet},
                    },
                },
            }],
            "partialFingerprints": {
                "reproLint/v1": finding_fingerprint(finding, root),
            },
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://example.invalid/repro-lint",
                    "rules": driver_rules,
                },
            },
            "results": results,
        }],
    }
