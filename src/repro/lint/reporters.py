"""Human and JSON renderings of lint findings.

The JSON schema (``version`` 1) is the artifact CI uploads::

    {
      "version": 1,
      "tool": "repro-lint",
      "files_checked": 124,
      "findings": [
        {"path": "...", "line": 10, "column": 4, "rule": "RL001",
         "message": "...", "snippet": "..."}
      ],
      "counts": {"RL001": 1},
      "rules": {"RL001": {"title": "...", "rationale": "..."}}
    }
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence

from repro.lint.framework import Finding, all_rules

__all__ = ["findings_to_json", "render_findings"]

#: Schema version of the JSON report.
JSON_REPORT_VERSION = 1


def render_findings(findings: Sequence[Finding],
                    files_checked: int | None = None) -> str:
    """The human report: one ``path:line:col: RULE message`` per finding.

    Ends with a one-line summary (``clean`` when there are none).
    """
    lines = [finding.format() for finding in findings]
    if findings:
        by_rule = Counter(finding.rule for finding in findings)
        breakdown = ", ".join(
            f"{rule}={count}" for rule, count in sorted(by_rule.items())
        )
        noun = "finding" if len(findings) == 1 else "findings"
        lines.append(f"{len(findings)} {noun} ({breakdown})")
    else:
        checked = (f" in {files_checked} files"
                   if files_checked is not None else "")
        lines.append(f"clean{checked}: no lint findings")
    return "\n".join(lines)


def findings_to_json(findings: Iterable[Finding],
                     files_checked: int = 0) -> dict[str, object]:
    """The machine-readable report dict (see module docstring)."""
    items = [finding.to_dict() for finding in findings]
    counts = Counter(str(item["rule"]) for item in items)
    return {
        "version": JSON_REPORT_VERSION,
        "tool": "repro-lint",
        "files_checked": int(files_checked),
        "findings": items,
        "counts": dict(sorted(counts.items())),
        "rules": {
            rule.rule_id: {"title": rule.title,
                           "rationale": rule.rationale}
            for rule in all_rules()
        },
    }
