"""Accepted-findings baseline for ``repro lint --flow``.

A baseline file records fingerprints of findings that existed when the
gate was introduced, so CI can fail only on *new* findings while the
backlog is burned down.  Fingerprints hash the repo-relative path, the
rule id, the message, and the flagged snippet — but **not** the line
number, so unrelated edits above a finding do not churn the baseline.

The committed baseline (``lint-baseline.json``) is empty: the tree
self-hosts clean and must stay that way.  The file exists so the
workflow (``--write-baseline`` after an intentional regression, review
the diff, burn it down) is exercised and documented.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.exceptions import ConfigurationError
from repro.lint.framework import Finding

__all__ = [
    "BASELINE_VERSION",
    "filter_baselined",
    "finding_fingerprint",
    "load_baseline",
    "write_baseline",
]

#: Schema version of the baseline file.
BASELINE_VERSION = 1


def finding_fingerprint(finding: Finding, root: str = ".") -> str:
    """Stable, line-number-independent fingerprint of one finding."""
    try:
        rel = os.path.relpath(finding.path, root)
    except ValueError:  # different drive on windows
        rel = finding.path
    rel = rel.replace(os.sep, "/")
    payload = "|".join((rel, finding.rule, finding.message,
                        finding.snippet))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def load_baseline(path: str) -> set[str]:
    """The fingerprint set stored at ``path``.

    Raises
    ------
    ConfigurationError
        If the file is missing or malformed.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        raise ConfigurationError(
            f"cannot read baseline {path}: {error}"
        ) from error
    except json.JSONDecodeError as error:
        raise ConfigurationError(
            f"baseline {path} is not valid JSON: {error}"
        ) from error
    if (not isinstance(payload, dict)
            or payload.get("version") != BASELINE_VERSION
            or not isinstance(payload.get("findings"), list)):
        raise ConfigurationError(
            f"baseline {path} has an unrecognised schema "
            f"(expected version {BASELINE_VERSION})"
        )
    return set(str(item) for item in payload["findings"])


def write_baseline(path: str, findings: list[Finding],
                   root: str = ".") -> int:
    """Write the fingerprints of ``findings`` to ``path``.

    Returns the number of fingerprints written (duplicates collapse).
    """
    fingerprints = sorted({finding_fingerprint(f, root) for f in findings})
    payload = {
        "version": BASELINE_VERSION,
        "tool": "repro-lint",
        "findings": fingerprints,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return len(fingerprints)


def filter_baselined(findings: list[Finding], baseline: set[str],
                     root: str = ".") -> tuple[list[Finding], int]:
    """Drop findings whose fingerprint is in ``baseline``.

    Returns ``(kept, suppressed_count)``.
    """
    kept = [f for f in findings
            if finding_fingerprint(f, root) not in baseline]
    return kept, len(findings) - len(kept)
