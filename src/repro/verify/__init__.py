"""Equilibrium verification subsystem.

The paper's headline claims are analytic — a unique Stackelberg
Equilibrium ``<p^J*, p*, tau*>`` from backward induction (Theorems
14-16, 20) and the Theorem-19 regret bound — and this package keeps the
implementation continuously honest about them:

* :mod:`repro.verify.compare` — tolerance-aware comparison utilities
  (NaN/inf-correct scalar closeness, recursive payload diffing).
* :mod:`repro.verify.invariants` — per-round invariant checkers over
  engine state (stage first-order conditions, Stage-3 stationarity,
  individual rationality, UCB-index monotonicity, observation-count
  conservation), runnable in the engine's ``strict`` mode and emitted
  as ``invariant_violation`` trace events.
* :mod:`repro.verify.oracles` — differential oracles cross-checking the
  closed-form solvers (Theorems 14-16) against the independent
  numerical ``solve_stage{1,2,3}_numeric`` paths, ``select_by_ucb``
  against a brute-force top-K reference, and the recovery-equivalence
  oracle of the chaos harness (a fault-battered sweep must end
  bit-identical to its fault-free golden).
* :mod:`repro.verify.golden` — a golden-trace regression store pinning
  canonical seeded runs to checked-in JSON goldens, with an update tool
  (``repro verify --update-goldens``).
* :mod:`repro.verify.runtime` — the event-runtime checks: the
  batch-equivalence differential oracle (a static-population
  :class:`~repro.runtime.MarketRuntime` must be bit-identical to the
  batch engine) and the churn golden trace pinning a canonical
  arrivals/departures run by its trade-ledger digest.
* :mod:`repro.verify.kernels` — the scalar-vs-vector differential
  oracle for :mod:`repro.kernels`: bit-identity for selections, states,
  and ledgers; ``<= 1e-9`` for the batched Stage 1-3 solves; and a
  mutation canary proving the suite catches a 1% kernel defect.
* :mod:`repro.verify.runner` — the ``repro verify`` entry point tying
  the five legs into one report with a CI-friendly exit code.
"""

from repro.verify.compare import (
    Mismatch,
    ToleranceSpec,
    diff_values,
    values_close,
)
from repro.verify.golden import (
    GOLDEN_CASES,
    GoldenCase,
    compute_golden,
    golden_directory,
    golden_path,
    update_goldens,
    verify_goldens,
)
from repro.verify.invariants import InvariantMonitor, InvariantViolation
from repro.verify.kernels import (
    KernelsCheck,
    KernelsCheckResult,
    check_kernels,
)
from repro.verify.oracles import (
    OracleCheck,
    OracleSuiteReport,
    brute_force_top_k,
    check_full_solve_oracle,
    check_recovery_equivalence,
    check_selection_oracle,
    check_stage1_oracle,
    check_stage2_oracle,
    check_stage3_oracle,
    run_oracle_suite,
)
from repro.verify.runner import (
    StrictCheckResult,
    VerificationReport,
    run_verification,
)
from repro.verify.runtime import (
    RUNTIME_GOLDEN_CASE,
    RuntimeCheckResult,
    RuntimeGoldenCase,
    check_batch_equivalence,
    check_runtime,
    compute_runtime_golden,
    update_runtime_golden,
    verify_runtime_golden,
)

__all__ = [
    "Mismatch",
    "ToleranceSpec",
    "diff_values",
    "values_close",
    "GOLDEN_CASES",
    "GoldenCase",
    "compute_golden",
    "golden_directory",
    "golden_path",
    "update_goldens",
    "verify_goldens",
    "InvariantMonitor",
    "InvariantViolation",
    "KernelsCheck",
    "KernelsCheckResult",
    "check_kernels",
    "OracleCheck",
    "OracleSuiteReport",
    "brute_force_top_k",
    "check_full_solve_oracle",
    "check_recovery_equivalence",
    "check_selection_oracle",
    "check_stage1_oracle",
    "check_stage2_oracle",
    "check_stage3_oracle",
    "run_oracle_suite",
    "StrictCheckResult",
    "VerificationReport",
    "run_verification",
    "RuntimeGoldenCase",
    "RUNTIME_GOLDEN_CASE",
    "RuntimeCheckResult",
    "check_batch_equivalence",
    "check_runtime",
    "compute_runtime_golden",
    "update_runtime_golden",
    "verify_runtime_golden",
]
