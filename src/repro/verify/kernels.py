"""Kernels verification: the scalar-vs-vector differential oracle.

``repro verify --only kernels`` proves the :mod:`repro.kernels` hot
path equivalent to the scalar reference, at the strength each layer
contracts for:

1. **Selection/state unit oracle** — random learning-state histories
   (including tie-heavy quantized score vectors, unseen sellers, and
   infinite indices) must give *bit-identical* maintained means, UCB
   index vectors, and partition top-K selections.
2. **Batch-stage oracle** — :func:`repro.kernels.masked_stage_sums` and
   :func:`repro.kernels.solve_rounds_batch` against per-market scalar
   :func:`~repro.core.incentive.solve_round_fast` solves at ``<= 1e-9``
   relative tolerance (summation order differs, see
   :mod:`repro.kernels.batch`), with exact profit ties between Stage-1
   candidates accepted as equally optimal; plus
   :func:`repro.kernels.stage3_golden_batch` against
   :func:`repro.game.stackelberg.solve_stage3_batch` row for row.
3. **Engine differential** — identical RNG universes replayed through
   ``TradingSimulator(backend="scalar")`` and ``backend="vector"``
   across the clean, fault-injected, and ``K = M`` regimes must produce
   bit-identical metric series and selection counts.
4. **Churn differential** — the canonical churning
   :class:`~repro.runtime.MarketRuntime` case replayed through both
   backends must produce byte-identical trade-ledger digests.
5. **Mutation canary** — a 1% inflation of the vector confidence bonus
   (:data:`repro.kernels.selection._MUTATION_SCALE`) must make the
   unit oracle *fail*, proving the suite has the power to catch a real
   kernel defect of that size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.rng import seeded_generator

__all__ = [
    "KernelsCheck",
    "KernelsCheckResult",
    "check_selection_kernels",
    "check_batch_kernels",
    "check_engine_differential",
    "check_churn_differential",
    "check_mutation_canary",
    "check_kernels",
]

#: RunMetrics fields the engine differential compares bit-for-bit (the
#: same set every other bit-identity leg pins; telemetry is wall-clock).
_DIFFERENTIAL_FIELDS = (
    "realized_revenue", "expected_revenue", "regret", "consumer_profit",
    "platform_profit", "seller_profit_mean", "service_price",
    "collection_price", "total_sensing_time", "selection_counts",
    "estimation_error",
)

#: Relative tolerance of the batch-stage oracle.
_BATCH_RTOL = 1e-9


@dataclass(frozen=True)
class KernelsCheck:
    """One named kernels check: verdict plus narrative."""

    name: str
    passed: bool
    detail: str

    def describe(self) -> str:
        """One-line rendering for reports."""
        return f"{self.name}: {'PASS' if self.passed else 'FAIL'} ({self.detail})"


@dataclass(frozen=True)
class KernelsCheckResult:
    """Outcome of the kernels section: all five differential legs."""

    checks: tuple[KernelsCheck, ...]

    @property
    def passed(self) -> bool:
        """Whether every leg is clean."""
        return all(check.passed for check in self.checks)

    def failures(self) -> list[KernelsCheck]:
        """The failed legs, in run order."""
        return [check for check in self.checks if not check.passed]

    def to_dict(self) -> dict:
        """JSON-ready payload for the ``--report`` artefact."""
        return {
            "passed": self.passed,
            "checks": [
                {"name": check.name, "passed": check.passed,
                 "detail": check.detail}
                for check in self.checks
            ],
        }


def check_selection_kernels(*, seed: int = 0,
                            trials: int = 60) -> KernelsCheck:
    """Unit bit-identity oracle over random learning-state histories.

    Each trial replays a random update sequence through the scalar
    :class:`~repro.core.state.LearningState` and the vector
    :class:`~repro.kernels.VectorLearningState` side by side, asserting
    bit-identical means, UCB vectors, and top-K selections after every
    update; quantized (tie-heavy) score vectors additionally pin the
    partition top-K against the stable-argsort reference directly.
    """
    from repro.core.selection import top_k_indices
    from repro.core.state import LearningState
    from repro.kernels.selection import (estimation_error, top_k_partition,
                                         ucb_scores)
    from repro.kernels.state import VectorLearningState
    from repro.sim.rounds import PRIOR_MEAN, estimation_error_scalar

    rng = seeded_generator(seed)
    comparisons = 0
    for trial in range(trials):
        m = int(rng.integers(2, 40))
        k = int(rng.integers(1, m + 1))
        coefficient = float(k + 1)
        scalar = LearningState(m, prior_mean=PRIOR_MEAN)
        vector = VectorLearningState(m, prior_mean=PRIOR_MEAN)
        for __ in range(int(rng.integers(1, 12))):
            size = int(rng.integers(0, m + 1))
            sellers = rng.choice(m, size=size, replace=False)
            num_observations = int(rng.integers(1, 6))
            sums = rng.uniform(0.0, 1.0, size) * num_observations
            scalar.update(sellers, sums, num_observations)
            vector.update(sellers, sums, num_observations)
            if scalar.total_count != vector.total_count:
                return KernelsCheck(
                    "selection-unit", False,
                    f"total_count diverged in trial {trial}"
                )
            if not np.array_equal(scalar.means, vector.means):
                return KernelsCheck(
                    "selection-unit", False,
                    f"maintained means diverged in trial {trial} "
                    f"(M={m})"
                )
            reference = scalar.ucb_values(coefficient)
            fast = vector.ucb_values(coefficient)
            if not np.array_equal(reference, fast):
                return KernelsCheck(
                    "selection-unit", False,
                    f"UCB index vectors diverged in trial {trial} "
                    f"(M={m}, coefficient={coefficient})"
                )
            if not np.array_equal(top_k_indices(reference, k),
                                  top_k_partition(fast, k)):
                return KernelsCheck(
                    "selection-unit", False,
                    f"top-K selections diverged in trial {trial} "
                    f"(M={m}, K={k})"
                )
            comparisons += 1
        # Tie-heavy quantized scores: the regime where a naive
        # argpartition would diverge from stable tie-breaking.
        scores = rng.integers(0, 3, m).astype(float)
        if trial % 3 == 0:
            scores[int(rng.integers(0, m))] = np.inf
        if trial % 5 == 0:
            scores[:] = scores[0]
        if not np.array_equal(top_k_indices(scores, k),
                              top_k_partition(scores, k)):
            return KernelsCheck(
                "selection-unit", False,
                f"tie-breaking diverged on quantized scores in trial "
                f"{trial} (M={m}, K={k})"
            )
        # Standalone kernel on the maintained buffers.
        standalone = ucb_scores(vector.counts.astype(float), vector.means,
                                vector.total_count, coefficient)
        if not np.array_equal(standalone, scalar.ucb_values(coefficient)):
            return KernelsCheck(
                "selection-unit", False,
                f"ucb_scores diverged from the state path in trial {trial}"
            )
        # Scratch-buffer estimation error vs the allocation-naive twin.
        truth = rng.uniform(0.0, 1.0, m)
        scratch = np.empty(m)
        if estimation_error(vector.means, truth, scratch) \
                != estimation_error_scalar(scalar.means, truth):
            return KernelsCheck(
                "selection-unit", False,
                f"estimation_error diverged from the scalar twin in "
                f"trial {trial} (M={m})"
            )
        comparisons += 1
    return KernelsCheck(
        "selection-unit", True,
        f"{trials} random state histories, {comparisons} bit-identity "
        "comparisons (means, UCB vectors, top-K incl. tie-heavy scores)"
    )


def check_batch_kernels(*, seed: int = 0, trials: int = 40) -> KernelsCheck:
    """Batched Stage 1-3 solves vs per-market scalar solves at 1e-9.

    Exact Stage-1 profit ties between distinct candidates are accepted:
    the scalar cascade iterates a deduplicated candidate *set* while the
    batch kernel evaluates ordered columns, so tied optima may resolve
    to different (equally optimal) prices — the consumer profit must
    still agree to ``1e-9``.
    """
    import math

    from repro.core.incentive import solve_round_fast
    from repro.game.profits import GameInstance
    from repro.game.stackelberg import solve_stage3_batch
    from repro.kernels.batch import (
        masked_stage_sums,
        solve_rounds_batch,
        stage3_golden_batch,
    )

    rng = seeded_generator(seed)
    rows = 0
    ties = 0
    for trial in range(trials):
        m = int(rng.integers(3, 25))
        markets = int(rng.integers(1, 8))
        qualities = rng.uniform(0.05, 1.0, (markets, m))
        cost_a = rng.uniform(0.2, 2.0, (markets, m))
        cost_b = rng.uniform(0.0, 0.5, (markets, m))
        mask = rng.random((markets, m)) < 0.6
        for r in range(markets):
            if not mask[r].any():
                mask[r, int(rng.integers(0, m))] = True
        theta = float(rng.uniform(0.01, 0.5))
        lam = float(rng.uniform(0.1, 2.0))
        omega = float(rng.uniform(1.0, 60.0))
        svc_bounds = ((0.0, float(rng.uniform(5.0, 200.0)))
                      if trial % 3 else (0.0, float("inf")))
        col_bounds = (0.0, float(rng.uniform(1.0, 50.0)))
        tau_max = (float(rng.uniform(0.5, 10.0)) if trial % 2
                   else float("inf"))
        paper_variant = bool(trial % 4 == 0)
        a_sums, b_sums, mean_q = masked_stage_sums(qualities, cost_a,
                                                   cost_b, mask)
        services, collections, taus, __ = solve_rounds_batch(
            qualities, cost_a, cost_b, mask, theta, lam, omega,
            svc_bounds, col_bounds, tau_max, paper_variant,
        )
        for r in range(markets):
            selected = np.flatnonzero(mask[r])
            q_sel = qualities[r, selected]
            a_ref = float(np.sum(1.0 / (2.0 * q_sel * cost_a[r, selected])))
            b_ref = float(np.sum(
                cost_b[r, selected] / (2.0 * cost_a[r, selected])
            ))
            q_ref = float(q_sel.mean())
            for got, ref, label in ((a_sums[r], a_ref, "A"),
                                    (b_sums[r], b_ref, "B"),
                                    (mean_q[r], q_ref, "qbar")):
                if abs(got - ref) > _BATCH_RTOL * max(abs(ref), 1.0):
                    return KernelsCheck(
                        "batch-stage", False,
                        f"masked {label} sum off by "
                        f"{abs(got - ref):.3e} in trial {trial}"
                    )
            ref_service, ref_collection, ref_taus = solve_round_fast(
                q_sel, cost_a[r, selected], cost_b[r, selected], theta,
                lam, omega, svc_bounds, col_bounds, tau_max,
                paper_variant,
            )

            def consumer_profit(service_price: float,
                                sensing: np.ndarray) -> float:
                total = float(np.sum(sensing))
                return (omega * math.log1p(q_ref * total)
                        - service_price * total)

            profit_ref = consumer_profit(ref_service, ref_taus)
            profit_got = consumer_profit(float(services[r]),
                                         taus[r, selected])
            scale = max(abs(profit_ref), 1.0)
            if abs(profit_got - profit_ref) > _BATCH_RTOL * scale:
                return KernelsCheck(
                    "batch-stage", False,
                    f"consumer profit diverged by "
                    f"{abs(profit_got - profit_ref):.3e} in trial "
                    f"{trial} market {r}"
                )
            price_scale = max(abs(ref_service), 1.0)
            if abs(float(services[r]) - ref_service) > _BATCH_RTOL * price_scale:
                ties += 1  # exact profit tie resolved differently
            else:
                col_scale = max(abs(ref_collection), 1.0)
                tau_scale = np.maximum(np.abs(ref_taus), 1.0)
                if (abs(float(collections[r]) - ref_collection)
                        > _BATCH_RTOL * col_scale
                        or np.any(np.abs(taus[r, selected] - ref_taus)
                                  > _BATCH_RTOL * tau_scale)):
                    return KernelsCheck(
                        "batch-stage", False,
                        f"collection price / sensing times diverged in "
                        f"trial {trial} market {r}"
                    )
            # Masked-out sellers must hold an exact 0.0 (assigned, not
            # computed), so a nonzero count is the right exact test.
            if np.count_nonzero(taus[r, ~mask[r]]):
                return KernelsCheck(
                    "batch-stage", False,
                    f"masked-out sellers received nonzero sensing time "
                    f"in trial {trial} market {r}"
                )
            rows += 1
        # Batched Stage-3 golden section vs the per-game reference.
        prices = rng.uniform(0.5, 20.0, markets)
        game = GameInstance(
            qualities=qualities[0], cost_a=cost_a[0], cost_b=cost_b[0],
            theta=theta, lam=lam, omega=omega,
            max_sensing_time=tau_max if math.isfinite(tau_max) else 10.0,
        )
        reference = solve_stage3_batch(game, prices)
        batched = stage3_golden_batch(
            prices, qualities[0], cost_a[0], cost_b[0],
            game.max_sensing_time,
        )
        if not np.allclose(batched, reference, rtol=_BATCH_RTOL,
                           atol=1e-9):
            return KernelsCheck(
                "batch-stage", False,
                f"stage3_golden_batch diverged from solve_stage3_batch "
                f"in trial {trial}"
            )
    return KernelsCheck(
        "batch-stage", True,
        f"{rows} market rows solved batched vs scalar at rtol {_BATCH_RTOL:g} "
        f"({ties} exact candidate ties resolved to equal-profit optima)"
    )


def _engine_runs(backend: str, *, seed: int, num_sellers: int,
                 num_selected: int, num_rounds: int,
                 faulty: bool) -> "object":
    from repro.bandits.policies import UCBPolicy
    from repro.faults.model import FaultSpec
    from repro.sim.config import SimulationConfig
    from repro.sim.engine import TradingSimulator

    config = SimulationConfig(num_sellers=num_sellers,
                              num_selected=num_selected, num_pois=4,
                              num_rounds=num_rounds, seed=seed)
    simulator = TradingSimulator(config, backend=backend)
    fault_model = None
    if faulty:
        fault_model = simulator.fault_model(FaultSpec(
            dropout_rate=0.15, corruption_rate=0.05, stall_rate=0.02,
        ))
    return simulator.run(UCBPolicy(), fault_model=fault_model)


def check_engine_differential(*, seed: int = 0,
                              num_rounds: int = 80) -> KernelsCheck:
    """Identical RNG universes through both engine backends, bit for bit."""
    regimes = (
        ("clean", {"num_sellers": 20, "num_selected": 4, "faulty": False}),
        ("faulty", {"num_sellers": 15, "num_selected": 3, "faulty": True}),
        ("k-equals-m", {"num_sellers": 6, "num_selected": 6,
                        "faulty": False}),
    )
    for label, kwargs in regimes:
        scalar = _engine_runs("scalar", seed=seed, num_rounds=num_rounds,
                              **kwargs)
        vector = _engine_runs("vector", seed=seed, num_rounds=num_rounds,
                              **kwargs)
        for field in _DIFFERENTIAL_FIELDS:
            if not np.array_equal(np.asarray(getattr(scalar, field)),
                                  np.asarray(getattr(vector, field))):
                return KernelsCheck(
                    "engine-differential", False,
                    f"vector backend diverged from scalar in {field} "
                    f"({label} regime, seed {seed}, {num_rounds} rounds)"
                )
    return KernelsCheck(
        "engine-differential", True,
        f"clean + faulty + K=M regimes bit-identical across backends "
        f"over {num_rounds} rounds (seed {seed}, "
        f"{len(_DIFFERENTIAL_FIELDS)} fields each)"
    )


def check_churn_differential(*, seed: int = 0) -> KernelsCheck:
    """The canonical churn case through both runtime backends.

    The trade-ledger digest is a SHA-256 over every settled round's
    participants and prices, so digest equality is bit-identity of the
    whole trade history.
    """
    from repro.verify.runtime import RUNTIME_GOLDEN_CASE, _run_golden_case

    case = RUNTIME_GOLDEN_CASE
    scalar = _run_golden_case(case, backend="scalar")
    vector = _run_golden_case(case, backend="vector")
    if scalar["ledger_digest"] != vector["ledger_digest"]:
        return KernelsCheck(
            "churn-differential", False,
            f"trade-ledger digests diverged across backends on the "
            f"{case.name} case"
        )
    for key in ("sessions_opened", "sessions_closed",
                "messages_delivered", "messages_dropped"):
        if scalar[key] != vector[key]:
            return KernelsCheck(
                "churn-differential", False,
                f"{key} diverged across backends on the {case.name} case"
            )
    return KernelsCheck(
        "churn-differential", True,
        f"{case.name} ledger digest and session/message counters "
        "identical across backends"
    )


def check_mutation_canary(*, seed: int = 0) -> KernelsCheck:
    """A 1% kernel mutation must make the unit oracle fail.

    Inflates the vector confidence bonus by 1% through the
    :data:`~repro.kernels.selection._MUTATION_SCALE` hook, re-runs the
    selection unit oracle, and passes iff that oracle *fails* — the
    suite demonstrably has the power to catch a real defect of that
    size.  The hook is restored unconditionally.
    """
    from repro.kernels import selection

    original = selection._MUTATION_SCALE
    try:
        selection._MUTATION_SCALE = 1.01
        mutated = check_selection_kernels(seed=seed, trials=10)
    finally:
        selection._MUTATION_SCALE = original
    if mutated.passed:
        return KernelsCheck(
            "mutation-canary", False,
            "a 1% confidence-bonus inflation went undetected — the "
            "differential oracle has lost its power"
        )
    return KernelsCheck(
        "mutation-canary", True,
        f"1% bonus inflation caught by the unit oracle "
        f"({mutated.detail})"
    )


def check_kernels(*, seed: int = 0) -> KernelsCheckResult:
    """Run every kernels leg and collect one result."""
    checks = (
        check_selection_kernels(seed=seed),
        check_batch_kernels(seed=seed),
        check_engine_differential(seed=seed),
        check_churn_differential(seed=seed),
        check_mutation_canary(seed=seed),
    )
    return KernelsCheckResult(checks=checks)
