"""Per-round invariant checkers over engine state (strict mode).

Each predicate here encodes one analytic property the paper proves the
equilibrium/learning loop must satisfy, checked against the *actual*
numbers the engine produced each round:

* **Stage-3 stationarity** (Theorem 14): each selected seller's sensing
  time must be a best response to the collection price — interior times
  zero the profit derivative ``p - qbar_i (2 a_i tau_i + b_i)``,
  boundary times require the matching one-sided sign.
* **Leader first-order conditions** (Theorems 15-16): whenever the
  round's solution is interior (no price bound binds, no sensing time
  clips), the platform and consumer prices must zero their reduced-form
  derivatives.
* **Individual rationality** (Lemma 10 / IR): at the equilibrium every
  selected seller's profit ``Psi_i`` is non-negative — a seller can
  always sense zero time, so a negative profit means the solver paid a
  seller into a loss, which no rational seller accepts.
* **UCB-index structure** (Eq. 19): exploration bonuses are
  non-negative (so the index upper-bounds the mean), infinite exactly
  for never-observed sellers, and non-increasing in the observation
  count at fixed totals.
* **Count conservation** (Eq. 17): on the clean path every selected
  seller is observed once per PoI, so ``n_i == L * selections_i``
  per seller (hence ``sum_i n_i = K * L * t`` for fixed-``K``
  policies); fault injection can only ever *lose* observations.
* **Selection correctness** (Algorithm 1, steps 7-10): the selected set
  is a valid, duplicate-free top-``K`` of the policy's UCB indices
  (checked against an independent brute-force reference).

An :class:`InvariantMonitor` bundles these for the engine's ``strict``
mode: it only *reads* engine state (never touches an RNG stream, so a
strict run stays bit-identical to a default run), emits every failure
as an ``invariant_violation`` trace event, and raises
:class:`~repro.exceptions.InvariantViolationError` unless configured to
collect violations instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import InvariantViolationError
from repro.obs.tracer import NULL_TRACER, Tracer

if TYPE_CHECKING:  # type-only: the engine hands its state in at runtime
    from repro.core.state import LearningState

__all__ = [
    "InvariantViolation",
    "InvariantMonitor",
    "stage3_stationarity_violation",
    "leader_foc_residuals",
]

#: Relative margin used to decide a value sits strictly inside an
#: interval (bound-binding solutions are legitimately non-stationary).
_INTERIOR_MARGIN = 1e-9


@dataclass(frozen=True)
class InvariantViolation:
    """One failed invariant check.

    Attributes
    ----------
    invariant:
        Name of the failed predicate (e.g. ``stage3_stationarity``).
    round_index:
        0-based round the failure happened in (``None`` for run-level
        checks).
    detail:
        Human-readable description with the offending numbers.
    magnitude:
        How far past the tolerance the check failed (0 when the
        violation is structural rather than numerical).
    """

    invariant: str
    round_index: int | None
    detail: str
    magnitude: float


def stage3_stationarity_violation(qualities: np.ndarray, cost_a: np.ndarray,
                                  cost_b: np.ndarray, collection_price: float,
                                  taus: np.ndarray,
                                  max_sensing_time: float) -> np.ndarray:
    """Per-seller violation of the Stage-3 best-response conditions.

    The seller profit derivative is
    ``g_i(tau) = p - qbar_i * (2 a_i tau + b_i)`` (Eq. 5 differentiated).
    A best response requires ``g_i(tau_i) = 0`` for interior ``tau_i``,
    ``g_i(0) <= 0`` for an opt-out, and ``g_i(T) >= 0`` at the cap.
    Returns the non-negative violation magnitude per seller (all ~0 for
    a true best response, regardless of clipping).
    """
    q = np.asarray(qualities, dtype=float)
    a = np.asarray(cost_a, dtype=float)
    b = np.asarray(cost_b, dtype=float)
    t = np.asarray(taus, dtype=float)
    gradient = float(collection_price) - q * (2.0 * a * t + b)
    at_zero = t <= 0.0
    at_cap = np.isfinite(max_sensing_time) & (t >= max_sensing_time)
    violation = np.abs(gradient)
    # At tau = 0 only a positive gradient (profitable to start sensing)
    # violates; at tau = T only a negative one (profitable to back off).
    violation[at_zero] = np.maximum(gradient[at_zero], 0.0)
    violation[at_cap] = np.maximum(-gradient[at_cap], 0.0)
    return violation


def leader_foc_residuals(qualities: np.ndarray, cost_a: np.ndarray,
                         cost_b: np.ndarray, theta: float, lam: float,
                         omega: float, service_price: float,
                         collection_price: float,
                         taus: np.ndarray) -> tuple[float, float]:
    """Normalized Stage-1/Stage-2 first-order-condition residuals.

    Using the reduced forms of Theorems 15-16 (derived variant, the one
    the engine solves): with ``A = sum 1/(2 qbar_i a_i)``,
    ``B = sum b_i/(2 a_i)`` and ``constant = lam*A - 2 theta A B - B``,

    * Stage 2 requires ``p^J A - constant - 2 A (1 + theta A) p = 0``;
    * Stage 1 requires
      ``omega qbar Theta_c / (1 + qbar S) - S - p^J Theta_c = 0``
      where ``Theta_c = A / (2 (1 + theta A))`` and ``S = sum tau_i``.

    Residuals are scaled by the largest term of each condition, so the
    returned values are dimensionless and comparable to a relative
    tolerance.  Callers must only apply this on interior solutions
    (no bound binding, no sensing time clipped) — see
    :meth:`InvariantMonitor.check_equilibrium`.
    """
    q = np.asarray(qualities, dtype=float)
    a = np.asarray(cost_a, dtype=float)
    b = np.asarray(cost_b, dtype=float)
    a_sum = float(np.sum(1.0 / (2.0 * q * a)))
    b_sum = float(np.sum(b / (2.0 * a)))
    constant = lam * a_sum - 2.0 * theta * a_sum * b_sum - b_sum
    platform_terms = (
        service_price * a_sum,
        -constant,
        -2.0 * a_sum * (1.0 + theta * a_sum) * collection_price,
    )
    stage2_scale = max(1.0, *(abs(term) for term in platform_terms))
    stage2_residual = abs(sum(platform_terms)) / stage2_scale

    qbar = float(q.mean())
    total = float(np.asarray(taus, dtype=float).sum())
    theta_c = a_sum / (2.0 * (1.0 + theta * a_sum))
    consumer_terms = (
        omega * qbar * theta_c / (1.0 + qbar * total),
        -total,
        -service_price * theta_c,
    )
    stage1_scale = max(1.0, *(abs(term) for term in consumer_terms))
    stage1_residual = abs(sum(consumer_terms)) / stage1_scale
    return stage1_residual, stage2_residual


def _strictly_inside(value: float, bounds: tuple[float, float]) -> bool:
    lo, hi = bounds
    margin = _INTERIOR_MARGIN * max(1.0, abs(value))
    inside_hi = (not math.isfinite(hi)) or value < hi - margin
    return value > lo + margin and inside_hi


class InvariantMonitor:
    """Checks per-round invariants for a strict-mode engine run.

    Purely observational: every method reads engine state and the
    round's computed strategy profile, never mutates them, and never
    draws randomness — attaching a monitor cannot change a run's
    numbers, only judge them.

    Parameters
    ----------
    num_pois:
        Observations per selection ``L`` (Eq. 17's increment).
    tolerance:
        Relative tolerance for the stationarity / IR / FOC predicates.
    tracer:
        Violations are emitted as ``invariant_violation`` events here.
    raise_on_violation:
        Raise :class:`~repro.exceptions.InvariantViolationError` on the
        first failure (engine strict mode) or collect and continue
        (auditing a run for all failures at once).
    """

    def __init__(self, num_pois: int, *, tolerance: float = 1e-6,
                 tracer: Tracer | None = None,
                 raise_on_violation: bool = True) -> None:
        self._num_pois = int(num_pois)
        self._tolerance = float(tolerance)
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._raise = bool(raise_on_violation)
        self._num_checks = 0
        self.violations: list[InvariantViolation] = []

    @property
    def num_checks(self) -> int:
        """How many invariant evaluations have run (for reporting)."""
        return self._num_checks

    def _record(self, invariant: str, round_index: int | None, detail: str,
                magnitude: float = 0.0) -> None:
        violation = InvariantViolation(invariant, round_index, detail,
                                       float(magnitude))
        self.violations.append(violation)
        if self._tracer.enabled:
            self._tracer.emit("invariant_violation", round_index=round_index,
                              invariant=invariant, detail=detail,
                              magnitude=float(magnitude))
        if self._raise:
            where = "" if round_index is None else f" (round {round_index})"
            raise InvariantViolationError(
                f"invariant {invariant!r} violated{where}: {detail}"
            )

    # -- selection (Algorithm 1, steps 7-10) ---------------------------------------

    def check_selection(self, round_index: int, selected: np.ndarray, k: int,
                        num_sellers: int, explore: bool,
                        ucb_values: np.ndarray | None = None) -> None:
        """The selected set is valid and (for UCB policies) a true top-K.

        ``ucb_values`` is the policy's full index vector when it exposes
        one; the selection is then compared against an independent
        brute-force top-K reference with identical tie-breaking
        (ascending index).
        """
        self._num_checks += 1
        expected_size = num_sellers if explore and selected.size > k else k
        if selected.size != expected_size:
            self._record("selection_size", round_index,
                         f"selected {selected.size} sellers, expected "
                         f"{expected_size}")
            return
        if np.unique(selected).size != selected.size:
            self._record("selection_unique", round_index,
                         "selection contains duplicate sellers")
            return
        if selected.size and (int(selected.min()) < 0
                              or int(selected.max()) >= num_sellers):
            self._record("selection_range", round_index,
                         "selection contains out-of-range seller indices")
            return
        if ucb_values is not None and not explore:
            from repro.verify.oracles import brute_force_top_k

            reference = brute_force_top_k(np.asarray(ucb_values, dtype=float),
                                          k)
            if not np.array_equal(np.sort(selected), reference):
                self._record(
                    "selection_top_k", round_index,
                    f"selection {np.sort(selected).tolist()} is not the "
                    f"brute-force top-{k} {reference.tolist()} of the UCB "
                    "indices (Eq. 19)",
                )

    # -- equilibrium (Theorems 14-16, Definition 13) -------------------------------

    def check_equilibrium(self, round_index: int, qualities: np.ndarray,
                          cost_a: np.ndarray, cost_b: np.ndarray,
                          theta: float, lam: float, omega: float,
                          service_price_bounds: tuple[float, float],
                          collection_price_bounds: tuple[float, float],
                          max_sensing_time: float, service_price: float,
                          collection_price: float, taus: np.ndarray,
                          explore: bool) -> None:
        """Feasibility + stationarity + FOC + IR of one round's profile.

        Exploration rounds (Algorithm 1's fixed ``tau^0`` pricing) only
        get the feasibility leg; equilibrium rounds additionally check
        Stage-3 stationarity and seller IR always, and the two leader
        first-order conditions whenever the solution is interior.
        """
        self._num_checks += 1
        tol = self._tolerance
        svc_lo, svc_hi = service_price_bounds
        col_lo, col_hi = collection_price_bounds
        price_margin = tol * max(1.0, abs(service_price))
        if not (svc_lo - price_margin <= service_price
                <= svc_hi + price_margin):
            self._record("price_feasibility", round_index,
                         f"service price {service_price!r} outside "
                         f"[{svc_lo}, {svc_hi}]")
        price_margin = tol * max(1.0, abs(collection_price))
        if not (col_lo - price_margin <= collection_price
                <= col_hi + price_margin):
            self._record("price_feasibility", round_index,
                         f"collection price {collection_price!r} outside "
                         f"[{col_lo}, {col_hi}]")
        taus = np.asarray(taus, dtype=float)
        if np.any(taus < -tol) or np.any(taus > max_sensing_time * (1 + tol)):
            self._record("sensing_time_feasibility", round_index,
                         "sensing times outside [0, T]: "
                         f"{taus.tolist()}")
        if explore:
            return

        stationarity = stage3_stationarity_violation(
            qualities, cost_a, cost_b, collection_price, taus,
            max_sensing_time,
        )
        scale = max(1.0, abs(collection_price))
        worst = int(np.argmax(stationarity))
        if stationarity[worst] > tol * scale:
            self._record(
                "stage3_stationarity", round_index,
                f"seller {worst}'s sensing time {taus[worst]!r} is not a "
                f"best response to p={collection_price!r} (Theorem 14 "
                f"residual {stationarity[worst]:.3e})",
                magnitude=float(stationarity[worst] / scale),
            )

        profits = (
            collection_price * taus
            - (cost_a * taus * taus + cost_b * taus) * qualities
        )
        ir_scale = np.maximum(1.0, np.abs(collection_price * taus))
        worst = int(np.argmin(profits / ir_scale))
        if profits[worst] < -tol * ir_scale[worst]:
            self._record(
                "individual_rationality", round_index,
                f"seller {worst}'s equilibrium profit {profits[worst]!r} "
                "is negative (IR requires Psi_i >= 0)",
                magnitude=float(-profits[worst] / ir_scale[worst]),
            )

        if self._is_interior(qualities, cost_a, cost_b, service_price,
                             collection_price, taus, service_price_bounds,
                             collection_price_bounds, max_sensing_time):
            stage1, stage2 = leader_foc_residuals(
                qualities, cost_a, cost_b, theta, lam, omega,
                service_price, collection_price, taus,
            )
            if stage2 > tol:
                self._record(
                    "stage2_first_order", round_index,
                    f"platform price {collection_price!r} violates the "
                    f"Theorem-15 first-order condition (residual "
                    f"{stage2:.3e})",
                    magnitude=stage2,
                )
            if stage1 > tol:
                self._record(
                    "stage1_first_order", round_index,
                    f"consumer price {service_price!r} violates the "
                    f"Theorem-16 first-order condition (residual "
                    f"{stage1:.3e})",
                    magnitude=stage1,
                )

    @staticmethod
    def _is_interior(qualities: np.ndarray, cost_a: np.ndarray,
                     cost_b: np.ndarray, service_price: float,
                     collection_price: float, taus: np.ndarray,
                     service_price_bounds: tuple[float, float],
                     collection_price_bounds: tuple[float, float],
                     max_sensing_time: float) -> bool:
        """Whether the closed forms' interior premises hold for a profile."""
        if not _strictly_inside(service_price, service_price_bounds):
            return False
        if not _strictly_inside(collection_price, collection_price_bounds):
            return False
        taus = np.asarray(taus, dtype=float)
        if np.any(taus <= 0.0):
            return False
        if math.isfinite(max_sensing_time):
            margin = _INTERIOR_MARGIN * max(1.0, max_sensing_time)
            if np.any(taus >= max_sensing_time - margin):
                return False
        return True

    # -- learning (Eqs. 17-19) -----------------------------------------------------

    def check_learning(self, round_index: int, state: "LearningState",
                       selection_counts: np.ndarray, clean: bool,
                       exploration_coefficient: float | None = None) -> None:
        """Counter conservation, estimate range, and UCB-index structure.

        ``state`` is the engine's
        :class:`~repro.core.state.LearningState`; ``clean`` says whether
        the run injects faults (which may lose observations but never
        invent them).
        """
        self._num_checks += 1
        counts = state.counts
        expected = np.asarray(selection_counts, dtype=np.int64) * self._num_pois
        if clean:
            if not np.array_equal(counts, expected):
                worst = int(np.argmax(np.abs(counts - expected)))
                self._record(
                    "count_conservation", round_index,
                    f"seller {worst} has {int(counts[worst])} observations "
                    f"but {int(expected[worst])} = L * selections expected "
                    "(Eq. 17)",
                )
        elif np.any(counts > expected) or np.any(counts < 0):
            worst = int(np.argmax(counts - expected))
            self._record(
                "count_conservation", round_index,
                f"seller {worst} has {int(counts[worst])} observations, "
                f"more than L * selections = {int(expected[worst])} "
                "(faults can only lose observations)",
            )

        means = state.means
        if np.any(means < -self._tolerance) or np.any(
                means > 1.0 + self._tolerance):
            self._record(
                "estimate_range", round_index,
                "quality estimates left [0, 1]: "
                f"min={float(means.min())!r} max={float(means.max())!r}",
            )

        if exploration_coefficient is not None and state.total_count > 1:
            bonuses = state.exploration_bonuses(exploration_coefficient)
            seen = counts > 0
            unseen = ~seen
            if np.any(unseen) and not np.all(np.isposinf(bonuses[unseen])):
                self._record(
                    "ucb_unseen_infinite", round_index,
                    "never-observed sellers must carry an infinite UCB "
                    "bonus (forced exploration)",
                )
            if np.any(bonuses[seen] < 0.0):
                self._record(
                    "ucb_monotonicity", round_index,
                    "negative exploration bonus: the UCB index must "
                    "upper-bound the sample mean (Eq. 19)",
                )
            observed = bonuses[seen]
            order = np.argsort(counts[seen], kind="stable")
            ordered = observed[order]
            slack = self._tolerance * np.maximum(1.0, ordered[:-1])
            if np.any(np.diff(ordered) > slack):
                self._record(
                    "ucb_monotonicity", round_index,
                    "exploration bonus is not non-increasing in the "
                    "observation count n_i (Eq. 19)",
                )
