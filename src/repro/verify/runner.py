"""The ``repro verify`` entry point: one run, one verdict.

Ties the five verification legs together:

1. **Differential oracles** — closed forms vs numerical references
   (:func:`repro.verify.oracles.run_oracle_suite`).
2. **Golden traces** — canonical seeded runs vs checked-in JSON
   (:func:`repro.verify.golden.verify_goldens`).
3. **Strict-mode engine runs** — a clean and a fault-injected run with
   every per-round invariant checked, asserted bit-identical to the
   same runs without checking (the monitor must be purely
   observational).
4. **Runtime checks** — the event-driven market runtime vs the batch
   engine (bit-identical on a static population) plus the churn golden
   trace (:mod:`repro.verify.runtime`).
5. **Kernels checks** — the vectorized :mod:`repro.kernels` hot path vs
   the scalar reference: bit-identity for selections/states/ledgers,
   ``<= 1e-9`` for the batched stage solves, plus a mutation canary
   (:mod:`repro.verify.kernels`).

The result is a :class:`VerificationReport` with a human-readable
rendering, a JSON payload for CI artefacts, and a single ``passed``
bit that becomes the process exit code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import InvariantViolationError
from repro.verify.compare import DEFAULT_TOLERANCE, Mismatch, ToleranceSpec
from repro.verify.golden import GOLDEN_CASES, verify_goldens
from repro.verify.kernels import KernelsCheckResult, check_kernels
from repro.verify.oracles import OracleSuiteReport, run_oracle_suite
from repro.verify.runtime import RuntimeCheckResult, check_runtime

if TYPE_CHECKING:  # type-only: the engine is imported lazily at runtime
    from repro.sim.results import RunMetrics

__all__ = ["StrictCheckResult", "VerificationReport", "run_verification"]

#: Section names accepted by :func:`run_verification`'s ``sections``.
SECTIONS = ("oracles", "goldens", "strict", "runtime", "kernels")

#: RunMetrics fields compared bit-for-bit between strict/default runs.
_BIT_IDENTICAL_FIELDS = (
    "realized_revenue", "expected_revenue", "regret", "consumer_profit",
    "platform_profit", "seller_profit_mean", "service_price",
    "collection_price", "total_sensing_time", "selection_counts",
    "estimation_error",
)


@dataclass(frozen=True)
class StrictCheckResult:
    """Outcome of the strict-mode leg.

    Attributes
    ----------
    passed:
        No invariant fired and the strict run was bit-identical to the
        default run on both scenarios.
    detail:
        What was run and, on failure, which guarantee broke.
    """

    passed: bool
    detail: str


@dataclass
class VerificationReport:
    """Everything one verification run found.

    Sections not requested are ``None`` and excluded from the verdict.
    """

    oracles: OracleSuiteReport | None
    goldens: dict[str, list[Mismatch]] | None
    strict: StrictCheckResult | None
    runtime: RuntimeCheckResult | None = None
    kernels: KernelsCheckResult | None = None

    @property
    def passed(self) -> bool:
        """Whether every section that ran is clean."""
        if self.oracles is not None and not self.oracles.passed:
            return False
        if self.goldens is not None and any(self.goldens.values()):
            return False
        if self.strict is not None and not self.strict.passed:
            return False
        if self.runtime is not None and not self.runtime.passed:
            return False
        if self.kernels is not None and not self.kernels.passed:
            return False
        return True

    def to_dict(self) -> dict:
        """JSON-ready payload (the ``--report`` artefact)."""
        payload: dict = {"passed": self.passed}
        if self.oracles is not None:
            payload["oracles"] = self.oracles.to_dict()
        if self.goldens is not None:
            payload["goldens"] = {
                "passed": not any(self.goldens.values()),
                "cases": {
                    name: [mismatch.describe() for mismatch in mismatches]
                    for name, mismatches in self.goldens.items()
                },
            }
        if self.strict is not None:
            payload["strict"] = {
                "passed": self.strict.passed,
                "detail": self.strict.detail,
            }
        if self.runtime is not None:
            payload["runtime"] = self.runtime.to_dict()
        if self.kernels is not None:
            payload["kernels"] = self.kernels.to_dict()
        return payload

    def to_text(self, max_failures: int = 10) -> str:
        """Human-readable rendering for the terminal."""
        lines = []
        if self.oracles is not None:
            status = "PASS" if self.oracles.passed else "FAIL"
            lines.append(
                f"oracles: {status} ({len(self.oracles.checks)} checks, "
                f"{self.oracles.num_failed} failed)"
            )
            for check in self.oracles.failures()[:max_failures]:
                lines.append(f"  {check.describe()}")
        if self.goldens is not None:
            drifted = {name: mismatches
                       for name, mismatches in self.goldens.items()
                       if mismatches}
            status = "PASS" if not drifted else "FAIL"
            lines.append(
                f"goldens: {status} ({len(self.goldens)} cases, "
                f"{len(drifted)} drifted)"
            )
            for name, mismatches in drifted.items():
                lines.append(f"  {name}: {len(mismatches)} mismatches")
                for mismatch in mismatches[:max_failures]:
                    lines.append(f"    {mismatch.describe()}")
        if self.strict is not None:
            status = "PASS" if self.strict.passed else "FAIL"
            lines.append(f"strict: {status} ({self.strict.detail})")
        if self.runtime is not None:
            status = "PASS" if self.runtime.passed else "FAIL"
            lines.append(
                f"runtime: {status} ({self.runtime.equivalence_detail})"
            )
            for mismatch in self.runtime.golden_mismatches[:max_failures]:
                lines.append(f"  {mismatch.describe()}")
        if self.kernels is not None:
            status = "PASS" if self.kernels.passed else "FAIL"
            lines.append(
                f"kernels: {status} ({len(self.kernels.checks)} checks, "
                f"{len(self.kernels.failures())} failed)"
            )
            for check in self.kernels.failures()[:max_failures]:
                lines.append(f"  {check.describe()}")
        lines.append(f"verification: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


def _run_strict_check(num_rounds: int, seed: int) -> StrictCheckResult:
    """Strict vs default runs: invariants hold AND results stay identical."""
    from repro.bandits.policies import UCBPolicy
    from repro.faults.model import FaultSpec
    from repro.sim.config import SimulationConfig
    from repro.sim.engine import TradingSimulator

    scenarios = (
        ("clean", None),
        ("faulty", FaultSpec(dropout_rate=0.2, corruption_rate=0.05,
                             stall_rate=0.05)),
    )
    for label, spec in scenarios:
        config = SimulationConfig(num_sellers=12, num_selected=3,
                                  num_pois=4, num_rounds=num_rounds,
                                  seed=seed)

        def run(strict: bool) -> RunMetrics:
            simulator = TradingSimulator(config)
            fault_model = (simulator.fault_model(spec)
                           if spec is not None else None)
            return simulator.run(UCBPolicy(), fault_model=fault_model,
                                 strict=strict)

        default = run(strict=False)
        try:
            checked = run(strict=True)
        except InvariantViolationError as error:
            return StrictCheckResult(
                False, f"{label} run violated an invariant: {error}"
            )
        for field in _BIT_IDENTICAL_FIELDS:
            if not np.array_equal(getattr(default, field),
                                  getattr(checked, field)):
                return StrictCheckResult(
                    False,
                    f"strict {label} run diverged from the default run "
                    f"in {field} — the monitor must not perturb results",
                )
    return StrictCheckResult(
        True,
        f"clean + faulty strict runs of {num_rounds} rounds: all "
        "invariants held, results bit-identical to default runs",
    )


def run_verification(*, seed: int = 0, oracle_cases: int = 12,
                     goldens_dir: str | None = None,
                     sections: tuple[str, ...] | None = None,
                     strict_rounds: int = 60,
                     tolerance: ToleranceSpec = DEFAULT_TOLERANCE,
                     ) -> VerificationReport:
    """Run the requested verification sections and collect one report.

    Parameters
    ----------
    seed:
        Seed for the oracle suite's randomized game instances and the
        strict-mode scenario configs.
    oracle_cases:
        Number of randomized games per oracle (edge cases always run).
    goldens_dir:
        Override the golden store location (tests); ``None`` uses the
        checked-in directory.
    sections:
        Subset of :data:`SECTIONS` to run; ``None`` runs everything.
    strict_rounds:
        Rounds per strict-mode scenario.
    tolerance:
        Golden-comparison tolerance.
    """
    wanted = SECTIONS if sections is None else tuple(sections)
    unknown = set(wanted) - set(SECTIONS)
    if unknown:
        from repro.exceptions import ConfigurationError

        raise ConfigurationError(
            f"unknown verification sections {sorted(unknown)}; "
            f"valid: {list(SECTIONS)}"
        )
    oracles = (run_oracle_suite(seed=seed, num_cases=oracle_cases)
               if "oracles" in wanted else None)
    goldens = (verify_goldens(goldens_dir, GOLDEN_CASES, tolerance)
               if "goldens" in wanted else None)
    strict = (_run_strict_check(strict_rounds, seed)
              if "strict" in wanted else None)
    runtime = (check_runtime(seed=seed, goldens_dir=goldens_dir,
                             tolerance=tolerance)
               if "runtime" in wanted else None)
    kernels = check_kernels(seed=seed) if "kernels" in wanted else None
    return VerificationReport(oracles=oracles, goldens=goldens,
                              strict=strict, runtime=runtime,
                              kernels=kernels)
