"""Golden-trace regression store.

A *golden* is the full per-round output of one canonical seeded
simulation — every :class:`~repro.sim.results.RunMetrics` series plus
the summary scalars — serialized to a checked-in JSON file.  Verifying
re-runs the identical configuration and diffs the fresh numbers against
the stored ones with a tight tolerance: any unintended change to the
engine, solvers, learner, or fault handling shows up as a concrete
``path: expected != actual`` drift report instead of silently shifting
the paper's figures.

The canonical cases are deliberately small (seconds, not minutes) but
cover the engine's distinct regimes: a plain CMAB-HS run, the ``K = M``
corner where selection and exploration pricing degenerate, and a
fault-injected run exercising the degradation paths.

Goldens are written through the same
:func:`~repro.sim.persistence.atomic_write_json` /
:func:`~repro.sim.persistence.normalize_json_value` pipeline as sweep
checkpoints, so float formatting and NaN/inf handling cannot diverge
between the two stores.  Intentional changes are blessed with
``repro verify --update-goldens`` (regenerating the files for review in
the diff).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass

from repro.exceptions import PersistenceError
from repro.faults.model import FaultSpec
from repro.sim.config import SimulationConfig
from repro.sim.persistence import atomic_write_json, denormalize_json_value
from repro.verify.compare import (
    DEFAULT_TOLERANCE,
    Mismatch,
    ToleranceSpec,
    diff_values,
)

__all__ = [
    "GoldenCase",
    "GOLDEN_CASES",
    "golden_directory",
    "golden_path",
    "compute_golden",
    "update_goldens",
    "verify_goldens",
]

#: RunMetrics array fields pinned per round (everything but telemetry,
#: which carries wall-clock timers and is intentionally unpinned).
_SERIES_FIELDS = (
    "realized_revenue", "expected_revenue", "regret", "consumer_profit",
    "platform_profit", "seller_profit_mean", "service_price",
    "collection_price", "total_sensing_time", "estimation_error",
    "selection_counts",
)


@dataclass(frozen=True)
class GoldenCase:
    """One canonical seeded run pinned by the golden store.

    Attributes
    ----------
    name:
        Stable identifier; also the golden's file stem.
    num_sellers, num_selected, num_pois, num_rounds, seed:
        The :class:`~repro.sim.config.SimulationConfig` overrides (all
        other parameters use the Table-II defaults).
    dropout_rate, corruption_rate, stall_rate:
        Fault-injection probabilities; all zero means a clean run.
    """

    name: str
    num_sellers: int
    num_selected: int
    num_pois: int
    num_rounds: int
    seed: int
    dropout_rate: float = 0.0
    corruption_rate: float = 0.0
    stall_rate: float = 0.0

    def config(self) -> SimulationConfig:
        """The simulation configuration this case runs."""
        return SimulationConfig(
            num_sellers=self.num_sellers,
            num_selected=self.num_selected,
            num_pois=self.num_pois,
            num_rounds=self.num_rounds,
            seed=self.seed,
        )

    def fault_spec(self) -> FaultSpec | None:
        """The fault probabilities, or ``None`` for a clean run."""
        spec = FaultSpec(dropout_rate=self.dropout_rate,
                         corruption_rate=self.corruption_rate,
                         stall_rate=self.stall_rate)
        return spec if spec.enabled else None


#: The canonical cases every ``repro verify`` run re-checks.
GOLDEN_CASES: tuple[GoldenCase, ...] = (
    GoldenCase("ucb-small", num_sellers=20, num_selected=4, num_pois=5,
               num_rounds=150, seed=0),
    GoldenCase("ucb-k-equals-m", num_sellers=6, num_selected=6, num_pois=4,
               num_rounds=80, seed=1),
    GoldenCase("ucb-faulty", num_sellers=15, num_selected=3, num_pois=5,
               num_rounds=120, seed=2, dropout_rate=0.15,
               corruption_rate=0.05, stall_rate=0.02),
)


def golden_directory() -> str:
    """The checked-in directory holding the golden JSON files."""
    return os.path.join(os.path.dirname(__file__), "goldens")


def golden_path(case: GoldenCase, directory: str | None = None) -> str:
    """Where ``case``'s golden file lives."""
    base = directory if directory is not None else golden_directory()
    return os.path.join(base, f"{case.name}.json")


def compute_golden(case: GoldenCase, *, strict: bool = False,
                   backend: str = "scalar") -> dict:
    """Run ``case`` from scratch and return its golden payload.

    The payload embeds the case parameters themselves, so editing
    :data:`GOLDEN_CASES` without regenerating the files is itself a
    detected drift.  ``backend`` selects the engine implementation —
    the stored goldens must pass unchanged under either (the kernels
    equivalence contract).
    """
    # Imported here, not at module level: the engine's strict mode
    # imports this package, and import cycles bite at module level only.
    from repro.bandits.policies import UCBPolicy
    from repro.sim.engine import TradingSimulator

    simulator = TradingSimulator(case.config(), backend=backend)
    spec = case.fault_spec()
    fault_model = simulator.fault_model(spec) if spec is not None else None
    metrics = simulator.run(UCBPolicy(), fault_model=fault_model,
                            strict=strict)
    series = {
        field: getattr(metrics, field).tolist() for field in _SERIES_FIELDS
    }
    return {
        "case": asdict(case),
        "policy": metrics.policy_name,
        "summary": metrics.summary(),
        "series": series,
    }


def update_goldens(directory: str | None = None,
                   cases: tuple[GoldenCase, ...] = GOLDEN_CASES) -> list[str]:
    """Recompute and rewrite every golden file; returns the paths written."""
    base = directory if directory is not None else golden_directory()
    os.makedirs(base, exist_ok=True)
    paths = []
    for case in cases:
        path = golden_path(case, base)
        atomic_write_json(path, compute_golden(case))
        paths.append(path)
    return paths


def _load_golden(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except json.JSONDecodeError as error:
        raise PersistenceError(f"golden file {path} is corrupt: {error}") \
            from error
    return denormalize_json_value(payload)


def verify_goldens(directory: str | None = None,
                   cases: tuple[GoldenCase, ...] = GOLDEN_CASES,
                   tolerance: ToleranceSpec = DEFAULT_TOLERANCE,
                   ) -> dict[str, list[Mismatch]]:
    """Re-run every case and diff against its stored golden.

    Returns a mapping from case name to its mismatches — empty lists
    everywhere means no drift.  A missing golden file is reported as a
    single mismatch pointing at the update command rather than raised,
    so one absent file does not mask drift in the others.
    """
    results: dict[str, list[Mismatch]] = {}
    for case in cases:
        path = golden_path(case, directory)
        if not os.path.exists(path):
            results[case.name] = [Mismatch(
                "", "<golden file>", "<missing>",
                f"golden file {path} does not exist — bless it with "
                "'repro verify --update-goldens'",
            )]
            continue
        expected = _load_golden(path)
        actual = compute_golden(case)
        results[case.name] = diff_values(expected, actual, tolerance)
    return results
