"""Differential oracles: closed forms vs independent references.

The engine's hot path trusts the paper's closed forms (Theorems 14-16)
and the :func:`~repro.core.selection.select_by_ucb` argsort selection.
Both have slower, independently-derived references in this repo — the
purely numerical ``solve_stage{1,2,3}_numeric`` backward induction and a
brute-force top-K — that share *no code* with the trusted paths beyond
the profit functions themselves.  Each oracle here solves the same
problem both ways and checks agreement, so an algebra slip in a closed
form (a sign flip, a dropped coefficient) is caught by construction
rather than by eyeballing revenue curves.

The decisive criterion is **profit domination**, not price equality:
a closed form claims to be the exact argmax, so the true profit of its
decision must be at least the profit of the numerical optimiser's
decision (minus grid slack).  Any perturbation of a closed form moves
its decision off the optimum and *lowers its true profit*, failing the
check — whereas raw price comparison can be fooled by flat optima.
Price/time agreement is still checked, with tolerances matching the
numerical references' resolution.

Stage-1/2 closed forms assume an interior solution (no price bound
binds, no seller opts out or saturates); cases violating that premise
are reported as skipped rather than compared against a formula whose
derivation does not apply.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # runtime import would cycle: the engine runs oracles
    from repro.sim.replication import ReplicationResult

from repro.core.incentive import (
    ClosedFormStackelbergSolver,
    optimal_collection_price,
    optimal_sensing_times,
    optimal_service_price,
)
from repro.core.selection import top_k_indices
from repro.game.profits import GameInstance
from repro.game.stackelberg import (
    NumericalStackelbergSolver,
    Stage3Fn,
    solve_stage1_numeric,
    solve_stage2_numeric,
    solve_stage3_numeric,
)
from repro.sim.rng import seeded_generator

__all__ = [
    "OracleCheck",
    "OracleSuiteReport",
    "brute_force_top_k",
    "check_stage3_oracle",
    "check_stage2_oracle",
    "check_stage1_oracle",
    "check_full_solve_oracle",
    "check_selection_oracle",
    "check_recovery_equivalence",
    "run_oracle_suite",
]

#: Absolute agreement required of Stage-3 sensing times (the numerical
#: golden-section search brackets to ~1e-11; 1e-5 matches the existing
#: closed-vs-numeric tests with margin for large tau scales).
_STAGE3_ATOL = 1e-5

#: Grid resolutions for the Stage-1 numerical reference.  Coarser than
#: the module defaults — every Stage-1 candidate price triggers a full
#: Stage-2 solve (itself a grid of Stage-3 solves), and the
#: golden-section polish restores precision afterwards, so the extra
#: coarse points only buy wall-clock time.  The basin-locating grids
#: stay dense enough for the unimodal profit surfaces involved.
_STAGE1_COARSE_POINTS = 61
_STAGE2_INNER_COARSE_POINTS = 201

#: Profit-domination slack: closed-form profit must be at least the
#: numerical reference's profit minus ``atol + rtol * |reference|``.
_DOMINATION_ATOL = 0.05
_DOMINATION_RTOL = 1e-3

#: Two-sided gross-agreement bound on profits — the numerical optimiser
#: must not be *beaten* by more than this either, or the references have
#: diverged structurally (e.g. different feasible regions).
_AGREEMENT_RTOL = 5e-2
_AGREEMENT_ATOL = 0.5


@dataclass(frozen=True)
class OracleCheck:
    """Outcome of one differential comparison.

    Attributes
    ----------
    oracle:
        Which oracle ran (``stage3``, ``stage2``, ``stage1``,
        ``full_solve``, ``selection``).
    case:
        Label of the game/scenario compared.
    passed:
        Whether the trusted path agreed with the reference (skipped
        cases count as passed).
    detail:
        What was compared, or why the case was skipped / how it failed.
    max_error:
        The worst discrepancy observed (0 for skips and clean passes of
        structural checks).
    """

    oracle: str
    case: str
    passed: bool
    detail: str
    max_error: float = 0.0

    def describe(self) -> str:
        """One-line rendering for reports."""
        status = "ok" if self.passed else "FAIL"
        return f"[{status}] {self.oracle}/{self.case}: {self.detail}"


@dataclass
class OracleSuiteReport:
    """All differential checks of one suite run."""

    checks: list[OracleCheck]

    @property
    def passed(self) -> bool:
        """Whether every comparison agreed."""
        return all(check.passed for check in self.checks)

    @property
    def num_failed(self) -> int:
        return sum(not check.passed for check in self.checks)

    def failures(self) -> list[OracleCheck]:
        """Only the disagreeing checks."""
        return [check for check in self.checks if not check.passed]

    def to_dict(self) -> dict:
        """JSON-ready payload for reports and CI artefacts."""
        return {
            "passed": self.passed,
            "num_checks": len(self.checks),
            "num_failed": self.num_failed,
            "failures": [
                {
                    "oracle": check.oracle,
                    "case": check.case,
                    "detail": check.detail,
                    "max_error": check.max_error,
                }
                for check in self.failures()
            ],
        }


def brute_force_top_k(scores: np.ndarray, k: int) -> np.ndarray:
    """Reference top-K: exhaustive sort in plain Python.

    Highest score wins; ties break toward the lower index — the same
    contract :func:`~repro.core.selection.top_k_indices` documents, met
    here by sorting ``(-score, index)`` pairs instead of argsorting a
    numpy array.  Returns the winners in ascending index order.
    """
    values = [float(s) for s in np.asarray(scores, dtype=float)]
    ranked = sorted(range(len(values)), key=lambda i: (-values[i], i))
    return np.array(sorted(ranked[: int(k)]), dtype=np.int64)


def _dominates(closed_profit: float, reference_profit: float) -> bool:
    slack = _DOMINATION_ATOL + _DOMINATION_RTOL * abs(reference_profit)
    return closed_profit >= reference_profit - slack


def _grossly_agrees(closed_profit: float, reference_profit: float) -> bool:
    scale = max(1.0, abs(closed_profit), abs(reference_profit))
    return (abs(closed_profit - reference_profit)
            <= _AGREEMENT_ATOL + _AGREEMENT_RTOL * scale)


def _stage2_reference(game: GameInstance, service_price: float,
                      stage3: Stage3Fn | None = None) -> float:
    """Stage-2 numerical reference used inside the Stage-1 search.

    Identical to :func:`solve_stage2_numeric` with a coarser
    basin-locating grid — it runs once per Stage-1 candidate price, so
    its cost multiplies by :data:`_STAGE1_COARSE_POINTS`.
    """
    return solve_stage2_numeric(game, service_price, stage3,
                                coarse_points=_STAGE2_INNER_COARSE_POINTS)


def _stage2_premise(game: GameInstance, collection_price: float,
                    taus: np.ndarray) -> str | None:
    """Why the Theorem-15 interior assumption fails (or ``None``)."""
    col_lo, col_hi = game.collection_price_bounds
    if not (col_lo + 1e-9 < collection_price < col_hi - 1e-9):
        return "collection price binds its bound"
    if np.any(taus <= 0.0):
        return "a seller opts out (tau = 0)"
    if np.isfinite(game.max_sensing_time) and np.any(
            taus >= game.max_sensing_time * (1.0 - 1e-9)):
        return "a sensing time saturates at T"
    return None


def _stage1_premise(game: GameInstance, service_price: float,
                    collection_price: float,
                    taus: np.ndarray) -> str | None:
    """Why the Theorem-16 interior assumption fails (or ``None``)."""
    svc_lo, svc_hi = game.service_price_bounds
    if not (svc_lo + 1e-9 < service_price < svc_hi - 1e-9):
        return "service price binds its bound"
    return _stage2_premise(game, collection_price, taus)


def check_stage3_oracle(game: GameInstance, collection_price: float,
                        case: str = "") -> OracleCheck:
    """Theorem-14 sensing times vs golden-section search, all sellers."""
    closed = optimal_sensing_times(game, collection_price)
    numeric = solve_stage3_numeric(game, collection_price)
    error = float(np.max(np.abs(closed - numeric)))
    closed_profit = game.seller_profits(collection_price, closed)
    numeric_profit = game.seller_profits(collection_price, numeric)
    dominated = bool(np.all(closed_profit >= numeric_profit - 1e-9))
    passed = error <= _STAGE3_ATOL and dominated
    detail = (f"max |tau_closed - tau_numeric| = {error:.3e} at "
              f"p = {collection_price:.6g}")
    if not dominated:
        detail += "; closed-form seller profit below numerical reference"
    return OracleCheck("stage3", case, passed, detail, error)


def check_stage2_oracle(game: GameInstance, service_price: float,
                        case: str = "") -> OracleCheck:
    """Theorem-15 collection price vs grid+golden-section reference."""
    closed = optimal_collection_price(game, service_price)
    closed_taus = optimal_sensing_times(game, closed)
    premise = _stage2_premise(game, closed, closed_taus)
    if premise is not None:
        return OracleCheck("stage2", case, True, f"skipped: {premise}")
    numeric = solve_stage2_numeric(game, service_price)
    numeric_taus = solve_stage3_numeric(game, numeric)
    closed_profit = game.platform_profit(service_price, closed, closed_taus)
    numeric_profit = game.platform_profit(service_price, numeric,
                                          numeric_taus)
    error = abs(closed - numeric)
    passed = (_dominates(closed_profit, numeric_profit)
              and _grossly_agrees(closed_profit, numeric_profit))
    detail = (f"p_closed = {closed:.6g} vs p_numeric = {numeric:.6g} at "
              f"p^J = {service_price:.6g}; platform profit "
              f"{closed_profit:.6g} vs {numeric_profit:.6g}")
    return OracleCheck("stage2", case, passed, detail, error)


def check_stage1_oracle(game: GameInstance, case: str = "") -> OracleCheck:
    """Theorem-16 service price vs full numerical backward induction."""
    closed_pj = optimal_service_price(game)
    closed_p = optimal_collection_price(game, closed_pj)
    closed_taus = optimal_sensing_times(game, closed_p)
    premise = _stage1_premise(game, closed_pj, closed_p, closed_taus)
    if premise is not None:
        return OracleCheck("stage1", case, True, f"skipped: {premise}")
    numeric_pj = solve_stage1_numeric(game, stage2=_stage2_reference,
                                      coarse_points=_STAGE1_COARSE_POINTS)
    numeric_p = solve_stage2_numeric(game, numeric_pj)
    numeric_taus = solve_stage3_numeric(game, numeric_p)
    closed_profit = game.consumer_profit(closed_pj, closed_taus)
    numeric_profit = game.consumer_profit(numeric_pj, numeric_taus)
    error = abs(closed_pj - numeric_pj)
    passed = (_dominates(closed_profit, numeric_profit)
              and _grossly_agrees(closed_profit, numeric_profit))
    detail = (f"p^J_closed = {closed_pj:.6g} vs p^J_numeric = "
              f"{numeric_pj:.6g}; consumer profit {closed_profit:.6g} vs "
              f"{numeric_profit:.6g}")
    return OracleCheck("stage1", case, passed, detail, error)


def check_full_solve_oracle(game: GameInstance,
                            case: str = "") -> OracleCheck:
    """Closed-form cascade vs the grid-based numerical solver, end to end.

    Compared only when the closed form's interior premise holds: in
    clipped corners the two solvers legitimately differ (the numerical
    reference additionally caps ``p <= p^J``, and the closed fallback's
    candidate evaluation does not enumerate ``T``-saturation kinks), so
    a comparison there would test the fallback heuristics, not the
    theorems.
    """
    closed = ClosedFormStackelbergSolver(fallback="clip").solve(game)
    premise = _stage1_premise(game, closed.profile.service_price,
                              closed.profile.collection_price,
                              closed.profile.sensing_times)
    if premise is not None:
        return OracleCheck("full_solve", case, True, f"skipped: {premise}")
    numeric = NumericalStackelbergSolver().solve(game)
    passed = (_dominates(closed.consumer_profit, numeric.consumer_profit)
              and _grossly_agrees(closed.consumer_profit,
                                  numeric.consumer_profit))
    error = abs(closed.consumer_profit - numeric.consumer_profit)
    detail = (f"consumer profit {closed.consumer_profit:.6g} (closed) vs "
              f"{numeric.consumer_profit:.6g} (numeric); p^J "
              f"{closed.profile.service_price:.6g} vs "
              f"{numeric.profile.service_price:.6g}")
    return OracleCheck("full_solve", case, passed, detail, error)


def check_selection_oracle(scores: np.ndarray, k: int,
                           case: str = "") -> OracleCheck:
    """Vectorised top-K selection vs the brute-force reference."""
    fast = top_k_indices(np.asarray(scores, dtype=float), int(k))
    reference = brute_force_top_k(scores, k)
    passed = bool(np.array_equal(fast, reference))
    detail = (f"top-{k} of {len(scores)} scores: argsort "
              f"{fast.tolist()} vs brute-force {reference.tolist()}")
    return OracleCheck("selection", case, passed, detail,
                       0.0 if passed else float(np.sum(fast != reference)))


def _floats_identical(a: float, b: float) -> bool:
    """Bit-level float agreement, treating NaN as equal to NaN.

    Plain ``==`` would flag two single-seed sweeps as diverging on
    their (honestly unknowable) NaN standard errors.
    """
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    return a == b


#: MetricSummary fields the recovery-equivalence oracle compares.
_SUMMARY_FIELDS = ("mean", "std", "minimum", "maximum", "num_seeds",
                   "stderr")


def check_recovery_equivalence(golden: "ReplicationResult",
                               recovered: "ReplicationResult",
                               case: str = "") -> OracleCheck:
    """The recovery-equivalence oracle of the chaos harness.

    A sweep that survived injected infrastructure faults — interrupts,
    corrupted checkpoints, crashed or stalled workers — must end
    **bit-identical** to a fault-free golden sweep of the same
    configuration: every metric of every policy, to the last float.
    "Close" is not recovery; any drift means some recovery path
    recomputed, dropped, or double-counted a seed.
    """
    mismatches: list[str] = []
    max_error = 0.0
    if list(golden.seeds) != list(recovered.seeds):
        mismatches.append(
            f"seeds {recovered.seeds} != golden {golden.seeds}"
        )
    if golden.policy_names() != recovered.policy_names():
        mismatches.append(
            f"policies {recovered.policy_names()} != "
            f"golden {golden.policy_names()}"
        )
    else:
        for policy in golden.policy_names():
            for metric, expected in golden.summaries[policy].items():
                actual = recovered.summaries[policy].get(metric)
                if actual is None:
                    mismatches.append(f"{policy}.{metric} missing")
                    continue
                for field_name in _SUMMARY_FIELDS:
                    want = float(getattr(expected, field_name))
                    got = float(getattr(actual, field_name))
                    if _floats_identical(want, got):
                        continue
                    mismatches.append(
                        f"{policy}.{metric}.{field_name} {got!r} != "
                        f"golden {want!r}"
                    )
                    if math.isfinite(want) and math.isfinite(got):
                        max_error = max(max_error, abs(got - want))
    passed = not mismatches
    detail = (
        f"recovered sweep bit-identical to fault-free golden "
        f"({len(golden.policy_names())} policies x "
        f"{len(golden.seeds)} seeds)"
        if passed else "; ".join(mismatches[:5])
        + (f" (+{len(mismatches) - 5} more)" if len(mismatches) > 5 else "")
    )
    return OracleCheck("recovery_equivalence", case, passed, detail,
                       max_error)


def _random_game(rng: np.random.Generator, num_sellers: int,
                 wide_bounds: bool) -> GameInstance:
    """One game drawn from the paper's Table-II parameter ranges."""
    if wide_bounds:
        svc_bounds, col_bounds = (0.0, 1_000.0), (0.0, 1_000.0)
    else:
        svc_bounds, col_bounds = (0.0, 1_000.0), (0.0, 5.0)
    return GameInstance(
        qualities=rng.uniform(0.1, 1.0, num_sellers),
        cost_a=rng.uniform(0.1, 0.5, num_sellers),
        cost_b=rng.uniform(0.0, 1.0, num_sellers),
        theta=float(rng.uniform(0.05, 0.5)),
        lam=float(rng.uniform(0.0, 2.0)),
        omega=float(rng.uniform(100.0, 2_000.0)),
        service_price_bounds=svc_bounds,
        collection_price_bounds=col_bounds,
    )


def _edge_case_games() -> list[tuple[str, GameInstance]]:
    """Deterministic corner cases every suite run includes."""
    single = GameInstance(
        qualities=np.array([0.6]), cost_a=np.array([0.3]),
        cost_b=np.array([0.4]), theta=0.1, lam=1.0, omega=1_000.0,
    )
    opt_out = GameInstance(
        # One seller's qbar*b is far above the others': at moderate
        # prices it senses zero time, exercising the clipped branch.
        qualities=np.array([0.9, 0.8, 0.2]),
        cost_a=np.array([0.2, 0.3, 0.4]),
        cost_b=np.array([20.0, 0.1, 0.2]),
        theta=0.1, lam=1.0, omega=500.0,
    )
    binding = GameInstance(
        # Collection price capped tight enough that the Stage-2 optimum
        # clips, exercising the bound-aware candidate logic.
        qualities=np.array([0.5, 0.7]),
        cost_a=np.array([0.2, 0.25]),
        cost_b=np.array([0.3, 0.5]),
        theta=0.2, lam=0.5, omega=800.0,
        collection_price_bounds=(0.0, 0.75),
    )
    capped = GameInstance(
        # A finite round duration T small enough to saturate tau.
        qualities=np.array([0.8, 0.9]),
        cost_a=np.array([0.1, 0.12]),
        cost_b=np.array([0.1, 0.2]),
        theta=0.1, lam=0.2, omega=1_500.0,
        max_sensing_time=3.0,
    )
    return [("single-seller", single), ("opt-out", opt_out),
            ("binding-bound", binding), ("capped-tau", capped)]


def run_oracle_suite(seed: int = 0, num_cases: int = 12,
                     stage1_cases: int = 6,
                     full_solve_cases: int = 3) -> OracleSuiteReport:
    """Run every differential oracle over edge cases + random games.

    ``num_cases`` random games from Table-II ranges (half with the
    paper's tight collection-price bounds) plus fixed corner cases
    (single seller, opt-out, binding bound, saturated ``tau``) are
    compared stage by stage.  The two expensive references — the full
    Stage-1 backward induction and the end-to-end grid solver — run on
    every corner case but only the first ``stage1_cases`` /
    ``full_solve_cases`` random games (several seconds each; the cheap
    Stage-2/3 oracles still cover every game).
    """
    rng = seeded_generator(seed)
    checks: list[OracleCheck] = []
    games = _edge_case_games()
    num_edge = len(games)
    for index in range(int(num_cases)):
        game = _random_game(rng, num_sellers=int(rng.integers(1, 9)),
                            wide_bounds=index % 2 == 0)
        games.append((f"random-{index}", game))

    for index, (case, game) in enumerate(games):
        closed_pj = optimal_service_price(game)
        mid_price = 0.5 * (game.opt_out_price + closed_pj) + 1.0
        for price_label, price in (("pj-star", closed_pj),
                                   ("mid", mid_price)):
            checks.append(check_stage3_oracle(
                game, optimal_collection_price(game, price),
                f"{case}/{price_label}"))
            checks.append(check_stage2_oracle(game, price,
                                              f"{case}/{price_label}"))
        if index < num_edge + int(stage1_cases):
            checks.append(check_stage1_oracle(game, case))
        if index < num_edge + int(full_solve_cases):
            checks.append(check_full_solve_oracle(game, case))

    for index in range(6):
        size = int(rng.integers(3, 40))
        scores = rng.normal(size=size)
        if index % 2 == 0 and size > 4:
            # Inject ties and infinities: the regimes where a fast
            # argsort and a naive sort can legitimately disagree.
            scores[: size // 2] = scores[0]
            scores[-1] = np.inf
        k = int(rng.integers(1, size + 1))
        checks.append(check_selection_oracle(scores, k, f"scores-{index}"))

    return OracleSuiteReport(checks)
