"""Tolerance-aware comparison utilities for verification.

Every cross-check in this package — differential oracles comparing the
closed forms against numerical baselines, golden-trace comparisons
against checked-in JSON — reduces to "are these two values the same up
to a tolerance?".  This module answers that question once, correctly,
for the awkward cases: NaN (equal to itself here, unlike IEEE),
infinities (equal only with matching sign), mixed int/float payloads,
and arbitrarily nested dict/list structures, reporting every mismatch
with its path instead of failing fast on the first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["ToleranceSpec", "Mismatch", "values_close", "diff_values"]


@dataclass(frozen=True)
class ToleranceSpec:
    """How close two numbers must be to count as equal.

    Two finite values ``a`` and ``b`` are close when
    ``|a - b| <= atol + rtol * max(|a|, |b|)`` — the symmetric variant
    of :func:`numpy.isclose` (neither side is privileged, so comparing
    golden-vs-actual gives the same verdict as actual-vs-golden).

    Attributes
    ----------
    rtol, atol:
        Relative and absolute tolerance.
    nan_equal:
        Whether two NaNs compare equal (the right semantics for
        serialized payloads: a stored NaN *matching* a computed NaN is
        agreement, not error).
    """

    rtol: float = 1e-9
    atol: float = 1e-12
    nan_equal: bool = True

    def __post_init__(self) -> None:
        if self.rtol < 0.0 or self.atol < 0.0:
            raise ConfigurationError(
                f"tolerances must be >= 0, got rtol={self.rtol} "
                f"atol={self.atol}"
            )


#: Default spec for golden comparisons: tight enough to pin results to
#: ~9 significant digits across refactors, loose enough to absorb
#: run-to-run float-reassociation noise from compiler/numpy updates.
DEFAULT_TOLERANCE = ToleranceSpec()


def values_close(expected: float, actual: float,
                 tolerance: ToleranceSpec = DEFAULT_TOLERANCE) -> bool:
    """Whether two scalars agree within the tolerance (NaN/inf-aware).

    NaN equals NaN when the spec says so; infinities must match sign
    exactly; a finite value never equals a non-finite one.
    """
    a, b = float(expected), float(actual)
    if math.isnan(a) or math.isnan(b):
        return tolerance.nan_equal and math.isnan(a) and math.isnan(b)
    if math.isinf(a) or math.isinf(b):
        return a == b
    return abs(a - b) <= tolerance.atol + tolerance.rtol * max(abs(a), abs(b))


@dataclass(frozen=True)
class Mismatch:
    """One point of disagreement between two payloads.

    Attributes
    ----------
    path:
        Dotted/indexed location, e.g. ``summary.regret`` or
        ``regret_curve[17]``.
    expected, actual:
        The disagreeing values (``<missing>`` markers for absent keys).
    detail:
        Human-readable explanation of the disagreement.
    """

    path: str
    expected: object
    actual: object
    detail: str

    def describe(self) -> str:
        """One-line rendering used in reports and error messages."""
        return f"{self.path or '<root>'}: {self.detail}"


_MISSING = "<missing>"

#: Scalar types compared numerically (bool first: it subclasses int but
#: must compare by identity of truth value, not tolerance).
_NUMERIC_TYPES = (int, float)


def _is_number(value: object) -> bool:
    return isinstance(value, _NUMERIC_TYPES) and not isinstance(value, bool)


def diff_values(expected: object, actual: object,
                tolerance: ToleranceSpec = DEFAULT_TOLERANCE,
                path: str = "") -> list[Mismatch]:
    """Every disagreement between two nested JSON-like payloads.

    Recurses through dicts and lists; numbers compare via
    :func:`values_close` (an int may equal a float); everything else
    compares with ``==``.  Numpy arrays/scalars are accepted on either
    side and treated as their list/scalar equivalents.  Returns an
    empty list when the payloads agree everywhere.
    """
    if isinstance(expected, np.ndarray):
        expected = expected.tolist()
    if isinstance(actual, np.ndarray):
        actual = actual.tolist()
    if isinstance(expected, np.generic):
        expected = expected.item()
    if isinstance(actual, np.generic):
        actual = actual.item()

    if isinstance(expected, dict) or isinstance(actual, dict):
        if not (isinstance(expected, dict) and isinstance(actual, dict)):
            other = actual if isinstance(expected, dict) else expected
            return [Mismatch(path, expected, actual,
                             f"type mismatch: dict vs {type(other).__name__}")]
        mismatches: list[Mismatch] = []
        for key in expected:
            child = f"{path}.{key}" if path else str(key)
            if key not in actual:
                mismatches.append(Mismatch(child, expected[key], _MISSING,
                                           "missing from actual"))
            else:
                mismatches.extend(
                    diff_values(expected[key], actual[key], tolerance, child)
                )
        for key in actual:
            if key not in expected:
                child = f"{path}.{key}" if path else str(key)
                mismatches.append(Mismatch(child, _MISSING, actual[key],
                                           "unexpected key in actual"))
        return mismatches

    if isinstance(expected, (list, tuple)) or isinstance(actual, (list, tuple)):
        if not (isinstance(expected, (list, tuple))
                and isinstance(actual, (list, tuple))):
            return [Mismatch(path, expected, actual, "type mismatch: "
                             "sequence vs scalar")]
        if len(expected) != len(actual):
            return [Mismatch(path, expected, actual,
                             f"length {len(expected)} != {len(actual)}")]
        mismatches = []
        for index, (e, a) in enumerate(zip(expected, actual)):
            mismatches.extend(
                diff_values(e, a, tolerance, f"{path}[{index}]")
            )
        return mismatches

    if _is_number(expected) and _is_number(actual):
        if values_close(expected, actual, tolerance):
            return []
        return [Mismatch(path, expected, actual,
                         f"{expected!r} != {actual!r} "
                         f"(rtol={tolerance.rtol:g}, atol={tolerance.atol:g})")]

    if expected != actual:
        return [Mismatch(path, expected, actual,
                         f"{expected!r} != {actual!r}")]
    return []
