"""Runtime verification: batch-equivalence oracle + churn golden trace.

Two legs, both part of ``repro verify --only runtime``:

1. **Batch equivalence (differential oracle)** — a static-population
   :class:`~repro.runtime.MarketRuntime` run must be *bit-identical* to
   :class:`~repro.sim.engine.TradingSimulator` on the same seed, across
   every :class:`~repro.sim.results.RunMetrics` field the strict-mode
   check pins, and its trade ledger must agree with its own metric
   series row for row.  The two engines share the round bodies
   (:mod:`repro.sim.rounds`) and RNG stream construction, so any
   divergence means the event re-hosting perturbed the simulation.
2. **Churn golden trace** — one canonical churning runtime run (seeded
   arrivals/departures with sinusoidal intensity drift) is pinned by a
   checked-in JSON golden: the trade ledger's SHA-256 digest exactly,
   the summary scalars and session/message counters within the golden
   tolerance.  Same seed + same event script → same ledger, or verify
   fails.

Intentional changes are blessed with ``repro verify --update-goldens``,
which rewrites the churn golden alongside the engine goldens.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass

import numpy as np

from repro.exceptions import PersistenceError
from repro.sim.config import SimulationConfig
from repro.sim.persistence import atomic_write_json, denormalize_json_value
from repro.verify.compare import (
    DEFAULT_TOLERANCE,
    Mismatch,
    ToleranceSpec,
    diff_values,
)

__all__ = [
    "RuntimeGoldenCase",
    "RUNTIME_GOLDEN_CASE",
    "RuntimeCheckResult",
    "check_batch_equivalence",
    "compute_runtime_golden",
    "update_runtime_golden",
    "verify_runtime_golden",
    "check_runtime",
]

#: RunMetrics fields the batch-equivalence oracle compares bit-for-bit
#: (the same set the strict-mode check pins; telemetry is wall-clock).
_EQUIVALENCE_FIELDS = (
    "realized_revenue", "expected_revenue", "regret", "consumer_profit",
    "platform_profit", "seller_profit_mean", "service_price",
    "collection_price", "total_sensing_time", "selection_counts",
    "estimation_error",
)


@dataclass(frozen=True)
class RuntimeGoldenCase:
    """The canonical churning runtime run the golden store pins."""

    name: str
    num_sellers: int
    num_selected: int
    num_pois: int
    num_rounds: int
    seed: int
    arrival_rate: float
    departure_rate: float
    min_online: int
    drift_amplitude: float
    drift_period: float

    def config(self) -> SimulationConfig:
        """The simulation configuration this case runs."""
        return SimulationConfig(
            num_sellers=self.num_sellers,
            num_selected=self.num_selected,
            num_pois=self.num_pois,
            num_rounds=self.num_rounds,
            seed=self.seed,
        )


#: The checked-in churn case (file stem = case name).
RUNTIME_GOLDEN_CASE = RuntimeGoldenCase(
    "runtime-churn", num_sellers=16, num_selected=4, num_pois=5,
    num_rounds=120, seed=5, arrival_rate=0.25, departure_rate=0.12,
    min_online=2, drift_amplitude=0.5, drift_period=40.0,
)


@dataclass(frozen=True)
class RuntimeCheckResult:
    """Outcome of the runtime section.

    Attributes
    ----------
    equivalence_passed / equivalence_detail:
        The batch-equivalence oracle's verdict and narrative.
    golden_mismatches:
        Drift of the churn golden (empty = clean).
    """

    equivalence_passed: bool
    equivalence_detail: str
    golden_mismatches: list[Mismatch]

    @property
    def passed(self) -> bool:
        """Whether both legs are clean."""
        return self.equivalence_passed and not self.golden_mismatches

    def to_dict(self) -> dict:
        """JSON-ready payload for the ``--report`` artefact."""
        return {
            "passed": self.passed,
            "equivalence": {"passed": self.equivalence_passed,
                            "detail": self.equivalence_detail},
            "golden": {
                "passed": not self.golden_mismatches,
                "mismatches": [mismatch.describe()
                               for mismatch in self.golden_mismatches],
            },
        }


def check_batch_equivalence(*, seed: int = 0,
                            num_rounds: int = 60) -> tuple[bool, str]:
    """Static-population runtime vs batch engine, bit for bit.

    Returns ``(passed, detail)``; the detail names the first diverging
    field on failure.
    """
    from repro.bandits.policies import UCBPolicy
    from repro.runtime.market import MarketRuntime
    from repro.sim.engine import TradingSimulator

    config = SimulationConfig(num_sellers=12, num_selected=3, num_pois=4,
                              num_rounds=num_rounds, seed=seed)
    batch = TradingSimulator(config).run(UCBPolicy())
    runtime = MarketRuntime(config)
    live = runtime.run()
    for field in _EQUIVALENCE_FIELDS:
        if not np.array_equal(np.asarray(getattr(batch, field)),
                              np.asarray(getattr(live, field))):
            return False, (
                f"runtime diverged from the batch engine in {field} "
                f"(seed {seed}, {num_rounds} rounds) — the event "
                "re-hosting must not perturb the simulation"
            )
    ledger = runtime.ledger
    if len(ledger) != num_rounds:
        return False, (
            f"trade ledger has {len(ledger)} records for {num_rounds} "
            "rounds"
        )
    for record in ledger.records:
        t = record.round_index
        # Bit-exact on purpose: the ledger is written from the same
        # settled values the series hold.
        settled = np.array([record.service_price, record.collection_price,
                            record.tau_total, record.realized])
        series_row = np.array([live.service_price[t],
                               live.collection_price[t],
                               live.total_sensing_time[t],
                               live.realized_revenue[t]])
        if not np.array_equal(settled, series_row):
            return False, (
                f"trade ledger disagrees with the metric series at "
                f"round {t}"
            )
    return True, (
        f"static-population runtime bit-identical to the batch engine "
        f"over {num_rounds} rounds (seed {seed}); ledger consistent "
        "with the metric series"
    )


def _run_golden_case(case: RuntimeGoldenCase,
                     backend: str = "scalar") -> dict:
    from repro.quality.drift import SinusoidalDrift
    from repro.runtime.arrivals import ChurnSpec
    from repro.runtime.market import MarketRuntime

    spec = ChurnSpec(
        arrival_rate=case.arrival_rate,
        departure_rate=case.departure_rate,
        min_online=case.min_online,
        drift=SinusoidalDrift(amplitude=case.drift_amplitude,
                              period=case.drift_period),
    )
    runtime = MarketRuntime(case.config(), churn=spec, backend=backend)
    metrics = runtime.run()
    return {
        "case": asdict(case),
        "policy": metrics.policy_name,
        "ledger_digest": runtime.ledger.digest(),
        "summary": metrics.summary(),
        "sessions_opened": runtime.sessions_opened,
        "sessions_closed": runtime.sessions_closed,
        "messages_delivered": runtime.kernel.messages_delivered,
        "messages_dropped": runtime.kernel.messages_dropped,
    }


def _golden_path(directory: str | None = None) -> str:
    from repro.verify.golden import golden_directory

    base = directory if directory is not None else golden_directory()
    return os.path.join(base, f"{RUNTIME_GOLDEN_CASE.name}.json")


def compute_runtime_golden(
        case: RuntimeGoldenCase = RUNTIME_GOLDEN_CASE, *,
        backend: str = "scalar") -> dict:
    """Run the churn case from scratch and return its golden payload.

    ``backend`` selects the runtime implementation — the stored golden
    must pass unchanged under either (the kernels equivalence contract
    pins the ledger digest across backends).
    """
    return _run_golden_case(case, backend=backend)


def update_runtime_golden(directory: str | None = None) -> str:
    """Recompute and rewrite the churn golden; returns the path."""
    path = _golden_path(directory)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    atomic_write_json(path, compute_runtime_golden())
    return path


def verify_runtime_golden(directory: str | None = None,
                          tolerance: ToleranceSpec = DEFAULT_TOLERANCE,
                          ) -> list[Mismatch]:
    """Re-run the churn case and diff against its stored golden.

    The ledger digest is a string, so any bit of drift in any settled
    trade fails exactly; the float summary uses the golden tolerance.
    """
    path = _golden_path(directory)
    if not os.path.exists(path):
        return [Mismatch(
            "", "<golden file>", "<missing>",
            f"runtime golden {path} does not exist — bless it with "
            "'repro verify --update-goldens'",
        )]
    try:
        with open(path, encoding="utf-8") as handle:
            expected = denormalize_json_value(json.load(handle))
    except json.JSONDecodeError as error:
        raise PersistenceError(
            f"runtime golden {path} is corrupt: {error}"
        ) from error
    return diff_values(expected, compute_runtime_golden(), tolerance)


def check_runtime(*, seed: int = 0, num_rounds: int = 60,
                  goldens_dir: str | None = None,
                  tolerance: ToleranceSpec = DEFAULT_TOLERANCE,
                  ) -> RuntimeCheckResult:
    """Run both runtime legs and collect one result."""
    passed, detail = check_batch_equivalence(seed=seed,
                                             num_rounds=num_rounds)
    mismatches = verify_runtime_golden(goldens_dir, tolerance)
    return RuntimeCheckResult(equivalence_passed=passed,
                              equivalence_detail=detail,
                              golden_mismatches=mismatches)
