"""Version information for the :mod:`repro` library."""

from __future__ import annotations

__version__ = "1.0.0"

#: The paper this library reproduces.
PAPER_TITLE = (
    "Crowdsensing Data Trading based on Combinatorial Multi-Armed Bandit "
    "and Stackelberg Game"
)

#: Venue of the reproduced paper.
PAPER_VENUE = "ICDE 2021"
