"""The worker process entrypoint of the parallel runtime.

Each worker is a plain :class:`multiprocessing.Process` running
:func:`worker_main`: pull a chunk of :class:`~repro.parallel.tasks.TaskSpec`\\ s
from the shared task queue, run each through the executor's runner, and
stream protocol messages back on the result queue.  The coordinator
never shares mutable state with workers — everything crosses through
the two queues, so a worker can die at any instant without corrupting
the sweep (the coordinator re-queues whatever the dead worker held).

Telemetry is worker-local: every task runs against a fresh
:class:`~repro.obs.MetricsRegistry` and (when capture is on) a
:class:`~repro.obs.RingBufferSink`-backed tracer, and the snapshot plus
the buffered events ride home inside the ``task_done`` message for the
coordinator to merge.

Liveness: when the coordinator runs a watchdog it asks for heartbeats —
a daemon thread putting ``("heartbeat", worker_id)`` on the result
queue at a fixed interval.  The heartbeat means "this process is alive
and its scheduler runs threads", *not* "the current task progresses";
a long-running task is normal and is bounded separately by the
coordinator's per-task deadline.  Without a watchdog no thread is
started and the worker is byte-for-byte the pre-watchdog one.

Fault injection (for tests and drills), each latched to exactly one
occurrence by an ``O_EXCL`` marker file:

* **crash** — set :data:`CRASH_TASK_ENV` to a task id and
  :data:`CRASH_MARKER_ENV` to a marker path, and the first worker to
  pick that task up dies hard (``os._exit``) before running it; the
  re-queued attempt on a fresh worker completes normally.
* **stall** — set :data:`STALL_TASK_ENV` / :data:`STALL_MARKER_ENV`,
  and the first worker to pick that task up wedges: heartbeats stop
  and the main thread sleeps indefinitely, simulating a process frozen
  mid-task.  Only the coordinator's watchdog can clear it (kill +
  replace); without a watchdog the run would hang, which is exactly
  the failure mode the watchdog exists for.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import traceback
from dataclasses import dataclass
from repro.obs.timing import perf_counter

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, RingBufferSink, Tracer

__all__ = [
    "CRASH_TASK_ENV",
    "CRASH_MARKER_ENV",
    "CRASH_EXIT_CODE",
    "STALL_TASK_ENV",
    "STALL_MARKER_ENV",
    "WorkerContext",
    "worker_main",
]

#: Environment variable naming the task id whose next pickup should
#: kill the worker (test/drill hook; see the module docstring).
CRASH_TASK_ENV = "REPRO_PARALLEL_CRASH_TASK"

#: Environment variable naming the marker file that latches the
#: injected crash to exactly one occurrence.
CRASH_MARKER_ENV = "REPRO_PARALLEL_CRASH_MARKER"

#: Exit code of an injected worker crash (recognisable in
#: ``worker_crashed`` trace events).
CRASH_EXIT_CODE = 23

#: Environment variable naming the task id whose next pickup should
#: wedge the worker (heartbeats stop, main thread sleeps forever).
STALL_TASK_ENV = "REPRO_PARALLEL_STALL_TASK"

#: Environment variable naming the marker file that latches the
#: injected stall to exactly one occurrence.
STALL_MARKER_ENV = "REPRO_PARALLEL_STALL_MARKER"


@dataclass
class WorkerContext:
    """What a runner sees of the worker it executes inside.

    Attributes
    ----------
    worker_id:
        The executor-assigned worker number (stable across tasks, fresh
        for crash replacements).
    tracer:
        Worker-local tracer; the :data:`~repro.obs.NULL_TRACER` when the
        executor runs without event capture, so runners can emit
        unconditionally.
    metrics:
        Worker-local registry; its snapshot is shipped back with the
        task result and merged by the coordinator.
    """

    worker_id: int
    tracer: Tracer
    metrics: MetricsRegistry


def _claim_injection(task_env: str, marker_env: str, task_id: int) -> bool:
    """Whether this pickup wins the (single-shot) injection for ``task_id``.

    The marker file is created with ``O_EXCL`` so exactly one attempt
    triggers; every later attempt (on the replacement worker) sees the
    marker and runs normally.
    """
    target = os.environ.get(task_env)
    marker = os.environ.get(marker_env)
    if not target or not marker or int(target) != task_id:
        return False
    try:
        descriptor = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(descriptor)
    return True


def _maybe_injected_stall(task_id: int, beats_paused) -> None:
    """Wedge this worker if the stall-injection hook targets this task.

    Models a process frozen mid-task (deadlocked native code, SIGSTOP,
    a hung NFS read): heartbeats stop, the main thread never returns.
    The sleep loop runs until the coordinator's watchdog kills the
    process — there is deliberately no way out from the inside.
    """
    if not _claim_injection(STALL_TASK_ENV, STALL_MARKER_ENV, task_id):
        return
    beats_paused.set()
    while True:
        time.sleep(3600.0)


def _maybe_injected_crash(task_id: int, result_queue) -> None:
    """Die hard if the crash-injection hook targets this task (once)."""
    if not _claim_injection(CRASH_TASK_ENV, CRASH_MARKER_ENV, task_id):
        return
    # Flush this process's queue feeder first, so the coordinator has
    # the chunk_start/task_start messages that tell it what died —
    # modelling a worker that crashed *inside* the task, which is the
    # overwhelmingly dominant real-world window (task compute time
    # dwarfs the microseconds between dequeue and acknowledgement).
    result_queue.close()
    result_queue.join_thread()
    # A real crash: no protocol goodbye, no Python exit handlers — the
    # coordinator must notice via the process exitcode.
    os._exit(CRASH_EXIT_CODE)


def _start_heartbeat(worker_id: int, result_queue, interval_s: float,
                     beats_paused: threading.Event) -> None:
    """Start the daemon heartbeat thread.

    The thread dies with the process (daemon) and falls silent if the
    result queue is torn down — by then the coordinator has already
    moved on.  ``beats_paused`` lets the stall injector simulate a
    fully frozen process.
    """

    def beat() -> None:
        while True:
            time.sleep(interval_s)
            if beats_paused.is_set():
                continue
            try:
                result_queue.put(("heartbeat", worker_id))
            except (OSError, ValueError):  # pragma: no cover - queue gone
                return

    threading.Thread(target=beat, daemon=True,
                     name=f"repro-heartbeat-{worker_id}").start()


def worker_main(worker_id: int, runner, task_queue, result_queue,
                capture_events: bool, ring_capacity: int,
                heartbeat_interval_s: float | None = None) -> None:
    """Run tasks until the ``None`` sentinel arrives.

    Protocol messages put on ``result_queue`` (all picklable tuples,
    first element is the message kind):

    * ``("chunk_start", worker_id, [task_id, ...])`` — the worker took
      a chunk; the coordinator now knows what is at risk if it dies.
    * ``("task_start", worker_id, task_id)`` — one task began.
    * ``("task_done", worker_id, task_id, value, duration_s,
      metrics_snapshot, events)`` — one task finished.
    * ``("task_error", worker_id, task_id, error_repr, traceback)`` —
      the runner raised; the worker stays alive, the coordinator
      decides (it fails the whole run — an exception is a bug, not a
      fault to retry).
    * ``("heartbeat", worker_id)`` — liveness beacon, only when the
      coordinator asked for one (``heartbeat_interval_s`` not None).

    SIGINT is ignored in workers: a terminal Ctrl-C reaches the whole
    process group, and graceful shutdown means the *coordinator* stops
    feeding tasks and drains — workers must survive the signal to
    finish what they hold.  SIGTERM keeps its default handler so the
    coordinator's ``terminate()`` still works.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    beats_paused = threading.Event()
    if heartbeat_interval_s is not None:
        _start_heartbeat(worker_id, result_queue, heartbeat_interval_s,
                         beats_paused)
    while True:
        chunk = task_queue.get()
        if chunk is None:
            return
        result_queue.put(
            ("chunk_start", worker_id, [spec.task_id for spec in chunk])
        )
        for spec in chunk:
            result_queue.put(("task_start", worker_id, spec.task_id))
            _maybe_injected_crash(spec.task_id, result_queue)
            _maybe_injected_stall(spec.task_id, beats_paused)
            sink = (RingBufferSink(ring_capacity)
                    if capture_events else None)
            tracer = Tracer(sink) if sink is not None else NULL_TRACER
            metrics = MetricsRegistry()
            context = WorkerContext(worker_id=worker_id, tracer=tracer,
                                    metrics=metrics)
            start = perf_counter()
            try:
                value = runner(spec.payload, context)
            except BaseException as error:  # every failure is shipped back
                result_queue.put((
                    "task_error", worker_id, spec.task_id,
                    f"{type(error).__name__}: {error}",
                    traceback.format_exc(),
                ))
                continue
            duration = perf_counter() - start
            result_queue.put((
                "task_done", worker_id, spec.task_id, value, duration,
                metrics.snapshot(),
                sink.events if sink is not None else (),
            ))
