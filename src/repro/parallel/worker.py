"""The worker process entrypoint of the parallel runtime.

Each worker is a plain :class:`multiprocessing.Process` running
:func:`worker_main`: pull a chunk of :class:`~repro.parallel.tasks.TaskSpec`\\ s
from the shared task queue, run each through the executor's runner, and
stream protocol messages back on the result queue.  The coordinator
never shares mutable state with workers — everything crosses through
the two queues, so a worker can die at any instant without corrupting
the sweep (the coordinator re-queues whatever the dead worker held).

Telemetry is worker-local: every task runs against a fresh
:class:`~repro.obs.MetricsRegistry` and (when capture is on) a
:class:`~repro.obs.RingBufferSink`-backed tracer, and the snapshot plus
the buffered events ride home inside the ``task_done`` message for the
coordinator to merge.

Crash injection (for tests and drills): set
:data:`CRASH_TASK_ENV` to a task id and :data:`CRASH_MARKER_ENV` to a
writable marker path, and the first worker to pick that task up dies
hard (``os._exit``) before running it — exactly once, because creating
the marker file is the atomic "already crashed" latch.  The re-queued
attempt on a fresh worker then completes normally.
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass
from repro.obs.timing import perf_counter

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, RingBufferSink, Tracer

__all__ = [
    "CRASH_TASK_ENV",
    "CRASH_MARKER_ENV",
    "CRASH_EXIT_CODE",
    "WorkerContext",
    "worker_main",
]

#: Environment variable naming the task id whose next pickup should
#: kill the worker (test/drill hook; see the module docstring).
CRASH_TASK_ENV = "REPRO_PARALLEL_CRASH_TASK"

#: Environment variable naming the marker file that latches the
#: injected crash to exactly one occurrence.
CRASH_MARKER_ENV = "REPRO_PARALLEL_CRASH_MARKER"

#: Exit code of an injected worker crash (recognisable in
#: ``worker_crashed`` trace events).
CRASH_EXIT_CODE = 23


@dataclass
class WorkerContext:
    """What a runner sees of the worker it executes inside.

    Attributes
    ----------
    worker_id:
        The executor-assigned worker number (stable across tasks, fresh
        for crash replacements).
    tracer:
        Worker-local tracer; the :data:`~repro.obs.NULL_TRACER` when the
        executor runs without event capture, so runners can emit
        unconditionally.
    metrics:
        Worker-local registry; its snapshot is shipped back with the
        task result and merged by the coordinator.
    """

    worker_id: int
    tracer: Tracer
    metrics: MetricsRegistry


def _maybe_injected_crash(task_id: int, result_queue) -> None:
    """Die hard if the crash-injection hook targets this task.

    The marker file is created with ``O_EXCL`` so exactly one attempt
    crashes; every later attempt (on the replacement worker) sees the
    marker and runs normally.
    """
    target = os.environ.get(CRASH_TASK_ENV)
    marker = os.environ.get(CRASH_MARKER_ENV)
    if not target or not marker or int(target) != task_id:
        return
    try:
        descriptor = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(descriptor)
    # Flush this process's queue feeder first, so the coordinator has
    # the chunk_start/task_start messages that tell it what died —
    # modelling a worker that crashed *inside* the task, which is the
    # overwhelmingly dominant real-world window (task compute time
    # dwarfs the microseconds between dequeue and acknowledgement).
    result_queue.close()
    result_queue.join_thread()
    # A real crash: no protocol goodbye, no Python exit handlers — the
    # coordinator must notice via the process exitcode.
    os._exit(CRASH_EXIT_CODE)


def worker_main(worker_id: int, runner, task_queue, result_queue,
                capture_events: bool, ring_capacity: int) -> None:
    """Run tasks until the ``None`` sentinel arrives.

    Protocol messages put on ``result_queue`` (all picklable tuples,
    first element is the message kind):

    * ``("chunk_start", worker_id, [task_id, ...])`` — the worker took
      a chunk; the coordinator now knows what is at risk if it dies.
    * ``("task_start", worker_id, task_id)`` — one task began.
    * ``("task_done", worker_id, task_id, value, duration_s,
      metrics_snapshot, events)`` — one task finished.
    * ``("task_error", worker_id, task_id, error_repr, traceback)`` —
      the runner raised; the worker stays alive, the coordinator
      decides (it fails the whole run — an exception is a bug, not a
      fault to retry).
    """
    while True:
        chunk = task_queue.get()
        if chunk is None:
            return
        result_queue.put(
            ("chunk_start", worker_id, [spec.task_id for spec in chunk])
        )
        for spec in chunk:
            result_queue.put(("task_start", worker_id, spec.task_id))
            _maybe_injected_crash(spec.task_id, result_queue)
            sink = (RingBufferSink(ring_capacity)
                    if capture_events else None)
            tracer = Tracer(sink) if sink is not None else NULL_TRACER
            metrics = MetricsRegistry()
            context = WorkerContext(worker_id=worker_id, tracer=tracer,
                                    metrics=metrics)
            start = perf_counter()
            try:
                value = runner(spec.payload, context)
            except BaseException as error:  # every failure is shipped back
                result_queue.put((
                    "task_error", worker_id, spec.task_id,
                    f"{type(error).__name__}: {error}",
                    traceback.format_exc(),
                ))
                continue
            duration = perf_counter() - start
            result_queue.put((
                "task_done", worker_id, spec.task_id, value, duration,
                metrics.snapshot(),
                sink.events if sink is not None else (),
            ))
