"""A crash-tolerant process-pool executor with deterministic results.

:class:`ParallelExecutor` fans picklable tasks out to worker processes
and collects :class:`~repro.parallel.tasks.TaskResult`\\ s:

* **Chunked scheduling** — tasks are grouped into chunks to amortise
  queue round-trips; workers report per-task progress inside a chunk,
  so a crash only re-queues the genuinely unfinished tasks.
* **Crash tolerance** — a worker that dies (segfault, OOM kill,
  ``os._exit``) is detected via its process exitcode; the tasks it held
  are re-queued to a freshly spawned replacement (bounded by
  ``max_task_retries``), the crash is counted in the coordinator's
  metrics, and a ``worker_crashed`` trace event records it.  Runner
  *exceptions* are not retried — they indicate a bug and fail the run
  with a :class:`~repro.exceptions.ParallelExecutionError` carrying the
  worker traceback.
* **Ordered collection** — :meth:`map` returns results in submission
  order regardless of completion order; :meth:`as_completed` yields
  them as they finish (for incremental checkpointing).
* **Merged telemetry** — workers run local
  :class:`~repro.obs.MetricsRegistry` / ring-buffered tracer instances;
  the coordinator folds every returned snapshot into its own registry
  (:meth:`~repro.obs.MetricsRegistry.merge`) and replays worker events
  into the parent tracer tagged with ``worker=<id>``, bracketed by
  ``worker_started`` / ``worker_task_done`` / ``worker_crashed``
  events.

Determinism contract: the executor never reorders *computation* — each
task is a self-contained pure function of its payload — so any worker
count, chunk size, or crash/retry schedule yields the same result set,
and :meth:`map`'s ordering makes the collection deterministic too.

Start methods: the default ``fork`` (on platforms that offer it) lets
runners close over arbitrary unpicklable state (workers inherit the
parent's memory); under ``spawn`` the runner itself must be picklable.
Task payloads and results always cross process boundaries and must be
picklable under either method.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
from collections.abc import Callable, Iterator, Sequence
from typing import Any

from repro.exceptions import ConfigurationError, ParallelExecutionError
from repro.obs.metrics import MetricsRegistry
from repro.obs.timing import perf_counter
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.parallel.tasks import TaskResult, TaskSpec
from repro.parallel.worker import worker_main
from repro.resilience.policy import RetryPolicy
from repro.resilience.watchdog import (
    REASON_TASK_DEADLINE,
    WatchdogConfig,
    WorkerWatchdog,
)

__all__ = ["ParallelExecutor", "default_worker_count", "resolve_chunk_size"]

#: Seconds the coordinator blocks on the result queue before checking
#: worker liveness (small enough to notice crashes promptly, large
#: enough to keep the idle poll loop cold).
_POLL_INTERVAL_S = 0.05

#: Seconds a worker gets to exit after receiving its shutdown sentinel
#: before the coordinator terminates it.
_SHUTDOWN_GRACE_S = 2.0


def default_worker_count() -> int:
    """The host's CPU count (at least 1)."""
    return max(1, os.cpu_count() or 1)


def resolve_chunk_size(num_tasks: int, workers: int,
                       chunk_size: int | None) -> int:
    """The chunk size to use for a batch.

    An explicit ``chunk_size`` wins; otherwise tasks are split so every
    worker sees about four chunks — big enough to amortise queue
    round-trips, small enough that the tail of the sweep still balances
    across workers and a crash loses little progress.
    """
    if chunk_size is not None:
        if chunk_size <= 0:
            raise ConfigurationError(
                f"chunk_size must be positive, got {chunk_size}"
            )
        return int(chunk_size)
    return max(1, num_tasks // (workers * 4))


class ParallelExecutor:
    """Run picklable tasks across worker processes, crash-tolerantly.

    Parameters
    ----------
    runner:
        ``runner(payload, context) -> value`` executed inside workers;
        ``context`` is a :class:`~repro.parallel.worker.WorkerContext`
        carrying the worker-local tracer and metrics registry.  Under
        the default ``fork`` start method the runner may close over
        arbitrary state (inherited at fork time, never pickled).
    workers:
        Worker process count; ``None`` uses the host CPU count.
    chunk_size:
        Tasks per scheduling chunk; ``None`` picks ~4 chunks per worker.
    max_task_retries:
        How many times one task may be re-queued after worker crashes
        before the run fails (runner exceptions never retry).  The
        legacy spelling of ``retry_policy=RetryPolicy.of(n)``; ignored
        when ``retry_policy`` is given.
    retry_policy:
        Full :class:`~repro.resilience.RetryPolicy` governing crash
        re-queues: attempt budget plus (deterministic) backoff between
        re-queues.  ``None`` derives one from ``max_task_retries``.
    watchdog:
        :class:`~repro.resilience.WatchdogConfig` arming stall
        detection: workers running one task longer than its per-task
        deadline, or falling heartbeat-silent, are killed and replaced
        under the retry policy (``watchdog_kill`` /
        ``task_deadline_exceeded`` trace events).  ``None`` (default)
        disables the watchdog and the worker-side heartbeat thread
        entirely.
    start_method:
        ``multiprocessing`` start method; ``None`` prefers ``fork``
        when available (falling back to the platform default).
    tracer:
        Coordinator-side tracer receiving ``worker_*`` lifecycle events
        and the replayed worker events (tagged ``worker=<id>``).
    metrics:
        Coordinator-side registry; worker snapshots are merged into it
        and the executor's own ``parallel.*`` counters/timers land
        there too.
    capture_events:
        Capture worker-local trace events for replay.  Defaults to
        ``tracer is not None``.
    ring_capacity:
        Worker-side event buffer size (oldest events drop beyond it).
    """

    def __init__(self, runner: Callable[[Any, Any], Any], *,
                 workers: int | None = None,
                 chunk_size: int | None = None,
                 max_task_retries: int = 2,
                 retry_policy: RetryPolicy | None = None,
                 watchdog: WatchdogConfig | None = None,
                 start_method: str | None = None,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 capture_events: bool | None = None,
                 ring_capacity: int = 100_000) -> None:
        if workers is None:
            workers = default_worker_count()
        if workers <= 0:
            raise ConfigurationError(
                f"workers must be positive, got {workers}"
            )
        if max_task_retries < 0:
            raise ConfigurationError(
                f"max_task_retries must be >= 0, got {max_task_retries}"
            )
        if chunk_size is not None and chunk_size <= 0:
            raise ConfigurationError(
                f"chunk_size must be positive, got {chunk_size}"
            )
        if ring_capacity <= 0:
            raise ConfigurationError(
                f"ring_capacity must be positive, got {ring_capacity}"
            )
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else None
        self._context = multiprocessing.get_context(start_method)
        self._runner = runner
        self._workers = int(workers)
        self._chunk_size = chunk_size
        self._retry_policy = (retry_policy if retry_policy is not None
                              else RetryPolicy.of(int(max_task_retries)))
        self._watchdog_config = watchdog
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        if capture_events is None:
            capture_events = tracer is not None
        self._capture_events = bool(capture_events)
        self._ring_capacity = int(ring_capacity)

    @property
    def workers(self) -> int:
        """Configured worker process count."""
        return self._workers

    # -- public API ----------------------------------------------------------------

    def map(self, payloads: Sequence[Any]) -> list[TaskResult]:
        """Run every payload; results in submission order.

        Raises
        ------
        ParallelExecutionError
            If a runner raised, or a task exceeded its crash-retry
            budget.
        """
        results = list(self.as_completed(payloads))
        results.sort(key=lambda result: result.task_id)
        return results

    def as_completed(self, payloads: Sequence[Any]) -> Iterator[TaskResult]:
        """Run every payload; yield results as workers finish them.

        ``TaskResult.task_id`` is the payload's submission index, so
        callers can re-associate out-of-order completions.
        """
        specs = [TaskSpec(task_id=index, payload=payload)
                 for index, payload in enumerate(payloads)]
        if not specs:
            return
        yield from self._execute(specs)

    # -- coordinator ---------------------------------------------------------------

    def _spawn_worker(self, worker_id: int, task_queue, result_queue,
                      watchdog: WorkerWatchdog | None = None):
        """Start one worker process and trace its birth."""
        config = self._watchdog_config
        heartbeat_interval_s = (
            config.heartbeat_interval_s
            if config is not None and config.heartbeat_timeout_s is not None
            else None
        )
        process = self._context.Process(
            target=worker_main,
            args=(worker_id, self._runner, task_queue, result_queue,
                  self._capture_events, self._ring_capacity,
                  heartbeat_interval_s),
            name=f"repro-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        if watchdog is not None:
            watchdog.worker_started(worker_id, perf_counter())
        self._metrics.counter("parallel.workers_started").inc()
        if self._tracer.enabled:
            self._tracer.emit("worker_started", worker=worker_id,
                              pid=process.pid)
        return process

    def _execute(self, specs: list[TaskSpec]) -> Iterator[TaskResult]:
        num_workers = min(self._workers, len(specs))
        chunk = resolve_chunk_size(len(specs), num_workers,
                                   self._chunk_size)
        task_queue = self._context.Queue()
        result_queue = self._context.Queue()
        for start in range(0, len(specs), chunk):
            task_queue.put(specs[start:start + chunk])

        spec_of = {spec.task_id: spec for spec in specs}
        pending = set(spec_of)
        attempts: dict[int, int] = {task_id: 0 for task_id in pending}
        assigned: dict[int, set[int]] = {}
        processes: dict[int, Any] = {}
        watchdog = (WorkerWatchdog(self._watchdog_config)
                    if self._watchdog_config is not None
                    and self._watchdog_config.enabled else None)
        next_worker_id = 0
        try:
            for _ in range(num_workers):
                processes[next_worker_id] = self._spawn_worker(
                    next_worker_id, task_queue, result_queue, watchdog
                )
                next_worker_id += 1

            while pending:
                try:
                    message = result_queue.get(timeout=_POLL_INTERVAL_S)
                except queue_module.Empty:
                    if watchdog is not None:
                        self._kill_stalled(watchdog, processes)
                    next_worker_id = self._reap_crashed(
                        processes, assigned, attempts, pending, spec_of,
                        task_queue, result_queue, next_worker_id, watchdog,
                    )
                    continue
                kind = message[0]
                if kind == "heartbeat":
                    __, worker_id = message
                    if watchdog is not None:
                        watchdog.heartbeat(worker_id, perf_counter())
                elif kind == "chunk_start":
                    __, worker_id, task_ids = message
                    assigned.setdefault(worker_id, set()).update(
                        task_id for task_id in task_ids
                        if task_id in pending
                    )
                elif kind == "task_start":
                    __, worker_id, task_id = message
                    if task_id in pending:
                        attempts[task_id] += 1
                    if watchdog is not None:
                        watchdog.task_started(worker_id, task_id,
                                              perf_counter())
                elif kind == "task_error":
                    __, worker_id, task_id, error_repr, trace_text = message
                    raise ParallelExecutionError(
                        f"task {task_id} raised in worker {worker_id}: "
                        f"{error_repr}\n{trace_text}"
                    )
                elif kind == "task_done":
                    (__, worker_id, task_id, value, duration,
                     snapshot, events) = message
                    assigned.get(worker_id, set()).discard(task_id)
                    if watchdog is not None:
                        watchdog.task_finished(worker_id)
                    if task_id not in pending:
                        continue  # duplicate from a crash re-queue race
                    pending.discard(task_id)
                    yield self._complete(task_id, value, worker_id,
                                         duration, attempts[task_id],
                                         snapshot, events)
        finally:
            self._shutdown(processes, task_queue, result_queue)

    def _kill_stalled(self, watchdog: WorkerWatchdog, processes) -> None:
        """Kill workers the watchdog diagnosed as stalled.

        SIGKILL, not SIGTERM: a genuinely wedged process (deadlocked
        native code, SIGSTOP) may not honour anything milder, and the
        point of the watchdog is that recovery cannot depend on the
        patient's cooperation.  The kill makes the process reap-able;
        :meth:`_reap_crashed` then re-queues its tasks under the retry
        policy exactly as for an organic crash.
        """
        for verdict in watchdog.poll(perf_counter()):
            process = processes.get(verdict.worker_id)
            if process is None or not process.is_alive():
                continue
            process.kill()
            self._metrics.counter("parallel.watchdog_kills").inc()
            if self._tracer.enabled:
                self._tracer.emit("watchdog_kill",
                                  worker=verdict.worker_id,
                                  reason=verdict.reason,
                                  task=verdict.task_id,
                                  elapsed_s=verdict.elapsed_s,
                                  limit_s=verdict.limit_s)
                if verdict.reason == REASON_TASK_DEADLINE:
                    self._tracer.emit("task_deadline_exceeded",
                                      worker=verdict.worker_id,
                                      task=verdict.task_id,
                                      elapsed_s=verdict.elapsed_s,
                                      limit_s=verdict.limit_s)

    def _complete(self, task_id: int, value, worker_id: int,
                  duration: float, attempt_count: int, snapshot,
                  events) -> TaskResult:
        """Merge one finished task's telemetry and build its result."""
        metrics = self._metrics
        metrics.counter("parallel.tasks_completed").inc()
        metrics.timer("parallel.task").observe(duration)
        if snapshot is not None:
            metrics.merge(snapshot)
        tracer = self._tracer
        if tracer.enabled:
            for event in events:
                payload = dict(event.payload)
                payload.setdefault("worker", worker_id)
                tracer.emit(event.kind, event.round_index, **payload)
            tracer.emit("worker_task_done", worker=worker_id,
                        task=task_id, duration_s=duration,
                        attempts=attempt_count)
        return TaskResult(
            task_id=task_id, value=value, worker_id=worker_id,
            duration_s=duration, attempts=max(1, attempt_count),
            metrics_snapshot=snapshot,
            events=tuple(events),
        )

    def _reap_crashed(self, processes, assigned, attempts, pending,
                      spec_of, task_queue, result_queue,
                      next_worker_id: int,
                      watchdog: WorkerWatchdog | None = None) -> int:
        """Re-queue the tasks of dead workers onto fresh replacements.

        Re-queues are governed by the retry policy: a task that has
        already started ``max_attempts`` times fails the run, and each
        re-queue emits a ``retry_attempt`` event and waits the policy's
        (deterministic) backoff delay.
        """
        policy = self._retry_policy
        for worker_id, process in list(processes.items()):
            if process.is_alive():
                continue
            # Dead before shutdown: a crash, whatever the exitcode says.
            del processes[worker_id]
            if watchdog is not None:
                watchdog.worker_gone(worker_id)
            lost = sorted(
                task_id for task_id in assigned.pop(worker_id, set())
                if task_id in pending
            )
            self._metrics.counter("parallel.worker_crashes").inc()
            if self._tracer.enabled:
                self._tracer.emit("worker_crashed", worker=worker_id,
                                  exitcode=process.exitcode,
                                  lost_tasks=list(lost))
            for task_id in lost:
                if attempts[task_id] >= policy.max_attempts:
                    raise ParallelExecutionError(
                        f"task {task_id} was lost to {attempts[task_id]} "
                        f"worker crashes (retry policy allows "
                        f"{policy.max_attempts} attempts)"
                    )
                self._metrics.counter("parallel.tasks_requeued").inc()
                if self._tracer.enabled:
                    self._tracer.emit("retry_attempt",
                                      op=f"parallel.task-{task_id}",
                                      attempt=attempts[task_id],
                                      max_attempts=policy.max_attempts,
                                      error=f"worker {worker_id} died "
                                            f"(exitcode "
                                            f"{process.exitcode})")
                delay = policy.backoff.delay_s(max(1, attempts[task_id]),
                                               f"parallel.task-{task_id}")
                if delay > 0.0:
                    time.sleep(delay)
                task_queue.put([spec_of[task_id]])
            replacement = self._spawn_worker(next_worker_id, task_queue,
                                             result_queue, watchdog)
            processes[next_worker_id] = replacement
            next_worker_id += 1
        return next_worker_id

    @staticmethod
    def _shutdown(processes, task_queue, result_queue) -> None:
        """Stop workers and release the queues (idempotent, best-effort)."""
        for __ in processes:
            try:
                task_queue.put(None)
            except (OSError, ValueError):  # pragma: no cover - queue gone
                break
        for process in processes.values():
            process.join(timeout=_SHUTDOWN_GRACE_S)
        for process in processes.values():
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=_SHUTDOWN_GRACE_S)
        for q in (task_queue, result_queue):
            q.cancel_join_thread()
            q.close()
