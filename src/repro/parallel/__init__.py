"""Parallel execution runtime: deterministic multi-process sweeps.

The package provides a crash-tolerant process-pool
:class:`ParallelExecutor` speaking a tiny picklable
:class:`TaskSpec`/:class:`TaskResult` protocol, plus the
:func:`~repro.parallel.worker.worker_main` entrypoint each worker
process runs.  The rest of the stack builds on it:

* ``replicate_comparison(..., workers=N)`` shards replication seeds
  across workers (bit-identical to the serial path — every seed is a
  self-contained RNG universe), stays checkpoint/resume-aware, and
  survives worker crashes by re-queuing the lost seed;
* ``repro run --workers N`` fans independent experiments out the same
  way;
* worker-local :class:`~repro.obs.MetricsRegistry` snapshots and trace
  events are merged back into the coordinator's observability objects,
  so ``repro trace summarize`` shows per-worker phase timing.
"""

from repro.parallel.executor import (
    ParallelExecutor,
    default_worker_count,
    resolve_chunk_size,
)
from repro.parallel.tasks import TaskResult, TaskSpec
from repro.parallel.worker import (
    CRASH_EXIT_CODE,
    CRASH_MARKER_ENV,
    CRASH_TASK_ENV,
    WorkerContext,
    worker_main,
)

__all__ = [
    "ParallelExecutor",
    "default_worker_count",
    "resolve_chunk_size",
    "TaskSpec",
    "TaskResult",
    "WorkerContext",
    "worker_main",
    "CRASH_TASK_ENV",
    "CRASH_MARKER_ENV",
    "CRASH_EXIT_CODE",
]
