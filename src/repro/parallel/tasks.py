"""Picklable work units shipped between the coordinator and workers.

The parallel runtime's wire protocol is deliberately tiny: a
:class:`TaskSpec` travels coordinator -> worker (a task id plus an
arbitrary picklable payload the runner understands), and a
:class:`TaskResult` travels back (the runner's return value plus the
worker-side telemetry the coordinator merges into its own
:class:`~repro.obs.MetricsRegistry` / :class:`~repro.obs.Tracer`).

Everything here must stay picklable — specs and results cross process
boundaries through :class:`multiprocessing.Queue`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["TaskSpec", "TaskResult"]


@dataclass(frozen=True)
class TaskSpec:
    """One unit of work the coordinator ships to a worker.

    Attributes
    ----------
    task_id:
        Position of the task in the submitted batch (0-based); results
        are re-ordered by this id, so callers see submission order no
        matter which worker finished first.
    payload:
        Whatever the executor's runner consumes — a seed, an experiment
        id, a config dict.  Must be picklable.
    """

    task_id: int
    payload: Any


@dataclass
class TaskResult:
    """One completed task, with its worker-side telemetry.

    Attributes
    ----------
    task_id:
        The finished :class:`TaskSpec`'s id.
    value:
        The runner's return value.
    worker_id:
        Which worker ran the (final, successful) attempt.
    duration_s:
        Wall-clock seconds the successful attempt took inside the
        worker (task body only — queue time excluded).
    attempts:
        How many times the task was dispatched; greater than 1 means
        earlier attempts were lost to worker crashes and the task was
        re-queued.
    metrics_snapshot:
        The worker-local :class:`~repro.obs.MetricsRegistry` snapshot
        of the successful attempt, or ``None`` when the executor ran
        without telemetry capture.
    events:
        Worker-local :class:`~repro.obs.TraceEvent`\\ s of the
        successful attempt, oldest first (empty without capture).
    """

    task_id: int
    value: Any
    worker_id: int
    duration_s: float
    attempts: int = 1
    metrics_snapshot: dict | None = None
    events: tuple = field(default_factory=tuple)
