"""General combinatorial UCB: pluggable selection oracles.

The paper's CMAB-HS instantiates the classic CUCB pattern (Chen et al.,
the paper's [33]) with the *top-K* action space.  This module factors
that pattern out: an :class:`Oracle` maps a weight vector (the UCB
indices) to a feasible seller subset, and :class:`OraclePolicy` plugs any
oracle into the standard
:class:`~repro.bandits.base.SelectionPolicy` API, so the trading engine
can run CUCB over richer action spaces without modification:

* :class:`TopKOracle` — the paper's action space (``OraclePolicy`` with
  it reproduces :class:`~repro.bandits.policies.UCBPolicy` exactly);
* :class:`WeightedCoverageOracle` — secure PoI coverage first (greedy
  weighted set cover), then fill by weight;
* :class:`GreedyKnapsackOracle` — per-round recruitment budget over
  heterogeneous seller costs (greedy by weight/cost density, the classic
  1/2-approximation oracle for the budgeted CMAB variants the paper
  cites as [33]/[34]).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.bandits.base import SelectionPolicy
from repro.core.selection import top_k_indices
from repro.core.state import LearningState
from repro.exceptions import ConfigurationError, SelectionError

__all__ = [
    "Oracle",
    "TopKOracle",
    "WeightedCoverageOracle",
    "GreedyKnapsackOracle",
    "OraclePolicy",
]


class Oracle(abc.ABC):
    """Maps a weight vector to a feasible subset of sellers.

    Weights are UCB indices during a CUCB run, but any non-negative
    score vector works (true means for an omniscient reference, sample
    means for a greedy one).
    """

    @abc.abstractmethod
    def select(self, weights: np.ndarray, k: int) -> np.ndarray:
        """Return the chosen seller indices for the given weights.

        ``k`` is the nominal selection size; oracles with their own
        feasibility structure (budgets) may return fewer sellers but
        never more than ``k``.  The result is canonical: an ascending
        ``np.int64`` array (so selections index, compare, and serialize
        identically across oracles and backends).
        """

    def _validated(self, weights: np.ndarray, k: int) -> np.ndarray:
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 1 or weights.size == 0:
            raise SelectionError("weights must be a non-empty 1-D array")
        if not (1 <= k <= weights.size):
            raise SelectionError(
                f"k must be in [1, {weights.size}], got {k}"
            )
        return weights


class TopKOracle(Oracle):
    """The paper's action space: the ``k`` largest weights."""

    def select(self, weights: np.ndarray, k: int) -> np.ndarray:
        weights = self._validated(weights, k)
        return top_k_indices(weights, k)


class WeightedCoverageOracle(Oracle):
    """Greedy weighted set cover, then fill remaining slots by weight.

    Parameters
    ----------
    coverage_matrix:
        Boolean ``(M, L)`` matrix: which seller reaches which PoI.
    """

    def __init__(self, coverage_matrix: np.ndarray) -> None:
        matrix = np.asarray(coverage_matrix, dtype=bool)
        if matrix.ndim != 2 or matrix.size == 0:
            raise ConfigurationError(
                "coverage_matrix must be a non-empty 2-D boolean array"
            )
        self._matrix = matrix

    def select(self, weights: np.ndarray, k: int) -> np.ndarray:
        weights = self._validated(weights, k)
        if weights.size != self._matrix.shape[0]:
            raise SelectionError(
                "weights length does not match the coverage matrix"
            )
        finite = np.where(np.isfinite(weights), weights, np.nan)
        fallback = np.nanmax(finite) if np.isfinite(finite).any() else 1.0
        safe = np.where(np.isfinite(weights), weights, fallback + 1.0)
        chosen: list[int] = []
        available = np.ones(weights.size, dtype=bool)
        uncovered = np.ones(self._matrix.shape[1], dtype=bool)
        while len(chosen) < k and uncovered.any():
            gains = self._matrix[:, uncovered].sum(axis=1) * np.maximum(
                safe, 1e-12
            )
            gains[~available] = -np.inf
            if gains.max() <= 0.0:
                break
            best = int(np.argmax(gains))
            chosen.append(best)
            available[best] = False
            uncovered &= ~self._matrix[best]
        remaining = k - len(chosen)
        if remaining > 0:
            candidates = np.nonzero(available)[0]
            fill = candidates[top_k_indices(weights[candidates], remaining)]
            chosen.extend(fill.tolist())
        return np.sort(np.array(chosen, dtype=np.int64))


class GreedyKnapsackOracle(Oracle):
    """Budgeted selection: greedy by weight/cost density.

    Each seller carries a recruitment cost; a round may only select
    sellers whose total cost fits the budget (and at most ``k`` of
    them).  Greedy-by-density is the standard approximation oracle for
    budgeted combinatorial bandits.

    Parameters
    ----------
    costs:
        Per-seller recruitment costs (> 0), shape ``(M,)``.
    budget:
        Per-round recruitment budget (> 0).
    """

    def __init__(self, costs: np.ndarray, budget: float) -> None:
        costs = np.asarray(costs, dtype=float)
        if costs.ndim != 1 or costs.size == 0:
            raise ConfigurationError(
                "costs must be a non-empty 1-D array"
            )
        if np.any(costs <= 0.0):
            raise ConfigurationError("all recruitment costs must be > 0")
        if not (budget > 0.0):
            raise ConfigurationError(f"budget must be > 0, got {budget}")
        self._costs = costs
        self._budget = float(budget)

    @property
    def budget(self) -> float:
        """The per-round recruitment budget."""
        return self._budget

    def select(self, weights: np.ndarray, k: int) -> np.ndarray:
        weights = self._validated(weights, k)
        if weights.size != self._costs.size:
            raise SelectionError(
                "weights length does not match the cost vector"
            )
        finite = weights[np.isfinite(weights)]
        ceiling = float(finite.max()) + 1.0 if finite.size else 1.0
        safe = np.where(np.isfinite(weights), weights, ceiling)
        density = safe / self._costs
        order = np.argsort(-density, kind="stable")
        chosen: list[int] = []
        spent = 0.0
        for seller in order:
            if len(chosen) >= k:
                break
            cost = float(self._costs[seller])
            if spent + cost <= self._budget:
                chosen.append(int(seller))
                spent += cost
        if not chosen:
            # Always recruit someone: the single cheapest seller.
            chosen = [int(np.argmin(self._costs))]
        return np.sort(np.array(chosen, dtype=np.int64))


class OraclePolicy(SelectionPolicy):
    """CUCB with a pluggable oracle.

    Round 0 selects all sellers (the CMAB-HS initial exploration);
    afterwards the oracle is applied to the UCB index vector.  With
    :class:`TopKOracle` this is exactly
    :class:`~repro.bandits.policies.UCBPolicy`.

    Parameters
    ----------
    oracle:
        The action-space oracle.
    name:
        Display name; defaults to ``cucb:<oracle class name>``.
    exploration_coefficient:
        Confidence constant (``None`` = the paper's ``K+1``).
    initial_full_exploration:
        Whether round 0 selects everyone.
    """

    def __init__(self, oracle: Oracle, name: str | None = None,
                 exploration_coefficient: float | None = None,
                 initial_full_exploration: bool = True) -> None:
        super().__init__()
        if exploration_coefficient is not None and exploration_coefficient <= 0:
            raise ConfigurationError(
                "exploration_coefficient must be positive"
            )
        self._oracle = oracle
        self._coefficient_override = exploration_coefficient
        self._initial_full_exploration = bool(initial_full_exploration)
        self.name = (
            name if name is not None
            else f"cucb:{type(oracle).__name__}"
        )

    def select(self, round_index: int, state: LearningState,
               rng: np.random.Generator) -> np.ndarray:
        self._require_reset()
        if round_index == 0 and self._initial_full_exploration:
            return np.arange(self._num_sellers)
        coefficient = (
            float(self._coefficient_override)
            if self._coefficient_override is not None
            else float(self._k + 1)
        )
        return self._oracle.select(state.ucb_values(coefficient), self._k)
