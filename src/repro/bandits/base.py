"""Selection-policy abstraction for the K-armed CMAB game.

A :class:`SelectionPolicy` decides, each round, which sellers (arms) to
select.  All policies read the shared
:class:`~repro.core.state.LearningState` that the platform maintains
(Eqs. 17-18); policies needing private memory (sliding windows, Thompson
posteriors) additionally receive every observation via :meth:`observe`.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.state import LearningState
from repro.exceptions import ConfigurationError

__all__ = ["SelectionPolicy"]


class SelectionPolicy(abc.ABC):
    """Decides which ``K`` sellers to select each round.

    Lifecycle: the engine calls :meth:`reset` once before a run, then
    alternates :meth:`select` / :meth:`observe` every round.  Policies
    must be reusable — :meth:`reset` must fully clear private state.
    """

    #: Short display name used in experiment tables ("CMAB-HS", "random", ...).
    name: str = "policy"

    def __init__(self) -> None:
        self._num_sellers = 0
        self._k = 0
        self._num_rounds = 0

    @property
    def k(self) -> int:
        """Number of sellers selected per (post-exploration) round."""
        return self._k

    @property
    def num_sellers(self) -> int:
        """Population size ``M`` this policy was reset for."""
        return self._num_sellers

    def reset(self, num_sellers: int, k: int, num_rounds: int) -> None:
        """Prepare for a fresh run of ``num_rounds`` rounds.

        Subclasses overriding this must call ``super().reset(...)``.
        """
        if not (1 <= k <= num_sellers):
            raise ConfigurationError(
                f"k must be in [1, {num_sellers}], got {k}"
            )
        if num_rounds <= 0:
            raise ConfigurationError(
                f"num_rounds must be positive, got {num_rounds}"
            )
        self._num_sellers = int(num_sellers)
        self._k = int(k)
        self._num_rounds = int(num_rounds)

    @abc.abstractmethod
    def select(self, round_index: int, state: LearningState,
               rng: np.random.Generator) -> np.ndarray:
        """Return the indices of the sellers to select this round.

        Normally exactly ``k`` indices; a policy may return more in a
        dedicated exploration round (CMAB-HS selects *all* sellers in
        round 0, Algorithm 1 steps 2-4).
        """

    def observe(self, round_index: int, seller_indices: np.ndarray,
                observation_sums: np.ndarray, num_observations: int) -> None:
        """Receive the round's observations (no-op by default).

        The shared :class:`LearningState` is updated by the engine; only
        policies with *private* statistics (windowed means, posteriors)
        need to override this.
        """

    # -- checkpointing ---------------------------------------------------------

    def state_snapshot(self) -> dict[str, np.ndarray]:
        """Arrays capturing the policy's *private* state, for checkpoints.

        Policies whose decisions depend only on the shared
        :class:`LearningState` (plus the round index) keep no private
        state and inherit this empty default.  Stateful policies
        (posterior parameters, sliding windows) must override both this
        and :meth:`state_restore`, or checkpoint/resume silently
        diverges from an uninterrupted run.
        """
        return {}

    def state_restore(self, snapshot: dict[str, np.ndarray]) -> None:
        """Restore private state captured by :meth:`state_snapshot`.

        Called after :meth:`reset` when a run resumes from a
        checkpoint.  The default accepts only the empty snapshot the
        default :meth:`state_snapshot` produces.
        """
        if snapshot:
            raise ConfigurationError(
                f"policy {self.name!r} cannot restore a non-empty snapshot; "
                "override state_snapshot/state_restore for stateful policies"
            )

    def _require_reset(self) -> None:
        if self._num_sellers == 0:
            raise ConfigurationError(
                f"policy {self.name!r} used before reset()"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"{type(self).__name__}(name={self.name!r})"
