"""Concrete seller-selection policies.

The paper's mechanism and its three comparison baselines (Section V-A):

* :class:`UCBPolicy` — the CMAB-HS bandit policy (Algorithm 1): explore
  all sellers once, then greedily take the top-``K`` UCB indices.
* :class:`OptimalPolicy` — omniscient; always the truly best ``K``.
* :class:`EpsilonFirstPolicy` — random for the first ``eps*N`` rounds,
  then greedy on sample means.
* :class:`RandomPolicy` — uniformly random ``K`` every round.

Extensions beyond the paper (used in ablation experiments):

* :class:`EpsilonGreedyPolicy` — classic per-round explore/exploit mix.
* :class:`ThompsonSamplingPolicy` — Beta-posterior sampling (observations
  in ``[0, 1]`` are treated as fractional Bernoulli successes).
* :class:`SlidingWindowUCBPolicy` — UCB over a trailing window, for the
  non-stationary qualities of the Definition-3 remark.
"""

from __future__ import annotations

import collections

import numpy as np

from repro.bandits.base import SelectionPolicy
from repro.core.selection import top_k_indices
from repro.core.state import LearningState
from repro.exceptions import ConfigurationError
from repro.kernels.selection import top_k_partition

__all__ = [
    "UCBPolicy",
    "OptimalPolicy",
    "EpsilonFirstPolicy",
    "RandomPolicy",
    "EpsilonGreedyPolicy",
    "ThompsonSamplingPolicy",
    "SlidingWindowUCBPolicy",
]


class UCBPolicy(SelectionPolicy):
    """The CMAB-HS selection policy (Algorithm 1).

    Round 0 selects *all* sellers (initial exploration, steps 2-4); every
    later round selects the ``K`` largest UCB indices (Eq. 19).

    Parameters
    ----------
    exploration_coefficient:
        The constant inside the confidence radius.  ``None`` (default)
        uses the paper's ``K+1``; ablations may pass any positive value.
    initial_full_exploration:
        Whether round 0 selects every seller.  Disabling it is an
        ablation — the UCB indices then force exploration one batch of
        ``K`` at a time.
    """

    name = "CMAB-HS"

    def __init__(self, exploration_coefficient: float | None = None,
                 initial_full_exploration: bool = True) -> None:
        super().__init__()
        if exploration_coefficient is not None and exploration_coefficient <= 0:
            raise ConfigurationError(
                "exploration_coefficient must be positive, got "
                f"{exploration_coefficient}"
            )
        self._coefficient_override = exploration_coefficient
        self._initial_full_exploration = bool(initial_full_exploration)
        #: The full Eq.-19 index vector of the most recent selection
        #: (``None`` before the first UCB-driven round); read by the
        #: engine's selection trace events.
        self.last_ucb_values: np.ndarray | None = None

    @property
    def exploration_coefficient(self) -> float:
        """The effective coefficient (``K+1`` unless overridden)."""
        self._require_reset()
        if self._coefficient_override is not None:
            return float(self._coefficient_override)
        return float(self._k + 1)

    def select(self, round_index: int, state: LearningState,
               rng: np.random.Generator) -> np.ndarray:
        self._require_reset()
        if round_index == 0 and self._initial_full_exploration:
            self.last_ucb_values = None
            return np.arange(self._num_sellers)
        ucb = state.ucb_values(self.exploration_coefficient)
        # Stash the indices for observability (the engine's selection
        # trace events read them back instead of recomputing Eq. 19).
        self.last_ucb_values = ucb
        if getattr(state, "vectorized", False):
            # O(M) partition instead of the O(M log M) stable argsort —
            # bit-identical selections (see repro.kernels.selection).
            return top_k_partition(ucb, self._k)
        return top_k_indices(ucb, self._k)


class OptimalPolicy(SelectionPolicy):
    """Omniscient baseline: always selects the truly best ``K`` sellers.

    Parameters
    ----------
    expected_qualities:
        The ground-truth expected qualities ``q_i`` (hidden from every
        other policy).
    """

    name = "optimal"

    def __init__(self, expected_qualities: np.ndarray) -> None:
        super().__init__()
        qualities = np.asarray(expected_qualities, dtype=float)
        if qualities.ndim != 1 or qualities.size == 0:
            raise ConfigurationError(
                "expected_qualities must be a non-empty 1-D array"
            )
        self._qualities = qualities
        self._cached: np.ndarray | None = None

    def reset(self, num_sellers: int, k: int, num_rounds: int) -> None:
        super().reset(num_sellers, k, num_rounds)
        if num_sellers != self._qualities.size:
            raise ConfigurationError(
                f"policy knows {self._qualities.size} qualities but the run "
                f"has {num_sellers} sellers"
            )
        self._cached = top_k_indices(self._qualities, k)

    def select(self, round_index: int, state: LearningState,
               rng: np.random.Generator) -> np.ndarray:
        self._require_reset()
        assert self._cached is not None
        return self._cached


class EpsilonFirstPolicy(SelectionPolicy):
    """Pure exploration for ``eps*N`` rounds, then greedy on sample means.

    During exploration it selects ``K`` sellers uniformly at random; from
    round ``ceil(eps*N)`` on it selects the top-``K`` *sample means* (no
    confidence bonus — that is what distinguishes it from CMAB-HS).

    Parameters
    ----------
    epsilon:
        Fraction of rounds spent purely exploring; paper sweeps 0.1-0.5.
    """

    def __init__(self, epsilon: float) -> None:
        super().__init__()
        if not (0.0 < epsilon < 1.0):
            raise ConfigurationError(
                f"epsilon must be in (0, 1), got {epsilon}"
            )
        self._epsilon = float(epsilon)
        self.name = f"{epsilon:g}-first"

    @property
    def epsilon(self) -> float:
        """The exploration fraction."""
        return self._epsilon

    @property
    def exploration_rounds(self) -> int:
        """Number of initial pure-exploration rounds (at least 1)."""
        self._require_reset()
        return max(int(np.ceil(self._epsilon * self._num_rounds)), 1)

    def select(self, round_index: int, state: LearningState,
               rng: np.random.Generator) -> np.ndarray:
        self._require_reset()
        if round_index < self.exploration_rounds:
            return np.sort(
                rng.choice(self._num_sellers, size=self._k, replace=False)
            )
        return top_k_indices(state.means, self._k)


class RandomPolicy(SelectionPolicy):
    """Uniformly random ``K`` sellers every round (quality-blind)."""

    name = "random"

    def select(self, round_index: int, state: LearningState,
               rng: np.random.Generator) -> np.ndarray:
        self._require_reset()
        return np.sort(
            rng.choice(self._num_sellers, size=self._k, replace=False)
        )


class EpsilonGreedyPolicy(SelectionPolicy):
    """Classic epsilon-greedy extension.

    Each round, with probability ``epsilon`` select randomly, otherwise
    select the top-``K`` sample means.  Sellers never observed rank as
    mean ``prior_mean`` (0 by default), so an initial full-exploration
    round is emulated by selecting randomly until every seller has been
    seen at least once is *not* required — the random rounds cover it.
    """

    def __init__(self, epsilon: float = 0.1) -> None:
        super().__init__()
        if not (0.0 <= epsilon <= 1.0):
            raise ConfigurationError(
                f"epsilon must be in [0, 1], got {epsilon}"
            )
        self._epsilon = float(epsilon)
        self.name = f"{epsilon:g}-greedy"

    @property
    def epsilon(self) -> float:
        """The per-round exploration probability."""
        return self._epsilon

    def select(self, round_index: int, state: LearningState,
               rng: np.random.Generator) -> np.ndarray:
        self._require_reset()
        if rng.random() < self._epsilon:
            return np.sort(
                rng.choice(self._num_sellers, size=self._k, replace=False)
            )
        return top_k_indices(state.means, self._k)


class ThompsonSamplingPolicy(SelectionPolicy):
    """Beta-posterior Thompson sampling over ``[0, 1]`` rewards.

    Each observation sum ``s`` over ``n`` draws is folded into a Beta
    posterior as ``alpha += s``, ``beta += n - s`` (fractional Bernoulli
    trick — valid for ``[0, 1]``-supported rewards).  Each round a sample
    is drawn from every posterior and the top-``K`` samples are selected.
    """

    name = "thompson"

    def __init__(self, prior_alpha: float = 1.0, prior_beta: float = 1.0) -> None:
        super().__init__()
        if prior_alpha <= 0.0 or prior_beta <= 0.0:
            raise ConfigurationError("Beta prior parameters must be positive")
        self._prior_alpha = float(prior_alpha)
        self._prior_beta = float(prior_beta)
        self._alpha = np.empty(0)
        self._beta = np.empty(0)

    def reset(self, num_sellers: int, k: int, num_rounds: int) -> None:
        super().reset(num_sellers, k, num_rounds)
        self._alpha = np.full(num_sellers, self._prior_alpha)
        self._beta = np.full(num_sellers, self._prior_beta)

    def observe(self, round_index: int, seller_indices: np.ndarray,
                observation_sums: np.ndarray, num_observations: int) -> None:
        sellers = np.asarray(seller_indices, dtype=int)
        sums = np.asarray(observation_sums, dtype=float)
        self._alpha[sellers] += sums
        self._beta[sellers] += num_observations - sums

    def select(self, round_index: int, state: LearningState,
               rng: np.random.Generator) -> np.ndarray:
        self._require_reset()
        samples = rng.beta(self._alpha, self._beta)
        return top_k_indices(samples, self._k)

    def state_snapshot(self) -> dict[str, np.ndarray]:
        """The Beta posterior parameters."""
        return {"alpha": self._alpha.copy(), "beta": self._beta.copy()}

    def state_restore(self, snapshot: dict[str, np.ndarray]) -> None:
        """Restore the Beta posterior parameters."""
        try:
            alpha = np.asarray(snapshot["alpha"], dtype=float)
            beta = np.asarray(snapshot["beta"], dtype=float)
        except KeyError as error:
            raise ConfigurationError(
                f"thompson snapshot is missing field {error.args[0]!r}"
            ) from error
        if alpha.shape != (self._num_sellers,) or beta.shape != (self._num_sellers,):
            raise ConfigurationError(
                "thompson snapshot shape does not match this run"
            )
        self._alpha = alpha.copy()
        self._beta = beta.copy()


class SlidingWindowUCBPolicy(SelectionPolicy):
    """UCB computed over a trailing window of rounds.

    For the non-stationary variant of the problem (Definition-3 remark):
    old observations are discarded after ``window`` rounds, so the index
    tracks drifting qualities.  Round 0 selects all sellers, like
    :class:`UCBPolicy`.

    Parameters
    ----------
    window:
        Number of most recent rounds whose observations count.
    exploration_coefficient:
        Confidence-radius constant; ``None`` means ``K+1``.
    """

    name = "sw-ucb"

    def __init__(self, window: int,
                 exploration_coefficient: float | None = None) -> None:
        super().__init__()
        if window <= 0:
            raise ConfigurationError(f"window must be positive, got {window}")
        if exploration_coefficient is not None and exploration_coefficient <= 0:
            raise ConfigurationError("exploration_coefficient must be positive")
        self._window = int(window)
        self._coefficient_override = exploration_coefficient
        self._recent: collections.deque = collections.deque()
        self._win_counts = np.empty(0)
        self._win_sums = np.empty(0)

    @property
    def window(self) -> int:
        """The window length in rounds."""
        return self._window

    def reset(self, num_sellers: int, k: int, num_rounds: int) -> None:
        super().reset(num_sellers, k, num_rounds)
        self._recent.clear()
        self._win_counts = np.zeros(num_sellers)
        self._win_sums = np.zeros(num_sellers)

    def observe(self, round_index: int, seller_indices: np.ndarray,
                observation_sums: np.ndarray, num_observations: int) -> None:
        sellers = np.asarray(seller_indices, dtype=int).copy()
        sums = np.asarray(observation_sums, dtype=float).copy()
        self._recent.append((sellers, sums, int(num_observations)))
        self._win_counts[sellers] += num_observations
        self._win_sums[sellers] += sums
        while len(self._recent) > self._window:
            old_sellers, old_sums, old_n = self._recent.popleft()
            self._win_counts[old_sellers] -= old_n
            self._win_sums[old_sellers] -= old_sums

    def select(self, round_index: int, state: LearningState,
               rng: np.random.Generator) -> np.ndarray:
        self._require_reset()
        if round_index == 0:
            return np.arange(self._num_sellers)
        coefficient = (
            float(self._coefficient_override)
            if self._coefficient_override is not None
            else float(self._k + 1)
        )
        total = self._win_counts.sum()
        indices = np.full(self._num_sellers, np.inf)
        seen = self._win_counts > 0
        if total > 1:
            means = self._win_sums[seen] / self._win_counts[seen]
            bonus = np.sqrt(coefficient * np.log(total) / self._win_counts[seen])
            indices[seen] = means + bonus
        return top_k_indices(indices, self._k)

    def state_snapshot(self) -> dict[str, np.ndarray]:
        """The window aggregates plus the flattened per-round entries."""
        lengths = np.array([sellers.size for sellers, __, __ in self._recent],
                           dtype=np.int64)
        return {
            "window_counts": self._win_counts.copy(),
            "window_sums": self._win_sums.copy(),
            "entry_lengths": lengths,
            "entry_nobs": np.array(
                [n for __, __, n in self._recent], dtype=np.int64
            ),
            "entry_sellers": (
                np.concatenate([s for s, __, __ in self._recent])
                if self._recent else np.empty(0, dtype=np.int64)
            ),
            "entry_sums": (
                np.concatenate([v for __, v, __ in self._recent])
                if self._recent else np.empty(0)
            ),
        }

    def state_restore(self, snapshot: dict[str, np.ndarray]) -> None:
        """Rebuild the window deque and aggregates from a snapshot."""
        try:
            counts = np.asarray(snapshot["window_counts"], dtype=float)
            sums = np.asarray(snapshot["window_sums"], dtype=float)
            lengths = np.asarray(snapshot["entry_lengths"], dtype=np.int64)
            nobs = np.asarray(snapshot["entry_nobs"], dtype=np.int64)
            sellers = np.asarray(snapshot["entry_sellers"], dtype=np.int64)
            entry_sums = np.asarray(snapshot["entry_sums"], dtype=float)
        except KeyError as error:
            raise ConfigurationError(
                f"sw-ucb snapshot is missing field {error.args[0]!r}"
            ) from error
        if counts.shape != (self._num_sellers,) or sums.shape != counts.shape:
            raise ConfigurationError(
                "sw-ucb snapshot shape does not match this run"
            )
        if lengths.sum() != sellers.size or sellers.size != entry_sums.size:
            raise ConfigurationError("sw-ucb snapshot entries are misaligned")
        self._win_counts = counts.copy()
        self._win_sums = sums.copy()
        self._recent.clear()
        offset = 0
        for length, n in zip(lengths, nobs):
            self._recent.append((
                sellers[offset:offset + length].copy(),
                entry_sums[offset:offset + length].copy(),
                int(n),
            ))
            offset += int(length)
