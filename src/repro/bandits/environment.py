"""A standalone CMAB environment for selection-only experiments.

Runs a selection policy against a quality model *without* the incentive
game — selections in, observations and regret out.  Used by the
bandit-focused tests and the regret-bound experiments, where the
Stackelberg layer is irrelevant and would only cost time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bandits.base import SelectionPolicy
from repro.core.regret import RegretTracker
from repro.core.state import LearningState
from repro.exceptions import ConfigurationError
from repro.quality.distributions import QualityModel
from repro.quality.sampler import QualitySampler

__all__ = ["BanditRunResult", "CMABEnvironment"]


@dataclass(frozen=True)
class BanditRunResult:
    """Outcome of a selection-only bandit run.

    Attributes
    ----------
    policy_name:
        Display name of the policy that produced the run.
    realized_revenue:
        Total observed quality across all rounds (Definition 8's revenue,
        realised draws).
    expected_revenue:
        Same total under the ground-truth means (pseudo-revenue).
    cumulative_regret:
        Final pseudo-regret versus the omniscient top-``K`` policy.
    regret_history:
        Cumulative regret after each round, shape ``(N,)``.
    selection_counts:
        How many times each seller was selected, shape ``(M,)``.
    final_means:
        The learning state's final quality estimates, shape ``(M,)``.
    """

    policy_name: str
    realized_revenue: float
    expected_revenue: float
    cumulative_regret: float
    regret_history: np.ndarray
    selection_counts: np.ndarray
    final_means: np.ndarray


class CMABEnvironment:
    """Drives a policy against a quality model for ``N`` rounds.

    Parameters
    ----------
    quality_model:
        The observation model (its ``means`` are the ground truth).
    num_pois:
        Observations per selected seller per round (``L``).
    k:
        Sellers selected per round.
    num_rounds:
        Total rounds ``N``.
    seed:
        Master seed; split internally between observation noise and any
        policy randomness so runs are exactly reproducible.
    """

    def __init__(self, quality_model: QualityModel, num_pois: int, k: int,
                 num_rounds: int, seed: int = 0) -> None:
        if not (1 <= k <= quality_model.num_sellers):
            raise ConfigurationError(
                f"k must be in [1, {quality_model.num_sellers}], got {k}"
            )
        if num_rounds <= 0:
            raise ConfigurationError(
                f"num_rounds must be positive, got {num_rounds}"
            )
        self._model = quality_model
        self._num_pois = int(num_pois)
        self._k = int(k)
        self._num_rounds = int(num_rounds)
        self._seed = int(seed)

    def run(self, policy: SelectionPolicy) -> BanditRunResult:
        """Run one full episode of the policy and collect statistics."""
        # Call-time import: repro.sim imports repro.bandits, so a
        # top-level import of repro.sim.rng would be circular.
        from repro.sim.rng import seed_sequence, seeded_generator

        m = self._model.num_sellers
        seq = seed_sequence(self._seed)
        obs_seed, policy_seed = seq.spawn(2)
        sampler = QualitySampler(
            self._model, self._num_pois, seeded_generator(obs_seed)
        )
        policy_rng = seeded_generator(policy_seed)
        state = LearningState(m)
        tracker = RegretTracker(self._model.means, self._k, self._num_pois)
        policy.reset(m, self._k, self._num_rounds)
        realized = 0.0
        counts = np.zeros(m, dtype=np.int64)
        for t in range(self._num_rounds):
            selected = policy.select(t, state, policy_rng)
            observations = sampler.sample_round(selected, round_index=t)
            state.update(selected, observations.sums, self._num_pois)
            policy.observe(t, selected, observations.sums, self._num_pois)
            tracker.record(selected)
            realized += observations.total
            counts[selected] += 1
        return BanditRunResult(
            policy_name=policy.name,
            realized_revenue=realized,
            expected_revenue=tracker.cumulative_expected_revenue,
            cumulative_regret=tracker.cumulative_regret,
            regret_history=tracker.history,
            selection_counts=counts,
            final_means=state.means,
        )
