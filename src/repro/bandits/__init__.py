"""Combinatorial multi-armed bandit substrate.

Selection policies (the paper's CMAB-HS UCB plus its baselines and
several extensions) and a selection-only environment for bandit
experiments.
"""

from repro.bandits.base import SelectionPolicy
from repro.bandits.cucb import (
    GreedyKnapsackOracle,
    Oracle,
    OraclePolicy,
    TopKOracle,
    WeightedCoverageOracle,
)
from repro.bandits.environment import BanditRunResult, CMABEnvironment
from repro.bandits.policies import (
    EpsilonFirstPolicy,
    EpsilonGreedyPolicy,
    OptimalPolicy,
    RandomPolicy,
    SlidingWindowUCBPolicy,
    ThompsonSamplingPolicy,
    UCBPolicy,
)

__all__ = [
    "SelectionPolicy",
    "UCBPolicy",
    "OptimalPolicy",
    "EpsilonFirstPolicy",
    "RandomPolicy",
    "EpsilonGreedyPolicy",
    "ThompsonSamplingPolicy",
    "SlidingWindowUCBPolicy",
    "CMABEnvironment",
    "BanditRunResult",
    "Oracle",
    "TopKOracle",
    "WeightedCoverageOracle",
    "GreedyKnapsackOracle",
    "OraclePolicy",
]
