"""Multi-seed replication experiment (extension ``ext-replication``).

The paper reports single runs; this experiment repeats the Fig.-7-style
policy comparison over several independent seeds and reports mean and
standard deviation per policy, plus the separation (in pooled standard
deviations) between CMAB-HS and random — quantifying how robust the
headline orderings are to seed choice.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import (
    ExperimentResult,
    Scale,
    Series,
    register,
)
from repro.experiments.sweeps import default_policies
from repro.sim.config import SimulationConfig
from repro.sim.replication import replicate_comparison

__all__ = ["run"]


@register("ext-replication", "EXTENSION: multi-seed replication of Fig. 7")
def run(scale: Scale = Scale.SMALL, seed: int = 0) -> ExperimentResult:
    """Replicate the policy comparison over independent seeds."""
    num_rounds = 1_500 if scale is Scale.SMALL else 20_000
    num_seeds = 5 if scale is Scale.SMALL else 10
    config = SimulationConfig(
        num_sellers=60, num_selected=8, num_pois=5,
        num_rounds=num_rounds, seed=seed,
    )
    replication = replicate_comparison(
        config, default_policies, num_seeds=num_seeds, first_seed=seed
    )
    policies = replication.policy_names()
    xs = np.arange(len(policies), dtype=float)
    result = ExperimentResult(
        experiment_id="ext-replication",
        title=f"policy comparison over {num_seeds} seeds "
              f"(M=60, K=8, N={num_rounds})",
        x_label="policy index "
                + " ".join(f"[{i}]={n}" for i, n in enumerate(policies)),
        notes=[
            "extension beyond the paper: every metric reported as "
            "mean +/- std over independent seeds",
            replication.to_table(),
        ],
    )
    for metric, panel in (("total_revenue", "revenue"),
                          ("regret", "regret"),
                          ("mean_poc", "poc_per_round")):
        means = np.array([
            replication.metric(p, metric).mean for p in policies
        ])
        stds = np.array([
            replication.metric(p, metric).std for p in policies
        ])
        result.add_series(panel, Series("mean", xs, means))
        result.add_series(panel, Series("std", xs, stds))
    separation = replication.separation("CMAB-HS", "random",
                                        "total_revenue")
    result.notes.append(
        f"CMAB-HS vs random revenue separation: {separation:.1f} pooled "
        "standard deviations"
    )
    return result
