"""Coverage-aware seller selection.

The paper assumes every seller can serve *all* ``L`` PoIs (Definition 3).
In the trace-derived reality (see
:func:`repro.data.trace_sellers.qualified_taxis`) each taxi only reaches
a subset of the PoIs.  This extension models that: a boolean coverage
matrix says which seller can sense which PoI, a round's *coverage
revenue* only counts PoIs a selected seller actually covers, and a
coverage-aware UCB policy first secures every PoI (greedy set cover by
UCB density) before spending the remaining slots on raw quality.

Registered as experiment ``ext-coverage``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bandits.base import SelectionPolicy
from repro.core.state import LearningState
from repro.exceptions import ConfigurationError
from repro.experiments.registry import (
    ExperimentResult,
    Scale,
    Series,
    register,
)
from repro.quality.distributions import TruncatedGaussianQuality
from repro.sim.rng import seed_sequence, seeded_generator

__all__ = [
    "CoverageMatrix",
    "CoverageAwareUCBPolicy",
    "CoverageRunResult",
    "run_coverage_simulation",
    "run",
]


@dataclass(frozen=True)
class CoverageMatrix:
    """Which seller can sense which PoI.

    Attributes
    ----------
    matrix:
        Boolean array of shape ``(M, L)``; entry ``(i, l)`` is True when
        seller ``i`` can collect data at PoI ``l``.
    """

    matrix: np.ndarray

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=bool)
        object.__setattr__(self, "matrix", matrix)
        if matrix.ndim != 2 or matrix.size == 0:
            raise ConfigurationError(
                "coverage matrix must be a non-empty 2-D boolean array"
            )
        if not matrix.any(axis=0).all():
            uncovered = np.nonzero(~matrix.any(axis=0))[0]
            raise ConfigurationError(
                f"PoIs {uncovered.tolist()} are covered by no seller"
            )
        if not matrix.any(axis=1).all():
            useless = np.nonzero(~matrix.any(axis=1))[0]
            raise ConfigurationError(
                f"sellers {useless.tolist()} cover no PoI"
            )

    @property
    def num_sellers(self) -> int:
        """Number of sellers ``M``."""
        return int(self.matrix.shape[0])

    @property
    def num_pois(self) -> int:
        """Number of PoIs ``L``."""
        return int(self.matrix.shape[1])

    def covered_pois(self, sellers: np.ndarray) -> np.ndarray:
        """Boolean mask of PoIs covered by the given seller set."""
        return self.matrix[np.asarray(sellers, dtype=int)].any(axis=0)

    def coverage_fraction(self, sellers: np.ndarray) -> float:
        """Fraction of PoIs the seller set covers."""
        return float(self.covered_pois(sellers).mean())

    @classmethod
    def random(cls, num_sellers: int, num_pois: int,
               rng: np.random.Generator,
               density: float = 0.4) -> "CoverageMatrix":
        """A random coverage matrix with guaranteed feasibility.

        Each (seller, PoI) pair is covered independently with probability
        ``density``; every seller is then granted at least one PoI and
        every PoI at least one seller.
        """
        if not (0.0 < density <= 1.0):
            raise ConfigurationError(
                f"density must be in (0, 1], got {density}"
            )
        matrix = rng.random((num_sellers, num_pois)) < density
        for i in range(num_sellers):
            if not matrix[i].any():
                matrix[i, rng.integers(num_pois)] = True
        for l in range(num_pois):
            if not matrix[:, l].any():
                matrix[rng.integers(num_sellers), l] = True
        return cls(matrix)


class CoverageAwareUCBPolicy(SelectionPolicy):
    """UCB selection that secures PoI coverage before raw quality.

    Phase 1 (cover): greedily pick the seller maximising
    ``ucb_i * (newly covered PoIs)`` until all PoIs are covered or slots
    run out.  Phase 2 (exploit): fill the remaining slots with the best
    uncommitted UCB indices.  Round 0 selects all sellers, as in
    Algorithm 1.
    """

    name = "coverage-ucb"

    def __init__(self, coverage: CoverageMatrix,
                 exploration_coefficient: float | None = None) -> None:
        super().__init__()
        if exploration_coefficient is not None and exploration_coefficient <= 0:
            raise ConfigurationError(
                "exploration_coefficient must be positive"
            )
        self._coverage = coverage
        self._coefficient_override = exploration_coefficient

    def reset(self, num_sellers: int, k: int, num_rounds: int) -> None:
        super().reset(num_sellers, k, num_rounds)
        if num_sellers != self._coverage.num_sellers:
            raise ConfigurationError(
                f"coverage matrix has {self._coverage.num_sellers} sellers "
                f"but the run has {num_sellers}"
            )

    def select(self, round_index: int, state: LearningState,
               rng: np.random.Generator) -> np.ndarray:
        self._require_reset()
        if round_index == 0:
            return np.arange(self._num_sellers)
        coefficient = (
            float(self._coefficient_override)
            if self._coefficient_override is not None
            else float(self._k + 1)
        )
        # Delegates to the general CUCB coverage oracle (greedy weighted
        # set cover, then fill by UCB index).
        from repro.bandits.cucb import WeightedCoverageOracle

        oracle = WeightedCoverageOracle(self._coverage.matrix)
        return oracle.select(state.ucb_values(coefficient), self._k)


@dataclass(frozen=True)
class CoverageRunResult:
    """Outcome of a coverage-aware bandit run.

    Attributes
    ----------
    policy_name:
        Policy that produced the run.
    coverage_revenue:
        Total quality collected at *covered* PoIs only.
    mean_coverage:
        Average fraction of PoIs covered per round.
    rounds_fully_covered:
        Number of rounds in which every PoI was covered.
    """

    policy_name: str
    coverage_revenue: float
    mean_coverage: float
    rounds_fully_covered: int


def run_coverage_simulation(policy: SelectionPolicy,
                            coverage: CoverageMatrix,
                            expected_qualities: np.ndarray,
                            k: int, num_rounds: int,
                            seed: int = 0) -> CoverageRunResult:
    """Run a policy where revenue only counts covered PoIs.

    Each selected seller observes (and earns) quality only at the PoIs
    it covers; the learning state still updates from those observations
    (with the per-seller observation count scaled by its coverage).
    """
    m = coverage.num_sellers
    if expected_qualities.shape != (m,):
        raise ConfigurationError(
            "expected_qualities must have one entry per seller"
        )
    if not (1 <= k <= m):
        raise ConfigurationError(f"k must be in [1, {m}], got {k}")
    if num_rounds <= 0:
        raise ConfigurationError(
            f"num_rounds must be positive, got {num_rounds}"
        )
    model = TruncatedGaussianQuality(expected_qualities)
    seq = seed_sequence([seed, 0xC07E])
    obs_seed, policy_seed = seq.spawn(2)
    obs_rng = seeded_generator(obs_seed)
    policy_rng = seeded_generator(policy_seed)
    state = LearningState(m)
    policy.reset(m, k, num_rounds)
    revenue = 0.0
    coverage_fractions = np.empty(num_rounds)
    fully_covered = 0
    for t in range(num_rounds):
        selected = policy.select(t, state, policy_rng)
        per_poi = model.observe(obs_rng, selected, coverage.num_pois)
        mask = coverage.matrix[selected]
        covered_observations = np.where(mask, per_poi, 0.0)
        sums = covered_observations.sum(axis=1)
        counts = mask.sum(axis=1)
        seen = counts > 0
        if seen.any():
            # Per-seller counts differ; update sellers one batch per
            # distinct count to respect the state's uniform-L update API.
            for count in np.unique(counts[seen]):
                subset = selected[counts == count]
                subset_sums = sums[counts == count]
                state.update(subset, subset_sums, int(count))
        policy.observe(t, selected, sums, coverage.num_pois)
        revenue += float(sums.sum())
        fraction = coverage.coverage_fraction(selected)
        coverage_fractions[t] = fraction
        if fraction == 1.0:
            fully_covered += 1
    return CoverageRunResult(
        policy_name=policy.name,
        coverage_revenue=revenue,
        mean_coverage=float(coverage_fractions.mean()),
        rounds_fully_covered=fully_covered,
    )


@register("ext-coverage", "EXTENSION: coverage-aware seller selection")
def run(scale: Scale = Scale.SMALL, seed: int = 0) -> ExperimentResult:
    """Coverage-aware UCB versus coverage-blind top-K UCB.

    Sweeps the coverage density: the sparser the coverage, the more the
    coverage-blind policy leaves PoIs unserved and the larger the
    coverage-aware policy's revenue edge.
    """
    from repro.bandits.policies import UCBPolicy

    num_rounds = 1_500 if scale is Scale.SMALL else 10_000
    m, l, k = 40, 10, 8
    densities = np.array([0.2, 0.35, 0.5, 0.8])
    rng = seeded_generator(seed)
    qualities = rng.uniform(0.2, 1.0, m)
    blind_revenue, aware_revenue = [], []
    blind_coverage, aware_coverage = [], []
    for density in densities:
        coverage = CoverageMatrix.random(
            m, l, seeded_generator(seed + int(density * 100)),
            density=float(density),
        )
        blind = run_coverage_simulation(
            UCBPolicy(), coverage, qualities, k, num_rounds, seed
        )
        aware = run_coverage_simulation(
            CoverageAwareUCBPolicy(coverage), coverage, qualities, k,
            num_rounds, seed,
        )
        blind_revenue.append(blind.coverage_revenue)
        aware_revenue.append(aware.coverage_revenue)
        blind_coverage.append(blind.mean_coverage)
        aware_coverage.append(aware.mean_coverage)
    result = ExperimentResult(
        experiment_id="ext-coverage",
        title=f"coverage-aware selection (M={m}, L={l}, K={k}, "
              f"N={num_rounds})",
        x_label="coverage density",
        notes=[
            "extension beyond the paper: sellers cover only subsets of "
            "PoIs (as trace-derived sellers do); revenue counts covered "
            "PoIs only",
        ],
    )
    result.add_series("coverage_revenue",
                      Series("top-K UCB", densities,
                             np.asarray(blind_revenue)))
    result.add_series("coverage_revenue",
                      Series("coverage-ucb", densities,
                             np.asarray(aware_revenue)))
    result.add_series("mean_poi_coverage",
                      Series("top-K UCB", densities,
                             np.asarray(blind_coverage)))
    result.add_series("mean_poi_coverage",
                      Series("coverage-ucb", densities,
                             np.asarray(aware_coverage)))
    return result
