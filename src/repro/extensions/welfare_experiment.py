"""Price-of-anarchy experiment (extension ``ext-poa``).

The hierarchical Stackelberg mechanism maximises individual profits; the
welfare-maximising sensing profile is generally longer (the consumer's
monopsony pricing suppresses effort).  This experiment sweeps the
valuation scale ``omega`` and reports the equilibrium welfare, the
social optimum, and their ratio.
"""

from __future__ import annotations

import numpy as np

from repro.core.incentive import ClosedFormStackelbergSolver
from repro.experiments.hs_setup import build_round_game
from repro.experiments.registry import (
    ExperimentResult,
    Scale,
    Series,
    register,
)
from repro.game.welfare import analyze_welfare

__all__ = ["run"]


@register("ext-poa", "EXTENSION: price of anarchy of the HS mechanism")
def run(scale: Scale = Scale.SMALL, seed: int = 0) -> ExperimentResult:
    """Sweep omega; compare SE welfare against the social optimum."""
    num_points = 9 if scale is Scale.SMALL else 41
    omegas = np.linspace(600.0, 1_400.0, num_points)
    solver = ClosedFormStackelbergSolver()
    equilibrium = np.empty(omegas.size)
    optimal = np.empty(omegas.size)
    poa = np.empty(omegas.size)
    total_se = np.empty(omegas.size)
    total_opt = np.empty(omegas.size)
    for idx, omega in enumerate(omegas):
        setup = build_round_game(omega=float(omega), seed=seed)
        solved = solver.solve(setup.game)
        analysis = analyze_welfare(setup.game, solved.profile)
        equilibrium[idx] = analysis.equilibrium_welfare
        optimal[idx] = analysis.optimal_welfare
        poa[idx] = analysis.price_of_anarchy
        total_se[idx] = solved.profile.total_sensing_time
        total_opt[idx] = float(analysis.optimal_taus.sum())
    result = ExperimentResult(
        experiment_id="ext-poa",
        title="social welfare at the SE versus the social optimum "
              "(single round, K=10)",
        x_label="valuation parameter omega",
        notes=[
            "extension beyond the paper: prices are transfers, so welfare "
            "depends only on the sensing profile; the SE under-provides "
            "sensing time relative to the social optimum",
            f"price of anarchy range: [{poa.min():.3f}, {poa.max():.3f}]",
        ],
    )
    result.add_series("welfare", Series("SE welfare", omegas, equilibrium))
    result.add_series("welfare", Series("optimal welfare", omegas, optimal))
    result.add_series("price_of_anarchy",
                      Series("optimal / SE", omegas, poa))
    result.add_series("total_sensing_time",
                      Series("SE", omegas, total_se))
    result.add_series("total_sensing_time",
                      Series("social optimum", omegas, total_opt))
    return result
