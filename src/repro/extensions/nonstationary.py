"""Non-stationary quality experiments (the Definition-3 remark).

The paper fixes each seller's expected quality but remarks that
exogenous factors (willingness, context, routine) perturb the observed
quality.  This module studies the stronger variant where the *means
themselves drift* (sinusoidally, via
:class:`~repro.quality.distributions.DriftingQuality`) and quantifies
how much a sliding-window UCB recovers over the paper's vanilla UCB.
The waveform comes from the shared
:class:`~repro.quality.drift.SinusoidalDrift` helper — the same
primitive :mod:`repro.runtime.arrivals` modulates seller churn with, so
quality drift and arrival drift cannot diverge in shape.

Registered as experiment ``ext-drift``.
"""

from __future__ import annotations

import numpy as np

from repro.bandits.policies import (
    OptimalPolicy,
    RandomPolicy,
    SlidingWindowUCBPolicy,
    UCBPolicy,
)
from repro.experiments.registry import (
    ExperimentResult,
    Scale,
    Series,
    register,
)
from repro.quality.distributions import DriftingQuality
from repro.quality.drift import SinusoidalDrift
from repro.sim.config import SimulationConfig
from repro.sim.engine import TradingSimulator

__all__ = ["run", "drift_comparison"]

#: Exploration coefficient for both UCB variants under drift.  The
#: paper's K+1 radius, sized for stationary lifetimes of observations,
#: forces a windowed policy into near-permanent exploration.
_DRIFT_COEFFICIENT = 0.5


def drift_comparison(amplitude: float, num_rounds: int, seed: int,
                     window: int, num_sellers: int = 40,
                     k: int = 8) -> dict[str, float]:
    """Realised revenue per policy under one drift amplitude."""
    config = SimulationConfig(
        num_sellers=num_sellers, num_selected=k, num_pois=5,
        num_rounds=num_rounds, seed=seed,
    )
    base = TradingSimulator(config)
    qualities = base.population.expected_qualities
    if amplitude > 0.0:
        drift = SinusoidalDrift(amplitude=amplitude,
                                period=num_rounds / 4.0)
        model = DriftingQuality.from_drift(qualities, drift,
                                           phase_seed=seed + 1)
    else:
        model = None
    simulator = TradingSimulator(config, population=base.population,
                                 quality_model=model)
    policies = [
        OptimalPolicy(qualities),
        UCBPolicy(exploration_coefficient=_DRIFT_COEFFICIENT),
        SlidingWindowUCBPolicy(window=window,
                               exploration_coefficient=_DRIFT_COEFFICIENT),
        RandomPolicy(),
    ]
    comparison = simulator.compare(policies)
    return {
        name: run.total_realized_revenue
        for name, run in comparison.runs.items()
    }


@register("ext-drift", "EXTENSION: revenue under drifting qualities")
def run(scale: Scale = Scale.SMALL, seed: int = 0) -> ExperimentResult:
    """Sweep the drift amplitude; compare static-vs-windowed UCB.

    At amplitude 0 (the paper's stationary setting) vanilla UCB should
    match or beat the window; as drift grows the window's ability to
    forget pays off.
    """
    num_rounds = 8_000 if scale is Scale.SMALL else 20_000
    window = num_rounds // 10
    amplitudes = np.array([0.0, 0.15, 0.25, 0.35])
    revenue: dict[str, list[float]] = {}
    for amplitude in amplitudes:
        outcome = drift_comparison(float(amplitude), num_rounds, seed,
                                   window)
        for name, value in outcome.items():
            revenue.setdefault(name, []).append(value)
    result = ExperimentResult(
        experiment_id="ext-drift",
        title="total revenue versus quality-drift amplitude "
              f"(N={num_rounds}, window={window})",
        x_label="drift amplitude",
        notes=[
            "extension beyond the paper: Definition-3 remark taken to "
            "drifting means; sliding-window UCB versus vanilla UCB "
            f"(both with exploration coefficient {_DRIFT_COEFFICIENT})",
        ],
    )
    for name, values in revenue.items():
        result.add_series(
            "total_revenue",
            Series(name, amplitudes, np.asarray(values)),
        )
    vanilla = np.asarray(revenue["CMAB-HS"])
    windowed = np.asarray(revenue["sw-ucb"])
    gains = (windowed / vanilla - 1.0) * 100.0
    result.add_series(
        "window_gain",
        Series("sw-ucb gain over vanilla (%)", amplitudes, gains),
    )
    result.notes.append(
        "sw-ucb revenue gain over vanilla UCB per amplitude (%): "
        + ", ".join(f"{g:+.1f}" for g in gains)
    )
    result.notes.append(
        "robust claim: the window's *relative* standing improves with "
        "drift (gain at max amplitude exceeds gain at amplitude 0); the "
        "absolute sign of the gain is seed- and window-dependent"
    )
    return result
