"""Multi-consumer market experiment (extension ``ext-market``).

Compares the seller-allocation strategies on one market instance: three
consumers with different valuation scales sharing one platform.  Reports
total welfare, the platform's profit, and the fairness gap (best-minus-
worst mean consumer profit) per strategy.
"""

from __future__ import annotations

import numpy as np

from repro.entities.seller import SellerPopulation
from repro.experiments.registry import (
    ExperimentResult,
    Scale,
    Series,
    register,
)
from repro.market.allocation import (
    RandomPriorityAllocation,
    RichestFirstAllocation,
    SnakeDraftAllocation,
)
from repro.market.engine import MarketSimulator
from repro.market.spec import ConsumerSpec
from repro.sim.rng import seeded_generator

__all__ = ["run", "DEFAULT_SPECS"]

#: Three consumers with distinct valuation scales and demands.
DEFAULT_SPECS = (
    ConsumerSpec(consumer_id=0, omega=1_400.0, k=8),
    ConsumerSpec(consumer_id=1, omega=1_000.0, k=8),
    ConsumerSpec(consumer_id=2, omega=600.0, k=8),
)


@register("ext-market", "EXTENSION: multi-consumer allocation strategies")
def run(scale: Scale = Scale.SMALL, seed: int = 0) -> ExperimentResult:
    """Run all allocation strategies on a shared market instance."""
    num_rounds = 1_500 if scale is Scale.SMALL else 20_000
    population = SellerPopulation.random(
        80, seeded_generator(seed)
    )
    simulator = MarketSimulator(
        population, list(DEFAULT_SPECS), num_pois=5, seed=seed,
    )
    strategies = [
        RichestFirstAllocation(),
        SnakeDraftAllocation(),
        RandomPriorityAllocation(),
    ]
    outcomes = simulator.compare(strategies, num_rounds)
    names = list(outcomes)
    xs = np.arange(len(names), dtype=float)
    result = ExperimentResult(
        experiment_id="ext-market",
        title=f"allocation strategies, 3 consumers, N={num_rounds}",
        x_label="strategy index "
                + " ".join(f"[{i}]={n}" for i, n in enumerate(names)),
        notes=[
            "extension beyond the paper: one platform serving several "
            "consumers with shared quality learning",
        ],
    )
    result.add_series(
        "welfare",
        Series("total welfare", xs,
               np.array([outcomes[n].total_welfare() for n in names])),
    )
    result.add_series(
        "welfare",
        Series("platform profit", xs,
               np.array([
                   float(outcomes[n].platform_profit.sum()) for n in names
               ])),
    )
    result.add_series(
        "fairness",
        Series("fairness gap", xs,
               np.array([outcomes[n].fairness_gap() for n in names])),
    )
    for spec in DEFAULT_SPECS:
        result.add_series(
            "consumer_profit",
            Series(
                f"consumer {spec.consumer_id} (omega={spec.omega:g})",
                xs,
                np.array([
                    outcomes[n].consumer_totals()[spec.consumer_id]
                    for n in names
                ]),
            ),
        )
    snake = outcomes["snake-draft"]
    richest = outcomes["richest-first"]
    result.notes.append(
        f"snake-draft fairness gap {snake.fairness_gap():.2f} vs "
        f"richest-first {richest.fairness_gap():.2f}"
    )
    return result
