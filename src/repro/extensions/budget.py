"""Budget-constrained data trading.

The paper's consumer trades for a fixed number of rounds ``N``; a common
practical variant (and the setting of several of the paper's cited CMAB
works, e.g. budgeted multi-play bandits) gives the consumer a *monetary
budget* instead: trading stops once cumulative payments
``sum_t p^{J,t} * total_tau^t`` would exceed it.

Because the paper's policies do not condition on the remaining budget,
a budgeted run is exactly a prefix of the unbudgeted one — so this module
implements budget truncation of :class:`~repro.sim.results.RunMetrics`
plus a comparison harness reporting *revenue per unit budget*, the metric
that decides which policy a budget-limited consumer should prefer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bandits.base import SelectionPolicy
from repro.exceptions import ConfigurationError
from repro.sim.engine import TradingSimulator
from repro.sim.results import RunMetrics

__all__ = ["BudgetedRun", "truncate_to_budget", "BudgetedComparison",
           "run_budgeted_comparison"]


@dataclass(frozen=True)
class BudgetedRun:
    """A run truncated at a consumer budget.

    Attributes
    ----------
    policy_name:
        Policy that produced the underlying run.
    budget:
        The consumer's total budget.
    rounds_completed:
        Rounds fully affordable within the budget.
    spent:
        Total payments over the completed rounds.
    realized_revenue:
        Observed quality total over the completed rounds.
    consumer_profit:
        Total consumer profit over the completed rounds.
    exhausted:
        Whether the budget (rather than the horizon) ended trading.
    """

    policy_name: str
    budget: float
    rounds_completed: int
    spent: float
    realized_revenue: float
    consumer_profit: float
    exhausted: bool

    @property
    def revenue_per_unit_budget(self) -> float:
        """Realised revenue per unit of budget actually spent."""
        if self.spent <= 0.0:
            return 0.0
        return self.realized_revenue / self.spent


def truncate_to_budget(run: RunMetrics, budget: float) -> BudgetedRun:
    """Cut a run at the last round the budget fully covers.

    Round ``t``'s payment is ``p^{J,t} * total_tau^t`` (Definition 5: the
    consumer pays the unit service price times the total sensing time).
    Trading stops *before* the first round whose payment would overdraw
    the budget.

    Raises
    ------
    ConfigurationError
        If the budget is not positive.
    """
    if not (budget > 0.0):
        raise ConfigurationError(f"budget must be positive, got {budget}")
    payments = run.service_price * run.total_sensing_time
    cumulative = np.cumsum(payments)
    rounds_completed = int(np.searchsorted(cumulative, budget, side="right"))
    exhausted = rounds_completed < run.num_rounds
    spent = float(cumulative[rounds_completed - 1]) if rounds_completed else 0.0
    return BudgetedRun(
        policy_name=run.policy_name,
        budget=float(budget),
        rounds_completed=rounds_completed,
        spent=spent,
        realized_revenue=float(
            run.realized_revenue[:rounds_completed].sum()
        ),
        consumer_profit=float(
            run.consumer_profit[:rounds_completed].sum()
        ),
        exhausted=exhausted,
    )


@dataclass
class BudgetedComparison:
    """Budgeted runs of several policies on the same instance."""

    budget: float
    runs: dict[str, BudgetedRun]

    def best_by_revenue(self) -> str:
        """The policy with the largest within-budget revenue."""
        return max(self.runs,
                   key=lambda name: self.runs[name].realized_revenue)

    def to_table(self) -> str:
        """Aligned text table of the budgeted outcomes."""
        headers = ["policy", "rounds", "spent", "revenue", "rev/budget"]
        rows = [
            [
                name,
                str(run.rounds_completed),
                f"{run.spent:.1f}",
                f"{run.realized_revenue:.1f}",
                f"{run.revenue_per_unit_budget:.3f}",
            ]
            for name, run in self.runs.items()
        ]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows))
            for i in range(len(headers))
        ]
        lines = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
        for row in rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def run_budgeted_comparison(simulator: TradingSimulator,
                            policies: list[SelectionPolicy],
                            budget: float,
                            max_rounds: int | None = None,
                            ) -> BudgetedComparison:
    """Run each policy until its budget is exhausted (or the horizon ends).

    Parameters
    ----------
    simulator:
        The shared instance (population + observation noise).
    policies:
        Policies to compare; each gets the same budget.
    budget:
        The consumer's total budget per policy run.
    max_rounds:
        Horizon cap; defaults to the simulator config's ``num_rounds``.
    """
    runs: dict[str, BudgetedRun] = {}
    for policy in policies:
        metrics = simulator.run(policy, num_rounds=max_rounds)
        if policy.name in runs:
            raise ConfigurationError(
                f"duplicate policy name {policy.name!r}"
            )
        runs[policy.name] = truncate_to_budget(metrics, budget)
    return BudgetedComparison(budget=float(budget), runs=runs)
