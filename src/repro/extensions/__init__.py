"""Extensions beyond the paper.

* :mod:`repro.extensions.budget` — budget-constrained trading (stop when
  the consumer's monetary budget is exhausted) and revenue-per-budget
  comparison.
* :mod:`repro.extensions.nonstationary` — drifting-quality experiments
  (the Definition-3 remark taken seriously) with sliding-window UCB.
* :mod:`repro.extensions.coverage` — sellers covering only subsets of
  PoIs, with a coverage-aware UCB policy.
* :mod:`repro.extensions.market_experiment` — multi-consumer allocation
  strategies (built on :mod:`repro.market`).
* :mod:`repro.extensions.welfare_experiment` — price of anarchy of the
  HS mechanism (built on :mod:`repro.game.welfare`).
* :mod:`repro.extensions.replication_experiment` — multi-seed
  replication with mean/std reporting.

Importing this package registers the extension experiments
(``ext-drift``, ``ext-market``, ``ext-coverage``, ``ext-poa``,
``ext-replication``) in the experiment registry.
"""

from repro.extensions import market_experiment  # registers
from repro.extensions import replication_experiment  # registers
from repro.extensions import welfare_experiment  # registers
from repro.extensions.budget import (
    BudgetedComparison,
    BudgetedRun,
    run_budgeted_comparison,
    truncate_to_budget,
)
from repro.extensions.coverage import (
    CoverageAwareUCBPolicy,
    CoverageMatrix,
    CoverageRunResult,
    run_coverage_simulation,
)
from repro.extensions.nonstationary import drift_comparison

__all__ = [
    "BudgetedRun",
    "BudgetedComparison",
    "truncate_to_budget",
    "run_budgeted_comparison",
    "drift_comparison",
    "CoverageMatrix",
    "CoverageAwareUCBPolicy",
    "CoverageRunResult",
    "run_coverage_simulation",
]
