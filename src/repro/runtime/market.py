"""The market re-hosted on the event kernel: :class:`MarketRuntime`.

A :class:`MarketRuntime` plays the exact round loop of
:class:`~repro.sim.engine.TradingSimulator` — UCB selection, the
three-stage Stackelberg solve, data collection, learning — but fires it
as scheduled events on a :class:`~repro.runtime.kernel.EventKernel`
over whatever seller population is *online right now*:

* each round ``t`` is a logical-time tick: the platform selects, sends
  ``collect`` messages to the selected seller agents, sellers
  acknowledge with ``report`` messages, and a settle-phase event plays
  the shared round body from :mod:`repro.sim.rounds`;
* sellers arrive and depart organically (a seeded
  :class:`~repro.runtime.arrivals.ChurnProcess`, or explicit
  ``open_session``/``close_session`` calls from the service front-end);
  a seller departing mid-round simply never acknowledges its collect
  request, and the missing reports are settled through the *same*
  dropout machinery fault injection uses
  (:func:`repro.sim.rounds.play_degraded_round` with a synthesised
  :class:`~repro.faults.RoundFaultPlan`);
* every settled round appends a :class:`TradeRecord` to a
  :class:`TradeLedger` whose SHA-256 digest pins the whole trade
  history for golden verification.

Determinism contract (enforced by ``repro verify --only runtime``):

* **Batch equivalence** — with a static population (no churn, all
  sellers online) the runtime constructs the identical RNG streams in
  the identical order as the batch engine and executes the identical
  round bodies, so its :class:`~repro.sim.results.RunMetrics` is
  bit-identical to ``TradingSimulator.run`` at the same seed *by
  construction*.
* **Script determinism** — the same seed plus the same event schedule
  (churn spec or session script) always yields a bit-identical trade
  ledger; message traffic carries no simulation state and tracing
  touches no RNG stream.

Observation values are sampled platform-side inside the round bodies
(preserving the engine's single ``observations`` stream in its exact
consumption order); ``report`` messages are acknowledgment traffic.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

import numpy as np

from repro.bandits.base import SelectionPolicy
from repro.bandits.policies import UCBPolicy
from repro.core.regret import RegretTracker
from repro.core.selection import top_k_indices
from repro.core.state import LearningState
from repro.entities.seller import SellerPopulation
from repro.exceptions import (
    ConfigurationError,
    GracefulShutdownInterrupt,
    PersistenceError,
)
from repro.faults import FaultLog, RoundFaultPlan
from repro.kernels.selection import top_k_partition
from repro.obs.metrics import MetricsRegistry
from repro.obs.timing import perf_counter
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.quality.distributions import (
    QualityModel,
    TruncatedGaussianQuality,
)
from repro.quality.sampler import QualitySampler
from repro.resilience.shutdown import NEVER_STOP, ShutdownSignal
from repro.runtime.arrivals import ChurnProcess, ChurnSpec
from repro.runtime.kernel import SETTLE, Agent, EventKernel, Message
from repro.sim.config import SimulationConfig
from repro.sim.persistence import load_checkpoint, save_checkpoint
from repro.sim.results import RunMetrics
from repro.sim.rng import RngFactory
from repro.sim.rounds import (
    PRIOR_MEAN,
    SERIES_NAMES,
    RoundContext,
    play_clean_round,
    play_degraded_round,
)

__all__ = ["TradeRecord", "TradeLedger", "SellerAgent", "PlatformAgent",
           "ConsumerAgent", "MarketRuntime"]

_EMPTY_SLOTS = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class TradeRecord:
    """One settled round of the ledger.

    Attributes
    ----------
    round_index:
        The round this trade settled in.
    participants:
        Population slots that actually delivered (selected minus
        mid-round departures); empty for a no-trade round.
    service_price, collection_price, tau_total, realized:
        The settled ``p^J``, ``p``, total sensing time, and realized
        revenue of the round.
    """

    round_index: int
    participants: np.ndarray
    service_price: float
    collection_price: float
    tau_total: float
    realized: float


class TradeLedger:
    """Append-only trade history with a bit-exact digest."""

    def __init__(self) -> None:
        self._records: list[TradeRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> tuple[TradeRecord, ...]:
        """The settled trades, in round order."""
        return tuple(self._records)

    def append(self, record: TradeRecord) -> None:
        """Append one settled round (rounds must arrive in order)."""
        if self._records and record.round_index <= self._records[-1].round_index:
            raise ConfigurationError(
                f"ledger rounds must be strictly increasing: got round "
                f"{record.round_index} after {self._records[-1].round_index}"
            )
        self._records.append(record)

    def digest(self) -> str:
        """SHA-256 over the canonical byte encoding of every record.

        Two runs produce the same digest iff their trade histories are
        bit-identical — the golden-trace anchor of the determinism
        contract.
        """
        digest = hashlib.sha256()
        for record in self._records:
            digest.update(np.int64(record.round_index).tobytes())
            digest.update(
                np.asarray(record.participants, dtype=np.int64).tobytes()
            )
            digest.update(np.array(
                [record.service_price, record.collection_price,
                 record.tau_total, record.realized], dtype=np.float64,
            ).tobytes())
        return digest.hexdigest()

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flat-array form for NPZ checkpoints."""
        participants = [np.asarray(r.participants, dtype=np.int64)
                        for r in self._records]
        offsets = np.zeros(len(self._records) + 1, dtype=np.int64)
        if participants:
            offsets[1:] = np.cumsum([p.size for p in participants])
        flat = (np.concatenate(participants) if participants
                else _EMPTY_SLOTS)
        return {
            "rounds": np.array([r.round_index for r in self._records],
                               dtype=np.int64),
            "offsets": offsets,
            "participants": flat,
            "settlements": np.array(
                [[r.service_price, r.collection_price, r.tau_total,
                  r.realized] for r in self._records],
                dtype=np.float64,
            ).reshape(len(self._records), 4),
        }

    def restore_arrays(self, arrays: dict[str, np.ndarray]) -> None:
        """Rebuild the ledger from :meth:`to_arrays` output."""
        self._records = []
        rounds = np.asarray(arrays["rounds"], dtype=np.int64)
        offsets = np.asarray(arrays["offsets"], dtype=np.int64)
        flat = np.asarray(arrays["participants"], dtype=np.int64)
        settlements = np.asarray(arrays["settlements"], dtype=np.float64)
        if offsets.size != rounds.size + 1 or settlements.shape != (rounds.size, 4):
            raise PersistenceError("trade-ledger arrays are inconsistent")
        for i, round_index in enumerate(rounds):
            row = settlements[i]
            self.append(TradeRecord(
                round_index=int(round_index),
                participants=flat[offsets[i]:offsets[i + 1]].copy(),
                service_price=float(row[0]),
                collection_price=float(row[1]),
                tau_total=float(row[2]),
                realized=float(row[3]),
            ))


class SellerAgent(Agent):
    """One online seller: acknowledges collect requests with a report."""

    kind = "seller"

    def __init__(self, slot: int, trades: np.ndarray) -> None:
        super().__init__(f"seller-{slot}")
        self.slot = int(slot)
        self._trades = trades

    def on_message(self, message: Message) -> None:
        if message.topic == "collect":
            self._trades[self.slot] += 1
            self.send(message.sender, "report",
                      round=message.payload["round"], slot=self.slot)
        self.inbox.clear()


class PlatformAgent(Agent):
    """The platform: gathers the round's report acknowledgments."""

    kind = "platform"

    def __init__(self) -> None:
        super().__init__("platform")
        self.reported_slots: list[int] = []

    def on_message(self, message: Message) -> None:
        if message.topic == "report":
            self.reported_slots.append(int(message.payload["slot"]))
        self.inbox.clear()


class ConsumerAgent(Agent):
    """The consumer: receives one trade notification per settled round."""

    kind = "consumer"

    def __init__(self) -> None:
        super().__init__("consumer")
        self.trades_seen = 0
        self.last_trade: dict[str, object] | None = None

    def on_message(self, message: Message) -> None:
        if message.topic == "trade":
            self.trades_seen += 1
            self.last_trade = dict(message.payload)
        self.inbox.clear()


class MarketRuntime:
    """The trading market as a discrete-event process.

    Parameters
    ----------
    config:
        The simulation parameters (``num_rounds`` bounds the runtime's
        lifetime; ``num_sellers`` is the number of population *slots*).
    policy:
        Selection policy; ``None`` uses the paper's CMAB-HS
        :class:`~repro.bandits.UCBPolicy`.
    population / quality_model:
        Pre-built instances; ``None`` samples/builds them exactly as
        :class:`~repro.sim.engine.TradingSimulator` does (same streams,
        same order — the batch-equivalence anchor).
    churn:
        Optional seeded arrival/departure process.  ``None`` keeps the
        population static unless sessions are managed explicitly.
    start_online:
        Whether every slot starts with an online seller (the batch
        posture).  The service front-end passes ``False`` and opens
        sessions on demand.
    tracer / metrics:
        Optional observability objects (never touch an RNG stream).
    backend:
        ``"scalar"`` (default) or ``"vector"`` — same switch as
        :class:`~repro.sim.engine.TradingSimulator`; the vector backend
        produces bit-identical ledgers and metrics (asserted by
        ``repro verify --only kernels``).
    """

    def __init__(self, config: SimulationConfig,
                 policy: SelectionPolicy | None = None, *,
                 population: SellerPopulation | None = None,
                 quality_model: QualityModel | None = None,
                 churn: ChurnProcess | ChurnSpec | None = None,
                 start_online: bool = True,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 backend: str = "scalar") -> None:
        if backend not in ("scalar", "vector"):
            raise ConfigurationError(
                f"backend must be 'scalar' or 'vector', got {backend!r}"
            )
        self._backend = backend
        self._config = config
        self._factory = RngFactory(config.seed)
        if population is None:
            population = SellerPopulation.random(
                config.num_sellers,
                self._factory.generator("population"),
                a_range=config.a_range,
                b_range=config.b_range,
            )
        if len(population) != config.num_sellers:
            raise ConfigurationError(
                f"population has {len(population)} sellers but the config "
                f"says {config.num_sellers}"
            )
        if quality_model is None:
            quality_model = TruncatedGaussianQuality(
                population.expected_qualities, sigma=config.quality_sigma
            )
        if quality_model.num_sellers != config.num_sellers:
            raise ConfigurationError(
                "quality model covers a different number of sellers than "
                "the config"
            )
        if isinstance(churn, ChurnSpec):
            # A bare spec binds to this runtime's own factory; zero
            # rates degrade to no churn at all, keeping the static
            # (batch-equivalent) selection path.
            churn = (ChurnProcess(churn, self._factory,
                                  config.num_sellers)
                     if churn.enabled else None)
        if churn is not None and churn.num_sellers != config.num_sellers:
            raise ConfigurationError(
                "churn process covers a different number of slots than "
                "the config"
            )
        self._population = population
        self._churn = churn
        m, k, num_pois = (config.num_sellers, config.num_selected,
                          config.num_pois)
        self._m, self._k, self._num_pois = m, k, num_pois
        self._num_rounds = config.num_rounds
        self._policy = policy if policy is not None else UCBPolicy()

        # Stream construction mirrors TradingSimulator.run exactly —
        # same names, same order — so a static-population runtime run
        # consumes bit-identical randomness to the batch engine.
        self._observation_rng = self._factory.generator("observations")
        self._sampler = QualitySampler(quality_model, num_pois,
                                       self._observation_rng)
        self._policy_rng = self._factory.generator(
            "policy", self._policy.name
        )
        scratch: np.ndarray | None = None
        if backend == "vector":
            from repro.kernels.state import VectorLearningState

            self._state: LearningState = VectorLearningState(
                m, prior_mean=PRIOR_MEAN
            )
            scratch = np.empty(m)
        else:
            self._state = LearningState(m, prior_mean=PRIOR_MEAN)
        self._tracker = RegretTracker(population.expected_qualities, k,
                                      num_pois)
        self._policy.reset(m, k, self._num_rounds)

        self._series = {name: np.empty(self._num_rounds)
                        for name in SERIES_NAMES}
        self._selection_counts = np.zeros(m, dtype=np.int64)
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics
        self._reg = metrics if metrics is not None else MetricsRegistry()
        self._fault_log: FaultLog | None = None

        self._ctx = RoundContext(
            state=self._state, tracker=self._tracker, policy=self._policy,
            sampler=self._sampler, series=self._series,
            selection_counts=self._selection_counts,
            qualities_truth=population.expected_qualities,
            cost_a_all=population.cost_a, cost_b_all=population.cost_b,
            num_pois=num_pois, theta=config.theta, lam=config.lam,
            omega=config.omega, svc_bounds=config.service_price_bounds,
            col_bounds=config.collection_price_bounds,
            tau_max=config.max_sensing_time,
            tau0=config.initial_sensing_time,
            tracer=self._tracer, metrics=self._reg, monitor=None,
            backend=backend, scratch=scratch,
        )

        self._kernel = EventKernel(self._tracer)
        self._platform = PlatformAgent()
        self._consumer = ConsumerAgent()
        self._kernel.register(self._platform)
        self._kernel.register(self._consumer)

        self._online = np.zeros(m, dtype=bool)
        self._slot_session = np.full(m, -1, dtype=np.int64)
        self._slot_opened_round = np.zeros(m, dtype=np.int64)
        self._slot_trades = np.zeros(m, dtype=np.int64)
        self._next_session = 0
        self._sessions_opened = 0
        self._sessions_closed = 0
        self._next_round = 0
        self._ledger = TradeLedger()
        if start_online:
            for slot in range(m):
                self.open_session(slot)

    # -- introspection -------------------------------------------------------------

    @property
    def config(self) -> SimulationConfig:
        """The simulation configuration."""
        return self._config

    @property
    def population(self) -> SellerPopulation:
        """The sampled seller population (one entry per slot)."""
        return self._population

    @property
    def policy(self) -> SelectionPolicy:
        """The selection policy driving the market."""
        return self._policy

    @property
    def backend(self) -> str:
        """The round-loop implementation: ``"scalar"`` or ``"vector"``."""
        return self._backend

    @property
    def kernel(self) -> EventKernel:
        """The discrete-event kernel hosting the market."""
        return self._kernel

    @property
    def ledger(self) -> TradeLedger:
        """The settled-trade ledger."""
        return self._ledger

    @property
    def learning_state(self) -> LearningState:
        """The platform's quality-learning state."""
        return self._state

    @property
    def next_round(self) -> int:
        """The next round to play (== rounds played so far)."""
        return self._next_round

    @property
    def num_rounds(self) -> int:
        """Total rounds this runtime will play."""
        return self._num_rounds

    @property
    def online_mask(self) -> np.ndarray:
        """Boolean per-slot online mask (read-only view)."""
        view = self._online.view()
        view.flags.writeable = False
        return view

    @property
    def num_online(self) -> int:
        """How many sellers are currently online."""
        return int(self._online.sum())

    @property
    def sessions_opened(self) -> int:
        """Seller-sessions opened so far (including churn arrivals)."""
        return self._sessions_opened

    @property
    def sessions_closed(self) -> int:
        """Seller-sessions closed so far (including churn departures)."""
        return self._sessions_closed

    # -- sessions ------------------------------------------------------------------

    def open_session(self, slot: int | None = None) -> tuple[int, int]:
        """Bring one slot online; returns ``(session_id, slot)``.

        ``slot=None`` activates the lowest free slot (the front-end's
        capacity model: the population is pre-sampled, a registration
        claims a vacant identity).
        """
        if slot is None:
            free = np.flatnonzero(~self._online)
            if free.size == 0:
                raise ConfigurationError(
                    f"all {self._m} population slots are online; close a "
                    "session before registering another seller"
                )
            slot = int(free[0])
        else:
            slot = int(slot)
            if not (0 <= slot < self._m):
                raise ConfigurationError(
                    f"slot must be in [0, {self._m}), got {slot}"
                )
            if self._online[slot]:
                raise ConfigurationError(
                    f"slot {slot} is already online"
                )
        session = self._next_session
        self._next_session += 1
        self._online[slot] = True
        self._slot_session[slot] = session
        self._slot_opened_round[slot] = self._next_round
        self._slot_trades[slot] = 0
        self._sessions_opened += 1
        self._kernel.register(SellerAgent(slot, self._slot_trades),
                              slot=slot)
        if self._tracer.enabled:
            self._tracer.emit("session_open", session=session, slot=slot,
                              round=self._next_round)
        return session, slot

    def close_session(self, session: int) -> dict[str, int]:
        """Close one session by id; returns its closing summary."""
        slots = np.flatnonzero(self._slot_session == int(session))
        if slots.size == 0:
            raise ConfigurationError(
                f"no open session with id {session}"
            )
        return self._close_slot(int(slots[0]))

    def session_slot(self, session: int) -> int:
        """The slot an open session occupies."""
        slots = np.flatnonzero(self._slot_session == int(session))
        if slots.size == 0:
            raise ConfigurationError(
                f"no open session with id {session}"
            )
        return int(slots[0])

    def _close_slot(self, slot: int) -> dict[str, int]:
        session = int(self._slot_session[slot])
        summary = {
            "session": session,
            "slot": slot,
            "rounds_online": self._next_round
            - int(self._slot_opened_round[slot]),
            "trades": int(self._slot_trades[slot]),
        }
        self._online[slot] = False
        self._slot_session[slot] = -1
        self._sessions_closed += 1
        self._kernel.deregister(f"seller-{slot}", slot=slot)
        if self._tracer.enabled:
            self._tracer.emit("session_close", **summary)
        return summary

    # -- the round loop, as kernel events ------------------------------------------

    def _select_round(self, t: int) -> tuple[np.ndarray, bool]:
        """Selection over the current online roster.

        With every slot online and no churn process attached, the
        policy's own :meth:`~repro.bandits.base.SelectionPolicy.select`
        runs verbatim (the batch-equivalence path).  Otherwise selection
        is the same UCB rule masked to the online roster: round 0
        explores everyone online; later rounds take the top
        ``min(K, online)`` masked UCB indices.
        """
        online = self._online
        if self._churn is None and bool(online.all()):
            selected = self._policy.select(t, self._state,
                                           self._policy_rng)
            explore = selected.size > self._k or (
                t == 0 and selected.size == self._m
            )
            return selected, explore
        online_count = int(online.sum())
        if online_count == 0:
            raise ConfigurationError(
                "no seller is online: open a session or configure "
                "arrivals before trading"
            )
        if t == 0:
            selected = np.flatnonzero(online)
        else:
            coefficient = getattr(self._policy,
                                  "exploration_coefficient", None)
            coef = (float(coefficient) if coefficient is not None
                    else float(self._k + 1))
            values = self._state.ucb_values(coef)
            values[~online] = -np.inf
            if self._backend == "vector":
                # Bit-identical O(M) replacement for the stable argsort
                # (see repro.kernels.selection.top_k_partition).
                selected = top_k_partition(values,
                                           min(self._k, online_count))
            else:
                selected = top_k_indices(values,
                                         min(self._k, online_count))
        explore = selected.size > self._k or (
            t == 0 and selected.size == online_count
        )
        return selected, explore

    def _begin_round(self, t: int, round_start_time: float) -> None:
        tr = self._tracer
        if tr.enabled:
            tr.emit("round_start", round_index=t)
        departures = _EMPTY_SLOTS
        if self._churn is not None:
            churn = self._churn.plan_round(t, self._online)
            for slot in churn.arrivals:
                self.open_session(int(slot))
            departures = churn.departures
        selected, explore = self._select_round(t)
        selection_duration = perf_counter() - round_start_time
        self._reg.timer("runtime.selection").observe(selection_duration)
        if tr.enabled:
            tr.emit("selection", round_index=t, selected=selected,
                    explore=bool(explore), duration_s=selection_duration)
        for slot in selected:
            self._platform.send(f"seller-{int(slot)}", "collect", round=t)
        # Mid-round departures leave *after* selection but *before*
        # collection: the kernel drops their collect messages, so the
        # settlement sees them as missing reports.
        for slot in departures:
            self._close_slot(int(slot))
        self._kernel.schedule(
            float(t),
            lambda: self._settle_round(t, selected, explore,
                                       round_start_time),
            phase=SETTLE,
        )

    def _settle_round(self, t: int, selected: np.ndarray, explore: bool,
                      round_start_time: float) -> None:
        reported = np.asarray(self._platform.reported_slots,
                              dtype=np.int64)
        self._platform.reported_slots = []
        missing = selected[~np.isin(selected, reported)]
        if missing.size == 0:
            play_clean_round(self._ctx, t, selected, explore)
            participants = selected
        else:
            # Organic churn reuses the fault machinery: departures are
            # dropout faults of a synthesised plan.
            self._reg.counter("churn_dropouts").inc(int(missing.size))
            plan = RoundFaultPlan(
                round_index=t, dropped=missing,
                corrupted=_EMPTY_SLOTS,
                corrupted_sums=np.empty(0, dtype=np.float64),
                stalled=_EMPTY_SLOTS,
            )
            play_degraded_round(self._ctx, t, selected, explore, plan,
                                self._fault_log)
            participants = selected[~np.isin(selected, missing)]
        self._ledger.append(TradeRecord(
            round_index=t,
            participants=np.asarray(participants, dtype=np.int64).copy(),
            service_price=float(self._series["service"][t]),
            collection_price=float(self._series["collection"][t]),
            tau_total=float(self._series["totals"][t]),
            realized=float(self._series["realized"][t]),
        ))
        self._platform.send("consumer", "trade", round=t,
                            service_price=float(self._series["service"][t]),
                            collection_price=float(
                                self._series["collection"][t]),
                            realized=float(self._series["realized"][t]))
        self._reg.counter("rounds").inc()
        self._reg.gauge("cumulative_regret").set(
            self._tracker.cumulative_regret
        )
        duration = perf_counter() - round_start_time
        self._reg.timer("runtime.round").observe(duration)
        if self._tracer.enabled:
            self._tracer.emit("round_end", round_index=t,
                              duration_s=duration)

    def play_round(self) -> int:
        """Schedule and run one full round on the kernel; returns ``t``."""
        t = self._next_round
        if t >= self._num_rounds:
            raise ConfigurationError(
                f"the runtime's {self._num_rounds} rounds are complete"
            )
        round_start_time = perf_counter()
        self._kernel.schedule(
            float(t), lambda: self._begin_round(t, round_start_time)
        )
        self._kernel.run(until=float(t))
        self._next_round += 1
        return t

    def advance(self, rounds: int | None = None, *,
                shutdown: ShutdownSignal | None = None,
                checkpoint_path: str | os.PathLike | None = None,
                checkpoint_every: int = 0) -> int:
        """Play up to ``rounds`` more rounds (``None``: to the end).

        Polls ``shutdown`` before every round; when it trips, a final
        resumable checkpoint is written (when ``checkpoint_path`` is
        set and at least one round completed) and
        :class:`~repro.exceptions.GracefulShutdownInterrupt` is raised.
        Returns the number of rounds actually played.
        """
        if checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if checkpoint_every and checkpoint_path is None:
            raise ConfigurationError(
                "periodic checkpointing requires checkpoint_path"
            )
        target = (self._num_rounds if rounds is None
                  else min(self._num_rounds, self._next_round + int(rounds)))
        stop = shutdown if shutdown is not None else NEVER_STOP
        played = 0
        while self._next_round < target:
            t = self._next_round
            if stop.should_stop(t):
                self._graceful_shutdown(t, checkpoint_path)
            self.play_round()
            played += 1
            if (checkpoint_path is not None and checkpoint_every
                    and (t + 1) % checkpoint_every == 0
                    and (t + 1) < self._num_rounds):
                checkpoint_start = perf_counter()
                self._reg.counter("checkpoint_writes").inc()
                self.save(checkpoint_path)
                if self._tracer.enabled:
                    self._tracer.emit(
                        "checkpoint", round_index=t, action="saved",
                        path=os.fspath(checkpoint_path), next_round=t + 1,
                        duration_s=perf_counter() - checkpoint_start,
                    )
        return played

    def run(self, *, shutdown: ShutdownSignal | None = None,
            checkpoint_path: str | os.PathLike | None = None,
            checkpoint_every: int = 0,
            resume: bool = False) -> RunMetrics:
        """Play the whole run and return its metrics.

        With ``resume=True`` and an existing ``checkpoint_path``, the
        run continues from the checkpoint and the final metrics are
        bit-identical to an uninterrupted run.
        """
        if resume:
            if checkpoint_path is None:
                raise ConfigurationError("resume requires checkpoint_path")
            if os.path.exists(checkpoint_path):
                self.restore(checkpoint_path)
        tr = self._tracer
        if tr.enabled:
            tr.emit("run_start", policy=self._policy.name,
                    num_rounds=self._num_rounds,
                    start_round=self._next_round,
                    seed=self._config.seed, num_sellers=self._m,
                    num_selected=self._k, num_pois=self._num_pois,
                    churn=self._churn is not None)
        run_start_time = perf_counter()
        played = self.advance(None, shutdown=shutdown,
                              checkpoint_path=checkpoint_path,
                              checkpoint_every=checkpoint_every)
        if tr.enabled:
            tr.emit("run_end", policy=self._policy.name,
                    rounds_played=played,
                    total_revenue=float(self._series["realized"].sum()),
                    final_regret=self._tracker.cumulative_regret,
                    duration_s=perf_counter() - run_start_time)
            tr.flush()
        return self.metrics()

    def metrics(self) -> RunMetrics:
        """The run's metrics over the rounds played so far."""
        n = self._next_round
        series = self._series
        return RunMetrics(
            policy_name=self._policy.name,
            realized_revenue=series["realized"][:n].copy(),
            expected_revenue=series["expected"][:n].copy(),
            regret=np.asarray(self._tracker.history)[:n].copy(),
            consumer_profit=series["consumer"][:n].copy(),
            platform_profit=series["platform"][:n].copy(),
            seller_profit_mean=series["sellers_mean"][:n].copy(),
            service_price=series["service"][:n].copy(),
            collection_price=series["collection"][:n].copy(),
            total_sensing_time=series["totals"][:n].copy(),
            selection_counts=self._selection_counts.copy(),
            estimation_error=series["estimation_error"][:n].copy(),
            telemetry=(self._reg.snapshot() if self._metrics is not None
                       else None),
        )

    def _graceful_shutdown(
            self, t: int,
            checkpoint_path: str | os.PathLike | None) -> None:
        final_path: str | None = None
        if checkpoint_path is not None and t > 0:
            self._reg.counter("checkpoint_writes").inc()
            self.save(checkpoint_path)
            final_path = os.fspath(checkpoint_path)
        if self._tracer.enabled:
            self._tracer.emit("graceful_shutdown", round_index=t,
                              policy=self._policy.name,
                              checkpoint_path=final_path)
            self._tracer.flush()
        raise GracefulShutdownInterrupt(
            f"market runtime stopped before round {t} "
            + (f"(resumable checkpoint: {final_path})" if final_path
               else "(no checkpoint written)"),
            checkpoint_path=final_path,
        )

    # -- checkpoint / resume --------------------------------------------------------

    def _fingerprint(self) -> dict[str, object]:
        return {
            "kind": "market_runtime",
            "policy_name": self._policy.name,
            "seed": self._config.seed,
            "num_sellers": self._m,
            "num_selected": self._k,
            "num_pois": self._num_pois,
            "num_rounds": self._num_rounds,
            "churn_spec": (self._churn.spec.to_dict()
                           if self._churn is not None else None),
        }

    def save(self, path: str | os.PathLike) -> None:
        """Atomically persist the runtime's full resumable state."""
        tracker_snapshot = self._tracker.snapshot()
        meta = dict(self._fingerprint())
        meta.update({
            "next_round": self._next_round,
            "next_session": self._next_session,
            "sessions_opened": self._sessions_opened,
            "sessions_closed": self._sessions_closed,
            "messages_delivered": self._kernel.messages_delivered,
            "messages_dropped": self._kernel.messages_dropped,
            "tracker_cumulative": tracker_snapshot["cumulative"],
            "tracker_rounds": tracker_snapshot["rounds"],
            "tracker_expected_revenue":
                tracker_snapshot["expected_revenue"],
            "policy_rng_state": self._policy_rng.bit_generator.state,
            "observation_rng_state":
                self._observation_rng.bit_generator.state,
        })
        if self._metrics is not None:
            meta["metrics_snapshot"] = self._reg.snapshot()
        state_snapshot = self._state.snapshot()
        arrays = {
            "state_counts": state_snapshot["counts"],
            "state_sums": state_snapshot["sums"],
            "regret_history": tracker_snapshot["history"],
            "selection_counts": self._selection_counts,
            "online_mask": self._online,
            "slot_session": self._slot_session,
            "slot_opened_round": self._slot_opened_round,
            "slot_trades": self._slot_trades,
        }
        for name in SERIES_NAMES:
            arrays[f"series_{name}"] = self._series[name][:self._next_round]
        for key, value in self._ledger.to_arrays().items():
            arrays[f"ledger_{key}"] = value
        for key, value in self._policy.state_snapshot().items():
            arrays[f"policy__{key}"] = np.asarray(value)
        save_checkpoint(path, meta, arrays, metrics=self._reg)

    def restore(self, path: str | os.PathLike) -> int:
        """Restore state saved by :meth:`save`; returns the next round.

        The checkpoint must fingerprint-match this runtime (policy,
        seed, sizes, churn spec), or
        :class:`~repro.exceptions.PersistenceError` is raised.
        """
        meta, arrays = load_checkpoint(path, metrics=self._reg)
        for key, expected in self._fingerprint().items():
            if meta.get(key) != expected:
                raise PersistenceError(
                    f"checkpoint {os.fspath(path)!s} does not match this "
                    f"runtime: {key} is {meta.get(key)!r}, expected "
                    f"{expected!r}"
                )
        try:
            next_round = int(meta["next_round"])
            self._state.restore({"counts": arrays["state_counts"],
                                 "sums": arrays["state_sums"]})
            self._tracker.restore({
                "cumulative": meta["tracker_cumulative"],
                "rounds": meta["tracker_rounds"],
                "expected_revenue": meta["tracker_expected_revenue"],
                "history": arrays["regret_history"],
            })
            for name in SERIES_NAMES:
                partial = arrays[f"series_{name}"]
                self._series[name][:partial.size] = partial
            self._selection_counts[:] = arrays["selection_counts"]
            online = np.asarray(arrays["online_mask"], dtype=bool)
            self._slot_session[:] = arrays["slot_session"]
            self._slot_opened_round[:] = arrays["slot_opened_round"]
            self._slot_trades[:] = arrays["slot_trades"]
            self._next_session = int(meta["next_session"])
            self._sessions_opened = int(meta["sessions_opened"])
            self._sessions_closed = int(meta["sessions_closed"])
            self._kernel.restore_message_counters(
                int(meta["messages_delivered"]),
                int(meta["messages_dropped"]),
            )
            self._policy_rng.bit_generator.state = meta["policy_rng_state"]
            self._observation_rng.bit_generator.state = (
                meta["observation_rng_state"]
            )
            self._ledger.restore_arrays({
                key: arrays[f"ledger_{key}"]
                for key in ("rounds", "offsets", "participants",
                            "settlements")
            })
        except KeyError as error:
            raise PersistenceError(
                f"checkpoint {os.fspath(path)!s} is missing field "
                f"{error.args[0]!r}"
            ) from error
        if not (0 < next_round <= self._num_rounds):
            raise PersistenceError(
                f"checkpoint {os.fspath(path)!s} has next_round "
                f"{next_round}, outside (0, {self._num_rounds}]"
            )
        # Reconcile the agent roster with the restored online mask.
        for slot in range(self._m):
            agent_id = f"seller-{slot}"
            if online[slot] and not self._kernel.has_agent(agent_id):
                self._kernel.register(
                    SellerAgent(slot, self._slot_trades), slot=slot
                )
            elif not online[slot] and self._kernel.has_agent(agent_id):
                self._kernel.deregister(agent_id, slot=slot)
        self._online[:] = online
        policy_snapshot = {
            key[len("policy__"):]: value
            for key, value in arrays.items()
            if key.startswith("policy__")
        }
        self._policy.state_restore(policy_snapshot)
        if (self._metrics is not None
                and meta.get("metrics_snapshot") is not None):
            self._metrics.restore(meta["metrics_snapshot"])
        self._next_round = next_round
        return next_round
