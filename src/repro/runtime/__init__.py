"""The event-driven market runtime (``repro serve``).

This package re-hosts the trading simulation on a deterministic
discrete-event kernel:

* :mod:`repro.runtime.kernel` — logical clock, priority event queue,
  agents exchanging timestamped messages through mailboxes;
* :mod:`repro.runtime.arrivals` — seeded seller churn (arrivals and
  departures, with sinusoidal intensity drift shared with the
  non-stationary extension);
* :mod:`repro.runtime.market` — :class:`MarketRuntime`, the existing
  round loop fired as scheduled kernel events over whatever seller
  population is online, settling trades into a hash-digested ledger;
* :mod:`repro.runtime.service` — :class:`MarketService`, the
  register/quote/trade/close front-end the ``repro serve`` CLI exposes;
* :mod:`repro.runtime.loadgen` — the seeded load generator driving
  recorded seller-session scripts through a service.

Determinism contract: a static-population runtime run is bit-identical
to :class:`~repro.sim.engine.TradingSimulator` at the same seed (the
round bodies are literally shared via :mod:`repro.sim.rounds`), and the
same seed plus the same event script always yields a bit-identical
trade ledger — both enforced by ``repro verify --only runtime``.
"""

from repro.runtime.arrivals import ChurnProcess, ChurnSpec, RoundChurn
from repro.runtime.kernel import (
    DELIVER,
    SETTLE,
    TICK,
    Agent,
    Clock,
    EventKernel,
    Message,
)
from repro.runtime.loadgen import (
    LoadReport,
    LoadSpec,
    generate_script,
    load_script,
    replay_script,
    save_script,
)
from repro.runtime.market import MarketRuntime, TradeLedger, TradeRecord
from repro.runtime.service import MarketService

__all__ = [
    "TICK",
    "DELIVER",
    "SETTLE",
    "Clock",
    "Message",
    "Agent",
    "EventKernel",
    "ChurnSpec",
    "RoundChurn",
    "ChurnProcess",
    "MarketRuntime",
    "TradeRecord",
    "TradeLedger",
    "MarketService",
    "LoadSpec",
    "LoadReport",
    "generate_script",
    "save_script",
    "load_script",
    "replay_script",
]
