"""Seeded seller churn: arrivals and departures as a replayable process.

The event runtime's population is not fixed — sellers arrive and leave
while the market trades.  A :class:`ChurnProcess` draws that churn the
same way :class:`~repro.faults.FaultModel` draws fault schedules: every
round's arrivals/departures come from a dedicated
:class:`~repro.sim.rng.RngFactory` stream keyed by the round index
(``("churn", t)``), so

* the same seed always yields the same churn history,
* churn draws never perturb the population / observation / policy
  streams (a zero-rate churn process is bit-identical to none at all),
* a resumed run replays the identical history without sequential RNG
  state to restore.

Arrival intensity can drift sinusoidally over the day/run via the
shared :class:`~repro.quality.SinusoidalDrift` helper — the same
primitive the non-stationary quality extension uses — modelling rush
hours where sellers flock to the platform and lulls where they leave.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.quality.drift import SinusoidalDrift
from repro.sim.rng import RngFactory

__all__ = ["ChurnSpec", "RoundChurn", "ChurnProcess"]


@dataclass(frozen=True)
class ChurnSpec:
    """Per-round churn probabilities for a slotted population.

    Attributes
    ----------
    arrival_rate:
        Probability an *offline* slot comes online this round.  When
        ``drift`` is set, this is the base rate modulated by
        :meth:`~repro.quality.SinusoidalDrift.modulated_rate`.
    departure_rate:
        Probability an *online* seller leaves this round.
    min_online:
        Floor on the online population after the round's churn: excess
        departures (in ascending slot order) are deferred, so the
        market can always select at least one seller.
    drift:
        Optional sinusoidal modulation of the arrival intensity.
    """

    arrival_rate: float = 0.0
    departure_rate: float = 0.0
    min_online: int = 1
    drift: SinusoidalDrift | None = None

    def __post_init__(self) -> None:
        for name in ("arrival_rate", "departure_rate"):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        if self.min_online < 1:
            raise ConfigurationError(
                f"min_online must be >= 1, got {self.min_online}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any churn has positive probability."""
        return self.arrival_rate > 0.0 or self.departure_rate > 0.0

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form (checkpoint fingerprints)."""
        payload: dict[str, object] = {
            "arrival_rate": self.arrival_rate,
            "departure_rate": self.departure_rate,
            "min_online": self.min_online,
        }
        if self.drift is not None:
            payload["drift"] = {"amplitude": self.drift.amplitude,
                                "period": self.drift.period}
        return payload


@dataclass(frozen=True)
class RoundChurn:
    """The churn of one round, as slot indices.

    ``arrivals`` come online *before* the round's selection;
    ``departures`` leave *mid-round* (between selection and settlement),
    which is what turns them into dropout faults for the settlement.
    """

    round_index: int
    arrivals: np.ndarray
    departures: np.ndarray

    @property
    def is_quiet(self) -> bool:
        """Whether nothing arrived or departed this round."""
        return self.arrivals.size == 0 and self.departures.size == 0


class ChurnProcess:
    """Draws reproducible per-round churn for a slotted population.

    Parameters
    ----------
    spec:
        The churn probabilities.
    factory:
        The run's RNG factory; churn draws use the dedicated
        ``("churn", round)`` streams.
    num_sellers:
        Number of population slots ``M``; one uniform is drawn per slot
        per round regardless of its state, so the schedule of any slot
        is independent of what the others did (common random churn).
    """

    def __init__(self, spec: ChurnSpec, factory: RngFactory,
                 num_sellers: int) -> None:
        if num_sellers <= 0:
            raise ConfigurationError(
                f"num_sellers must be positive, got {num_sellers}"
            )
        if spec.min_online > num_sellers:
            raise ConfigurationError(
                f"min_online={spec.min_online} exceeds the population "
                f"size {num_sellers}"
            )
        self._spec = spec
        self._factory = factory
        self._num_sellers = int(num_sellers)

    @property
    def spec(self) -> ChurnSpec:
        """The churn probabilities this process draws from."""
        return self._spec

    @property
    def num_sellers(self) -> int:
        """Number of population slots the per-round draws cover."""
        return self._num_sellers

    def arrival_rate_at(self, round_index: int) -> float:
        """The (possibly drift-modulated) arrival rate of one round."""
        base = self._spec.arrival_rate
        if self._spec.drift is None:
            return base
        return self._spec.drift.modulated_rate(base, round_index)

    def plan_round(self, round_index: int,
                   online_mask: np.ndarray) -> RoundChurn:
        """Draw one round's arrivals and departures.

        Parameters
        ----------
        round_index:
            0-based round number (keys the RNG stream).
        online_mask:
            Boolean mask over the ``M`` slots; ``True`` where a seller
            is currently online.

        Notes
        -----
        The ``min_online`` floor is enforced on departures only, by
        keeping a deterministic prefix (ascending slot order) of the
        drawn departures — arrivals are never suppressed.
        """
        online = np.asarray(online_mask, dtype=bool)
        if online.shape != (self._num_sellers,):
            raise ConfigurationError(
                f"online_mask must have shape ({self._num_sellers},), "
                f"got {online.shape}"
            )
        rng = self._factory.generator("churn", int(round_index))
        uniforms = rng.random(self._num_sellers)
        arrivals = np.flatnonzero(
            ~online & (uniforms < self.arrival_rate_at(round_index))
        )
        departures = np.flatnonzero(
            online & (uniforms < self._spec.departure_rate)
        )
        online_after = int(online.sum()) + arrivals.size
        allowed = max(0, online_after - self._spec.min_online)
        if departures.size > allowed:
            departures = departures[:allowed]
        return RoundChurn(round_index=int(round_index),
                          arrivals=arrivals, departures=departures)
