"""Seeded load generation for the market service.

The load generator produces, persists, and replays **session scripts**:
flat lists of register / quote / trade / close operations that drive a
:class:`~repro.runtime.service.MarketService` through thousands of
seller-sessions.  Scripts are the runtime's record/replay format —

* :func:`generate_script` draws one reproducibly from a
  :class:`LoadSpec` (same spec → byte-identical script),
* :func:`save_script` / :func:`load_script` round-trip it through
  strict JSON (the CI ``runtime-smoke`` job replays a committed one),
* :func:`replay_script` feeds it to a service and reports throughput
  (sessions/sec for the benchstore) plus the resulting ledger digest —
  the handle the determinism contract is asserted on: same config +
  same script → same digest.

Session references are implicit: ``quote`` and ``close`` always target
the *oldest* open session (FIFO), so a script needs no session ids and
replays identically against any compatible service.
"""

from __future__ import annotations

import json
import os
from collections import deque
from dataclasses import dataclass

from repro.exceptions import ConfigurationError, PersistenceError
from repro.obs.timing import perf_counter
from repro.runtime.service import MarketService
from repro.sim.persistence import atomic_write_json
from repro.sim.rng import RngFactory

__all__ = ["LoadSpec", "LoadReport", "generate_script", "save_script",
           "load_script", "replay_script"]

#: Operation kinds a script may contain.
_OPS = ("register", "trade", "quote", "close")

_SCRIPT_VERSION = 1


@dataclass(frozen=True)
class LoadSpec:
    """Parameters of one generated load script.

    Attributes
    ----------
    seed:
        Seeds the op-sequence draw (stream ``("loadgen",)``).
    num_sessions:
        Total seller-sessions the script opens (every one is closed
        again before the script ends).
    max_open:
        Cap on concurrently open sessions; must not exceed the target
        service's slot count or registrations are skipped at replay.
    rounds_budget:
        Total trading rounds the script spends across all trade ops.
    max_rounds_per_trade:
        Upper bound on the rounds of a single trade op.
    register_weight / trade_weight / quote_weight / close_weight:
        Relative odds of each op when it is applicable.
    """

    seed: int = 0
    num_sessions: int = 100
    max_open: int = 8
    rounds_budget: int = 200
    max_rounds_per_trade: int = 4
    register_weight: float = 0.45
    trade_weight: float = 0.2
    quote_weight: float = 0.15
    close_weight: float = 0.2

    def __post_init__(self) -> None:
        for name in ("num_sessions", "max_open", "rounds_budget",
                     "max_rounds_per_trade"):
            if getattr(self, name) < 1:
                raise ConfigurationError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        weights = (self.register_weight, self.trade_weight,
                   self.quote_weight, self.close_weight)
        if any(weight < 0.0 for weight in weights):
            raise ConfigurationError("op weights must be >= 0")
        if self.register_weight <= 0.0 or self.close_weight <= 0.0:
            raise ConfigurationError(
                "register_weight and close_weight must be positive, or "
                "the script cannot open and drain its sessions"
            )


@dataclass(frozen=True)
class LoadReport:
    """What one script replay did, and how fast.

    ``ledger_digest`` is the service's post-replay
    :meth:`~repro.runtime.market.TradeLedger.digest` — the determinism
    handle: same config + same script → same digest.
    """

    sessions_opened: int
    sessions_closed: int
    rounds_traded: int
    quotes: int
    ops_skipped: int
    wall_s: float
    sessions_per_s: float
    ledger_digest: str

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form (bench extras, CI artifacts)."""
        return {
            "sessions_opened": self.sessions_opened,
            "sessions_closed": self.sessions_closed,
            "rounds_traded": self.rounds_traded,
            "quotes": self.quotes,
            "ops_skipped": self.ops_skipped,
            "wall_s": self.wall_s,
            "sessions_per_s": self.sessions_per_s,
            "ledger_digest": self.ledger_digest,
        }


def generate_script(spec: LoadSpec) -> list[dict[str, object]]:
    """Draw one session script from ``spec``, reproducibly.

    The walk keeps at least one session open before any trade/quote op,
    respects ``max_open`` and the rounds budget, and closes every
    session before finishing, so a replay always ends on an idle
    service.
    """
    rng = RngFactory(spec.seed).generator("loadgen")
    ops: list[dict[str, object]] = []
    open_count = 0
    opened = 0
    rounds_used = 0
    while opened < spec.num_sessions or open_count > 0:
        can_register = (opened < spec.num_sessions
                        and open_count < spec.max_open)
        if open_count == 0:
            # Only registration is applicable on an empty floor.
            ops.append({"op": "register"})
            opened += 1
            open_count += 1
            continue
        choices: list[tuple[str, float]] = []
        if can_register:
            choices.append(("register", spec.register_weight))
        if rounds_used < spec.rounds_budget:
            choices.append(("trade", spec.trade_weight))
        choices.append(("quote", spec.quote_weight))
        choices.append(("close", spec.close_weight))
        total = sum(weight for _name, weight in choices)
        draw = rng.random() * total
        picked = choices[-1][0]
        for name, weight in choices:
            if draw < weight:
                picked = name
                break
            draw -= weight
        if picked == "register":
            ops.append({"op": "register"})
            opened += 1
            open_count += 1
        elif picked == "trade":
            rounds = int(rng.integers(1, spec.max_rounds_per_trade + 1))
            rounds = min(rounds, spec.rounds_budget - rounds_used)
            ops.append({"op": "trade", "rounds": rounds})
            rounds_used += rounds
        elif picked == "quote":
            ops.append({"op": "quote"})
        else:
            ops.append({"op": "close"})
            open_count -= 1
    return ops


def save_script(path: str | os.PathLike,
                ops: list[dict[str, object]]) -> None:
    """Atomically persist a script as strict JSON."""
    for op in ops:
        if op.get("op") not in _OPS:
            raise ConfigurationError(
                f"unknown script op {op.get('op')!r}; "
                f"expected one of {_OPS}"
            )
    atomic_write_json(path, {"version": _SCRIPT_VERSION, "ops": ops})


def load_script(path: str | os.PathLike) -> list[dict[str, object]]:
    """Load a script saved by :func:`save_script`."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise PersistenceError(
            f"cannot read session script {os.fspath(path)!s}: {error}"
        ) from error
    if not isinstance(payload, dict) or payload.get("version") != _SCRIPT_VERSION:
        raise PersistenceError(
            f"session script {os.fspath(path)!s} has an unsupported "
            f"layout (expected version {_SCRIPT_VERSION})"
        )
    ops = payload.get("ops")
    if not isinstance(ops, list):
        raise PersistenceError(
            f"session script {os.fspath(path)!s} has no op list"
        )
    for op in ops:
        if not isinstance(op, dict) or op.get("op") not in _OPS:
            raise PersistenceError(
                f"session script {os.fspath(path)!s} contains an "
                f"unknown op: {op!r}"
            )
    return ops


def replay_script(service: MarketService,
                  ops: list[dict[str, object]]) -> LoadReport:
    """Drive ``ops`` through ``service`` and report what happened.

    Op resolution is deterministic given the service's state: ``quote``
    and ``close`` target the oldest open session; a ``register`` with
    every slot occupied, a ``trade``/``quote``/``close`` with nothing
    open, and a ``trade`` after the round budget is exhausted are
    *skipped* (counted in ``ops_skipped``) rather than failing, so one
    script replays cleanly against differently-sized services.
    """
    start = perf_counter()
    open_sessions: deque[int] = deque()
    opened = closed = rounds = quotes = skipped = 0
    runtime = service.runtime
    num_slots = runtime.config.num_sellers
    for op in ops:
        kind = op["op"]
        if kind == "register":
            if runtime.num_online >= num_slots:
                skipped += 1
                continue
            info = service.register()
            open_sessions.append(info["session"])
            opened += 1
        elif kind == "trade":
            if runtime.num_online == 0 or runtime.next_round >= runtime.num_rounds:
                skipped += 1
                continue
            result = service.trade(int(op.get("rounds", 1)))
            rounds += int(result["rounds_played"])
        elif kind == "quote":
            if not open_sessions:
                skipped += 1
                continue
            service.quote(open_sessions[0])
            quotes += 1
        elif kind == "close":
            if not open_sessions:
                skipped += 1
                continue
            service.close(open_sessions.popleft())
            closed += 1
        else:
            raise ConfigurationError(f"unknown script op {kind!r}")
    wall_s = perf_counter() - start
    return LoadReport(
        sessions_opened=opened,
        sessions_closed=closed,
        rounds_traded=rounds,
        quotes=quotes,
        ops_skipped=skipped,
        wall_s=wall_s,
        sessions_per_s=(opened / wall_s if wall_s > 0.0 else 0.0),
        ledger_digest=runtime.ledger.digest(),
    )
