"""Deterministic discrete-event kernel: clock, queue, agents, mailboxes.

The kernel is intentionally tiny and *inert*: it owns a logical
:class:`Clock` (never the wall clock), a priority event queue, and a
registry of :class:`Agent` objects that exchange timestamped
:class:`Message` records through per-agent inboxes.  It draws no
randomness and reads no time source, so every source of nondeterminism
in a runtime run lives in the callbacks scheduled *onto* it — which the
market layer feeds exclusively from seeded
:class:`~repro.sim.rng.RngFactory` streams.

Event ordering is total and replayable: the queue is keyed by
``(time, phase, seq)`` where ``phase`` separates the sub-steps of one
logical instant (:data:`TICK` callbacks fire before :data:`DELIVER`
message deliveries, which fire before :data:`SETTLE` callbacks) and
``seq`` is a monotonically increasing scheduling counter breaking the
remaining ties in insertion order.  Two kernels fed the same schedule
therefore pop events in the same order, bit for bit.

Agent lifecycle and message traffic surface as trace events
(``agent_spawn`` / ``agent_depart`` / ``message_delivered``) through
whatever :class:`~repro.obs.Tracer` the kernel was built with; tracing
never perturbs execution order.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

from repro.exceptions import ConfigurationError
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["TICK", "DELIVER", "SETTLE", "Clock", "Message", "Agent",
           "EventKernel"]

#: Phase of round-opening callbacks (selection, collect requests).
TICK = 0
#: Phase of message deliveries — after the tick that sent them.
DELIVER = 1
#: Phase of round-closing callbacks (settlement) — after all same-time
#: deliveries, so every report of the round has reached its mailbox.
SETTLE = 2

_PHASES = (TICK, DELIVER, SETTLE)


class Clock:
    """The kernel's logical clock.

    Only the kernel advances it (monotonically, to each popped event's
    timestamp); everything else reads :attr:`now`.  There is no tie to
    wall-clock time whatsoever.
    """

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """The current logical time."""
        return self._now

    def _advance(self, time: float) -> None:
        if time < self._now:
            raise ConfigurationError(
                f"clock cannot run backwards: at {self._now}, asked to "
                f"advance to {time}"
            )
        self._now = time


class Message:
    """One timestamped message between two agents.

    Attributes
    ----------
    topic:
        What the message is about (``"collect"``, ``"report"``, ...).
    sender, receiver:
        Agent ids.
    time:
        Logical delivery time.
    payload:
        Topic-specific data (plain scalars; message traffic must never
        carry live simulation arrays, so checkpointing a runtime never
        has to persist in-flight state).
    """

    __slots__ = ("topic", "sender", "receiver", "time", "payload")

    def __init__(self, topic: str, sender: str, receiver: str,
                 time: float, payload: dict[str, object]) -> None:
        self.topic = topic
        self.sender = sender
        self.receiver = receiver
        self.time = time
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (f"Message({self.topic!r}, {self.sender!r} -> "
                f"{self.receiver!r}, t={self.time})")


class Agent:
    """A participant on the kernel: an id, a kind, and a mailbox.

    Subclasses override :meth:`on_message` to react to deliveries;
    the default leaves messages in :attr:`inbox` for later inspection.
    """

    #: Display kind carried by lifecycle trace events.
    kind: str = "agent"

    def __init__(self, agent_id: str) -> None:
        self.agent_id = agent_id
        self.inbox: list[Message] = []
        self._kernel: EventKernel | None = None

    @property
    def kernel(self) -> "EventKernel":
        """The kernel this agent is registered on."""
        if self._kernel is None:
            raise ConfigurationError(
                f"agent {self.agent_id!r} is not registered on a kernel"
            )
        return self._kernel

    def send(self, receiver: str, topic: str, *, delay: float = 0.0,
             **payload: object) -> None:
        """Send a message to another agent (delivered via the kernel)."""
        self.kernel.send(self.agent_id, receiver, topic, payload,
                         delay=delay)

    def on_message(self, message: Message) -> None:
        """React to one delivered message (already in :attr:`inbox`)."""


class EventKernel:
    """The deterministic event loop agents and schedules run on.

    Parameters
    ----------
    tracer:
        Structured-event tracer for lifecycle/traffic events; ``None``
        uses the zero-overhead :data:`~repro.obs.NULL_TRACER`.
    """

    def __init__(self, tracer: Tracer | None = None) -> None:
        self._clock = Clock()
        self._queue: list[
            tuple[float, int, int, Callable[[], None]]
        ] = []
        self._seq = 0
        self._agents: dict[str, Agent] = {}
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._messages_delivered = 0
        self._messages_dropped = 0

    # -- introspection -------------------------------------------------------------

    @property
    def clock(self) -> Clock:
        """The kernel's logical clock."""
        return self._clock

    @property
    def num_pending(self) -> int:
        """Events still queued."""
        return len(self._queue)

    @property
    def messages_delivered(self) -> int:
        """Messages delivered to a mailbox so far."""
        return self._messages_delivered

    @property
    def messages_dropped(self) -> int:
        """Messages whose receiver had departed before delivery."""
        return self._messages_dropped

    def restore_message_counters(self, delivered: int,
                                 dropped: int) -> None:
        """Seed the traffic counters from a checkpoint (resume path)."""
        if delivered < 0 or dropped < 0:
            raise ConfigurationError(
                "message counters must be >= 0, got "
                f"delivered={delivered}, dropped={dropped}"
            )
        self._messages_delivered = int(delivered)
        self._messages_dropped = int(dropped)

    @property
    def agent_ids(self) -> tuple[str, ...]:
        """Ids of the currently registered agents, registration order."""
        return tuple(self._agents)

    def agent(self, agent_id: str) -> Agent:
        """Look one registered agent up by id."""
        try:
            return self._agents[agent_id]
        except KeyError as error:
            raise ConfigurationError(
                f"no agent {agent_id!r} is registered"
            ) from error

    def has_agent(self, agent_id: str) -> bool:
        """Whether an agent with this id is currently registered."""
        return agent_id in self._agents

    # -- agent lifecycle -----------------------------------------------------------

    def register(self, agent: Agent, *, slot: int | None = None) -> Agent:
        """Attach an agent; emits an ``agent_spawn`` trace event."""
        if agent.agent_id in self._agents:
            raise ConfigurationError(
                f"agent id {agent.agent_id!r} is already registered"
            )
        agent._kernel = self
        self._agents[agent.agent_id] = agent
        if self._tracer.enabled:
            payload: dict[str, object] = {
                "agent": agent.agent_id, "agent_kind": agent.kind,
                "time": self._clock.now,
            }
            if slot is not None:
                payload["slot"] = int(slot)
            self._tracer.emit("agent_spawn", **payload)
        return agent

    def deregister(self, agent_id: str, *, slot: int | None = None) -> Agent:
        """Detach an agent; emits an ``agent_depart`` trace event.

        In-flight messages addressed to the departed agent are dropped
        at delivery time (counted in :attr:`messages_dropped`), which is
        exactly the organic-churn semantics: a seller that left
        mid-round simply never acknowledges the collect request.
        """
        agent = self.agent(agent_id)
        del self._agents[agent_id]
        agent._kernel = None
        if self._tracer.enabled:
            payload: dict[str, object] = {
                "agent": agent.agent_id, "agent_kind": agent.kind,
                "time": self._clock.now,
            }
            if slot is not None:
                payload["slot"] = int(slot)
            self._tracer.emit("agent_depart", **payload)
        return agent

    # -- scheduling ----------------------------------------------------------------

    def schedule(self, time: float, callback: Callable[[], None], *,
                 phase: int = TICK) -> None:
        """Queue ``callback`` to run at logical ``time`` in ``phase``."""
        if phase not in _PHASES:
            raise ConfigurationError(
                f"phase must be one of {_PHASES}, got {phase}"
            )
        time = float(time)
        if time < self._clock.now:
            raise ConfigurationError(
                f"cannot schedule into the past: now={self._clock.now}, "
                f"requested {time}"
            )
        heapq.heappush(self._queue, (time, phase, self._seq, callback))
        self._seq += 1

    def send(self, sender: str, receiver: str, topic: str,
             payload: dict[str, object] | None = None, *,
             delay: float = 0.0) -> None:
        """Queue a message for delivery ``delay`` after the current time."""
        if delay < 0.0:
            raise ConfigurationError(
                f"message delay must be >= 0, got {delay}"
            )
        deliver_at = self._clock.now + float(delay)
        message = Message(topic, sender, receiver, deliver_at,
                          dict(payload) if payload else {})
        self.schedule(deliver_at, lambda: self._deliver(message),
                      phase=DELIVER)

    def _deliver(self, message: Message) -> None:
        agent = self._agents.get(message.receiver)
        if agent is None:
            # Receiver departed between send and delivery — organic
            # churn drops the message on the floor, deterministically.
            self._messages_dropped += 1
            return
        agent.inbox.append(message)
        self._messages_delivered += 1
        if self._tracer.enabled:
            self._tracer.emit(
                "message_delivered", topic=message.topic,
                sender=message.sender, receiver=message.receiver,
                time=message.time,
            )
        agent.on_message(message)

    # -- execution -----------------------------------------------------------------

    def step(self) -> bool:
        """Run the next queued event; ``False`` when the queue is empty."""
        if not self._queue:
            return False
        time, _phase, _seq, callback = heapq.heappop(self._queue)
        self._clock._advance(time)
        callback()
        return True

    def run(self, until: float | None = None) -> int:
        """Run queued events in order; returns how many were executed.

        Parameters
        ----------
        until:
            Inclusive logical-time horizon; ``None`` drains the queue.
            Events scheduled *by* executed events are honoured as long
            as they fall within the horizon.
        """
        executed = 0
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                break
            self.step()
            executed += 1
        return executed
