"""The market's request front-end: :class:`MarketService`.

``MarketService`` is the in-process client API that ``repro serve``
exposes: sellers **register** (opening a session on a free population
slot), clients **quote** a session's learned standing, **trade**
advances the market by whole rounds, and **close** retires a session
with its participation summary.  Every request is a plain-dict
in / plain-dict out call, so the same surface works as a library API,
from the CLI, and from the load generator.

The service owns a :class:`~repro.runtime.market.MarketRuntime` started
with an *empty* floor by default (``start_online=False``): the seller
population is pre-sampled (the config's seed fixes everyone's costs and
qualities), and a registration claims the lowest vacant slot identity.
Passing ``start_online=True`` (or a churn spec) reproduces the batch
posture where every slot is online from round 0 — that is what the
``runtime-smoke`` equivalence check serves.

Determinism: requests are the only nondeterminism source a service run
has.  The same request sequence against the same config yields a
bit-identical trade ledger (see
:func:`repro.runtime.loadgen.replay_script`, which replays recorded
request scripts for exactly this reason).
"""

from __future__ import annotations

import os

import numpy as np

from repro.bandits.base import SelectionPolicy
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.resilience.shutdown import ShutdownSignal
from repro.runtime.arrivals import ChurnProcess, ChurnSpec
from repro.runtime.market import MarketRuntime
from repro.sim.config import SimulationConfig
from repro.sim.results import RunMetrics

__all__ = ["MarketService"]


class MarketService:
    """Register / quote / trade / close over a :class:`MarketRuntime`.

    Parameters
    ----------
    config:
        Simulation parameters (slots, rounds, pricing bounds, seed).
    policy:
        Selection policy; ``None`` uses the paper's CMAB-HS UCB policy.
    churn:
        Optional organic churn (spec or pre-built process).
    start_online:
        ``False`` (default) starts with no seller online — sessions are
        opened by ``register`` requests.  ``True`` brings every slot
        online immediately (the batch posture).
    tracer / metrics:
        Optional observability objects, passed through to the runtime.
    """

    def __init__(self, config: SimulationConfig,
                 policy: SelectionPolicy | None = None, *,
                 churn: ChurnProcess | ChurnSpec | None = None,
                 start_online: bool = False,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self._runtime = MarketRuntime(
            config, policy, churn=churn, start_online=start_online,
            tracer=tracer, metrics=metrics,
        )

    @property
    def runtime(self) -> MarketRuntime:
        """The runtime this service fronts."""
        return self._runtime

    # -- requests ------------------------------------------------------------------

    def register(self, slot: int | None = None) -> dict[str, int]:
        """Open a seller session; returns ``{"session", "slot", "round"}``.

        ``slot=None`` claims the lowest vacant population slot.  Raises
        :class:`~repro.exceptions.ConfigurationError` when every slot is
        already online.
        """
        session, opened_slot = self._runtime.open_session(slot)
        return {"session": session, "slot": opened_slot,
                "round": self._runtime.next_round}

    def quote(self, session: int) -> dict[str, object]:
        """A session's learned standing and the market's last prices."""
        runtime = self._runtime
        slot = runtime.session_slot(session)
        state = runtime.learning_state
        records = runtime.ledger.records
        last = records[-1] if records else None
        return {
            "session": int(session),
            "slot": slot,
            "round": runtime.next_round,
            "estimate": float(state.means[slot]),
            "observations": int(state.counts[slot]),
            "service_price": (last.service_price if last is not None
                              else None),
            "collection_price": (last.collection_price if last is not None
                                 else None),
        }

    def trade(self, rounds: int = 1, *,
              shutdown: ShutdownSignal | None = None,
              checkpoint_path: str | os.PathLike | None = None,
              checkpoint_every: int = 0) -> dict[str, object]:
        """Advance the market by up to ``rounds`` whole rounds.

        Returns the rounds actually played (0 once the runtime's round
        budget is exhausted) and the settled trades of this request.
        """
        runtime = self._runtime
        before = len(runtime.ledger)
        played = runtime.advance(rounds, shutdown=shutdown,
                                 checkpoint_path=checkpoint_path,
                                 checkpoint_every=checkpoint_every)
        trades: list[dict[str, object]] = [
            {
                "round": record.round_index,
                "participants": np.asarray(record.participants).size,
                "service_price": record.service_price,
                "collection_price": record.collection_price,
                "tau_total": record.tau_total,
                "realized": record.realized,
            }
            for record in runtime.ledger.records[before:]
        ]
        return {"rounds_played": played,
                "next_round": runtime.next_round,
                "trades": trades}

    def close(self, session: int) -> dict[str, int]:
        """Close a session; returns its participation summary."""
        return self._runtime.close_session(session)

    def status(self) -> dict[str, object]:
        """A snapshot of the market's standing (no RNG, no mutation)."""
        runtime = self._runtime
        return {
            "round": runtime.next_round,
            "num_rounds": runtime.num_rounds,
            "policy": runtime.policy.name,
            "online": runtime.num_online,
            "slots": runtime.config.num_sellers,
            "sessions_opened": runtime.sessions_opened,
            "sessions_closed": runtime.sessions_closed,
            "trades": len(runtime.ledger),
            "messages_delivered": runtime.kernel.messages_delivered,
            "messages_dropped": runtime.kernel.messages_dropped,
        }

    def metrics(self) -> RunMetrics:
        """Run metrics over the rounds traded so far."""
        return self._runtime.metrics()
