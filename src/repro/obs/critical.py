"""Critical-path analysis over JSONL traces.

``repro trace summarize`` answers "how long did each phase take on
average"; this module answers the sharper question "which chain of
phases dominated the wall clock".  It re-reads a JSONL trace (in the
same tolerant mode as :func:`~repro.obs.summarize.summarize_trace`),
buckets every ``duration_s``-carrying span into a *lane* (the main
process, or ``worker <id>`` for parallel sweeps) and a *phase*, then
walks the phase hierarchy::

    seed > run > round > {selection, equilibrium solve}

picking the heaviest child at each level.  The result names the
wall-clock-dominating chain — e.g. ``seed > run > round > equilibrium
solve`` with per-link totals and the share of its parent each link
explains — and, for parallel traces, the straggler worker lane that
bounds the sweep.

Everything here is pure aggregation over recorded durations: no
clocks, no RNG, deterministic for a given trace file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.obs.summarize import read_trace

__all__ = ["CriticalPathReport", "Lane", "PathLink", "critical_path"]

#: Phase label of each duration-carrying event kind (the main lane).
_PHASE_OF_KIND = {
    "selection": "selection",
    "equilibrium": "equilibrium solve",
    "round_end": "round",
    "checkpoint": "checkpoint",
    "run_end": "run",
    "seed_end": "seed",
}

#: The containment hierarchy the path walk descends.  A phase's
#: children are phases whose spans nest inside it; the walk picks the
#: heaviest child at every level until it reaches a leaf.
_PHASE_CHILDREN = {
    "seed": ("run", "checkpoint"),
    "run": ("round", "checkpoint"),
    "round": ("selection", "equilibrium solve"),
}

#: Which phase the walk starts from, in preference order — the
#: outermost phase the trace actually recorded.
_ROOT_PREFERENCE = ("seed", "run", "round")


@dataclass(frozen=True)
class PathLink:
    """One link of the dominating chain."""

    phase: str
    calls: int
    total_s: float
    #: Fraction of the parent link's total this link explains
    #: (1.0 for the root link).
    share_of_parent: float

    def to_dict(self) -> dict:
        return {
            "phase": self.phase,
            "calls": self.calls,
            "total_s": self.total_s,
            "share_of_parent": self.share_of_parent,
        }


@dataclass(frozen=True)
class Lane:
    """One execution lane's aggregate span time."""

    name: str
    calls: int
    total_s: float

    def to_dict(self) -> dict:
        return {"name": self.name, "calls": self.calls,
                "total_s": self.total_s}


@dataclass
class CriticalPathReport:
    """The dominating chain plus per-lane totals of one trace."""

    path: str
    chain: list[PathLink] = field(default_factory=list)
    lanes: list[Lane] = field(default_factory=list)
    #: The straggler worker lane for parallel traces (``None`` for
    #: serial traces).
    slowest_lane: str | None = None
    skipped_lines: int = 0

    @property
    def dominant(self) -> str | None:
        """``"seed > run > round > equilibrium solve"``-style chain name."""
        if not self.chain:
            return None
        return " > ".join(link.phase for link in self.chain)

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "trace": self.path,
            "dominant": self.dominant,
            "chain": [link.to_dict() for link in self.chain],
            "lanes": [lane.to_dict() for lane in self.lanes],
            "slowest_lane": self.slowest_lane,
            "skipped_lines": self.skipped_lines,
        }

    def to_text(self) -> str:
        """The text block ``repro trace critical-path`` prints."""
        lines = [f"trace {self.path}"]
        if self.skipped_lines:
            lines.append(
                f"skipped {self.skipped_lines} malformed line"
                f"{'s' if self.skipped_lines != 1 else ''}"
            )
        if not self.chain:
            lines.append("no timed spans recorded — nothing to analyse")
            return "\n".join(lines)
        lines.append(f"critical path: {self.dominant}")
        lines.append("")
        lines.append(f"{'phase':<22} {'calls':>8} {'total':>10} "
                     f"{'of parent':>10}")
        for link in self.chain:
            lines.append(
                f"{link.phase:<22} {link.calls:>8} "
                f"{link.total_s:>9.3f}s {link.share_of_parent:>9.1%}"
            )
        worker_lanes = [lane for lane in self.lanes
                        if lane.name.startswith("worker ")]
        if worker_lanes:
            lines.append("")
            lines.append("worker lanes (slowest bounds the sweep):")
            for lane in sorted(worker_lanes,
                               key=lambda lane: -lane.total_s):
                marker = ("  <- critical"
                          if lane.name == self.slowest_lane else "")
                lines.append(
                    f"  {lane.name:<20} {lane.calls:>6} tasks "
                    f"{lane.total_s:>9.3f}s{marker}"
                )
        return "\n".join(lines)


def critical_path(path: str) -> CriticalPathReport:
    """Analyse one JSONL trace file's wall-clock-dominating chain.

    Malformed lines are skipped and counted, mirroring
    :func:`~repro.obs.summarize.summarize_trace`.

    Raises
    ------
    ConfigurationError
        Only when the file itself cannot be read.
    """
    report = CriticalPathReport(path=str(path))
    totals: dict[str, float] = {}
    calls: dict[str, int] = {}

    def count_skipped(line_number: int, line: str,
                      error: ConfigurationError) -> None:
        report.skipped_lines += 1

    for event in read_trace(path, on_malformed=count_skipped):
        duration = event.payload.get("duration_s")
        if not isinstance(duration, (int, float)):
            continue
        if event.kind == "worker_task_done":
            phase = f"worker {event.payload.get('worker', '?')}"
        else:
            phase = _PHASE_OF_KIND.get(event.kind)
            if phase is None:
                continue
        totals[phase] = totals.get(phase, 0.0) + float(duration)
        calls[phase] = calls.get(phase, 0) + 1

    report.lanes = [
        Lane(name=name, calls=calls[name], total_s=totals[name])
        for name in sorted(totals)
    ]
    worker_lanes = [lane for lane in report.lanes
                    if lane.name.startswith("worker ")]
    if worker_lanes:
        report.slowest_lane = max(
            worker_lanes, key=lambda lane: (lane.total_s, lane.name)
        ).name

    root = next((name for name in _ROOT_PREFERENCE if name in totals),
                None)
    if root is None:
        return report

    chain = [PathLink(phase=root, calls=calls[root],
                      total_s=totals[root], share_of_parent=1.0)]
    current = root
    while True:
        children = [child for child in _PHASE_CHILDREN.get(current, ())
                    if child in totals]
        if not children:
            break
        heaviest = max(children, key=lambda child: (totals[child], child))
        parent_total = totals[current]
        share = (totals[heaviest] / parent_total
                 if parent_total > 0.0 else 0.0)
        chain.append(PathLink(
            phase=heaviest,
            calls=calls[heaviest],
            total_s=totals[heaviest],
            share_of_parent=share,
        ))
        current = heaviest
    report.chain = chain
    return report
