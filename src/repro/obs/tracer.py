"""Tracers and pluggable sinks for structured runtime events.

A :class:`Tracer` fans :class:`~repro.obs.events.TraceEvent`\\ s out to
one or more sinks:

* :class:`RingBufferSink` — bounded in-memory buffer, for tests and
  interactive inspection;
* :class:`JsonlSink` — one JSON object per line, the on-disk format
  ``repro trace summarize`` reads;
* :class:`LoggingSink` — adapter onto stdlib :mod:`logging`, so traces
  can ride an application's existing log pipeline.

The default everywhere is :data:`NULL_TRACER`, a :class:`NullTracer`
whose ``enabled`` flag is ``False`` — instrumented call sites guard
payload construction with ``if tracer.enabled:`` so an untraced run
performs no event work at all (and stays bit-identical, since tracing
never touches an RNG stream).
"""

from __future__ import annotations

import collections
import json
import logging
import os

from repro.exceptions import ConfigurationError
from repro.obs.events import TraceEvent, _jsonable

#: One shared compact encoder: building a fresh ``JSONEncoder`` per
#: ``json.dumps(..., separators=...)`` call costs more than the encode
#: itself on the small per-event records the runtime emits.
_encode = json.JSONEncoder(check_circular=False,
                           separators=(",", ":")).encode

_escape_string = json.encoder.encode_basestring_ascii
_INF = float("inf")


def _scalar_json(value) -> str | None:
    """One scalar as JSON text, or ``None`` if it needs the full encoder.

    Floats are written at 6 significant digits (``%.6g``): the shortest
    exact ``repr`` is the single largest cost of serialising an event,
    and traces are diagnostics, not checkpoints — runtime state is never
    reconstructed from them.  Non-finite floats use the same spellings
    ``json`` itself reads and writes (``Infinity``/``NaN``).
    """
    kind = type(value)
    if kind is float:
        if value != value:
            return "NaN"
        if value == _INF:
            return "Infinity"
        if value == -_INF:
            return "-Infinity"
        return f"{value:.6g}"
    if kind is int:
        return str(value)
    if kind is str:
        return _escape_string(value)
    if kind is bool:
        return "true" if value else "false"
    if value is None:
        return "null"
    return None


def _encode_record(kind: str, round_index, payload: dict) -> str:
    """One event's JSONL line, skipping :class:`json.JSONEncoder`.

    Event records are almost always flat dicts of scalars and scalar
    lists; serialising those directly runs ~2x faster per event than
    ``to_dict()`` + the stdlib encoder.  Anything the fast path does not
    recognise falls back to the stdlib encoder for the whole record.
    """
    parts = ['"kind":' + _escape_string(kind)]
    if round_index is not None:
        parts.append(f'"round":{int(round_index)}')
    for key, value in payload.items():
        encoded = _scalar_json(value)
        if encoded is None:
            value = _jsonable(value)
            if type(value) is list:
                encoded = _list_json(value)
            else:
                encoded = _scalar_json(value)
            if encoded is None:
                fallback = TraceEvent(kind=kind, round_index=round_index,
                                      payload=payload)
                return _encode(fallback.to_dict())
        parts.append(_escape_string(key) + ":" + encoded)
    return "{" + ",".join(parts) + "}"


def _encode_event(event: TraceEvent) -> str:
    """The event's JSONL line (see :func:`_encode_record`)."""
    return _encode_record(event.kind, event.round_index, event.payload)


class _Unsupported(Exception):
    """Internal signal: hand the whole record to the stdlib encoder."""


def _item_json(value) -> str:
    """One list element as JSON text; raises :class:`_Unsupported`."""
    encoded = _scalar_json(value)
    if encoded is None:
        raise _Unsupported
    return encoded


def _list_json(items: list) -> str | None:
    """A flat scalar list as JSON text, or ``None`` for the full encoder.

    Event lists (selected sellers, UCB indices) are homogeneous, so one
    leading type check buys a ``join`` over a typed comprehension
    instead of a dispatch call per element.  ``x - x == 0.0`` is a
    finiteness test: it is false for every NaN and infinity.
    """
    if not items:
        return "[]"
    first = type(items[0])
    try:
        if first is float:
            return "[" + ",".join([
                f"{x:.6g}" if type(x) is float and x - x == 0.0
                else _item_json(x) for x in items
            ]) + "]"
        if first is int:
            return "[" + ",".join([
                str(x) if type(x) is int else _item_json(x) for x in items
            ]) + "]"
        return "[" + ",".join([_item_json(x) for x in items]) + "]"
    except _Unsupported:
        return None

__all__ = [
    "TraceSink",
    "RingBufferSink",
    "JsonlSink",
    "LoggingSink",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]


class TraceSink:
    """Interface every tracer sink implements."""

    def handle(self, event: TraceEvent) -> None:
        """Consume one event."""
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered events to their backing store (default no-op)."""

    def close(self) -> None:
        """Release resources (default: flush)."""
        self.flush()


class RingBufferSink(TraceSink):
    """Keeps the last ``capacity`` events in memory.

    Parameters
    ----------
    capacity:
        Maximum events retained; older events are evicted first.
    """

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"ring-buffer capacity must be positive, got {capacity}"
            )
        self._buffer: collections.deque[TraceEvent] = collections.deque(
            maxlen=int(capacity)
        )

    @property
    def capacity(self) -> int:
        """Maximum number of retained events."""
        return int(self._buffer.maxlen)

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """The retained events, oldest first."""
        return tuple(self._buffer)

    def handle(self, event: TraceEvent) -> None:
        self._buffer.append(event)

    def of_kind(self, kind: str) -> tuple[TraceEvent, ...]:
        """The retained events of one kind, oldest first."""
        return tuple(e for e in self._buffer if e.kind == kind)

    def clear(self) -> None:
        """Drop every retained event."""
        self._buffer.clear()


class JsonlSink(TraceSink):
    """Appends events to a file as JSON Lines.

    The file is opened eagerly so an unwritable path fails at
    construction time with a :class:`ConfigurationError` instead of
    mid-run.  Encoded lines are batched and written every
    :data:`_WRITE_BATCH` events (or on :meth:`flush`), sparing a file
    write per event on the hot path.

    Parameters
    ----------
    path:
        Destination file; truncated on open (a trace describes one
        invocation).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = os.fspath(path)
        self._pending: list[str] = []
        try:
            self._handle = open(self._path, "w", encoding="utf-8")
        except OSError as error:
            raise ConfigurationError(
                f"cannot open trace file {self._path!r} for writing: {error}"
            ) from error

    @property
    def path(self) -> str:
        """The destination file path."""
        return self._path

    def handle(self, event: TraceEvent) -> None:
        self.handle_raw(event.kind, event.round_index, event.payload)

    def handle_raw(self, kind: str, round_index, payload: dict) -> None:
        if self._handle is None:
            raise ConfigurationError(
                f"trace file {self._path!r} is already closed"
            )
        pending = self._pending
        pending.append(_encode_record(kind, round_index, payload))
        if len(pending) >= _WRITE_BATCH:
            self._handle.write("\n".join(pending) + "\n")
            pending.clear()

    def flush(self) -> None:
        if self._handle is not None:
            if self._pending:
                self._handle.write("\n".join(self._pending) + "\n")
                self._pending.clear()
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None


#: Encoded lines buffered by :class:`JsonlSink` before a file write.
_WRITE_BATCH = 256


class LoggingSink(TraceSink):
    """Forwards events to a stdlib :class:`logging.Logger`.

    Parameters
    ----------
    logger:
        Target logger; ``None`` uses ``repro.trace``.
    level:
        Log level events are emitted at (default ``DEBUG`` so traces
        stay out of the way unless explicitly enabled).
    """

    def __init__(self, logger: logging.Logger | None = None,
                 level: int = logging.DEBUG) -> None:
        self._logger = logger if logger is not None else logging.getLogger(
            "repro.trace"
        )
        self._level = int(level)

    def handle(self, event: TraceEvent) -> None:
        if self._logger.isEnabledFor(self._level):
            record = event.to_dict()
            kind = record.pop("kind")
            self._logger.log(self._level, "%s %s", kind,
                             json.dumps(record, separators=(",", ":")))


class Tracer:
    """Fans structured events out to pluggable sinks.

    Parameters
    ----------
    *sinks:
        Any number of :class:`TraceSink` instances.  A tracer with no
        sinks is legal (it still counts events).
    """

    #: Instrumented call sites check this before building payloads; the
    #: :class:`NullTracer` subclass overrides it to ``False``.
    enabled = True

    def __init__(self, *sinks: TraceSink) -> None:
        self._sinks = list(sinks)
        self._num_events = 0
        # When every sink can consume (kind, round, payload) directly,
        # emit() skips building a TraceEvent per call.
        self._all_raw = bool(sinks) and all(
            hasattr(sink, "handle_raw") for sink in sinks
        )

    @property
    def sinks(self) -> tuple[TraceSink, ...]:
        """The attached sinks."""
        return tuple(self._sinks)

    @property
    def num_events(self) -> int:
        """How many events have been emitted through this tracer."""
        return self._num_events

    def emit(self, kind: str, round_index: int | None = None,
             **payload) -> None:
        """Build one event and hand it to every sink."""
        self._num_events += 1
        if self._all_raw:
            for sink in self._sinks:
                sink.handle_raw(kind, round_index, payload)
            return
        event = TraceEvent(kind=kind, round_index=round_index,
                           payload=payload)
        for sink in self._sinks:
            sink.handle(event)

    def flush(self) -> None:
        """Flush every sink."""
        for sink in self._sinks:
            sink.flush()

    def close(self) -> None:
        """Close every sink."""
        for sink in self._sinks:
            sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullTracer(Tracer):
    """The zero-overhead default: accepts events, does nothing.

    ``enabled`` is ``False``, so guarded call sites skip payload
    construction entirely; an unguarded :meth:`emit` is still safe (and
    still a no-op).
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def emit(self, kind: str, round_index: int | None = None,
             **payload) -> None:
        pass


#: Shared no-op tracer used as the default by every instrumented API.
NULL_TRACER = NullTracer()
