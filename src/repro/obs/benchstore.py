"""Benchmark history store with regression gates.

``BENCH_micro.json`` / ``BENCH_parallel.json`` hold the repo's
performance trajectory: one machine-tagged record per benchmark run
(git SHA, host, scale, M, K, rounds/sec, peak MiB, wall-clock),
appended over time so "did the vectorization arc actually deliver 50×"
is answerable from committed history rather than anecdote.

Three layers:

* :class:`BenchRecord` — one measurement.  Records flagged
  ``baseline=True`` are the committed reference the regression gate
  compares against (the newest baseline per benchmark name wins).
* :class:`BenchStore` — load/append/save over one JSON history file,
  via the same :func:`~repro.sim.persistence.atomic_write_json`
  machinery checkpoints use; corrupt files surface as
  :class:`~repro.exceptions.PersistenceError`.
* :func:`compare` — the regression verdict: for every benchmark name
  with both a baseline and a later measurement, fail on a >20%
  rounds/sec drop or >25% peak-memory growth (thresholds
  configurable; CI's hard gate re-runs with ``--max-slowdown 0.5``,
  i.e. "fail only on a >2x drop", to ride out shared-runner noise).

Exposed on the CLI as ``repro bench record | history | compare``;
``benchmarks/conftest.py`` appends records automatically when
``REPRO_BENCH_RECORD=1``.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError, PersistenceError

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchRecord",
    "BenchStore",
    "ComparisonResult",
    "ComparisonVerdict",
    "compare",
    "current_git_sha",
    "machine_tag",
]

BENCH_SCHEMA_VERSION = 1

#: Default regression thresholds (fractions, not percent).
DEFAULT_MAX_SLOWDOWN = 0.20
DEFAULT_MAX_MEMORY_GROWTH = 0.25


def current_git_sha(repo_dir: str | None = None) -> str:
    """The short git SHA of ``repo_dir`` (or CWD), or ``"unknown"``."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_dir, capture_output=True, text=True, timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = output.stdout.strip()
    return sha if output.returncode == 0 and sha else "unknown"


def machine_tag() -> str:
    """A short host descriptor (``hostname/machine``) for records."""
    node = platform.node() or "unknown-host"
    return f"{node}/{platform.machine() or 'unknown-arch'}"


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark measurement.

    ``name`` identifies the benchmark (e.g. ``engine.scalar.m300``);
    history and comparisons group by it.  ``baseline=True`` marks the
    committed reference record the regression gate compares against.
    """

    name: str
    rounds_per_s: float
    wall_s: float
    peak_mb: float | None = None
    sellers: int | None = None
    selected: int | None = None
    rounds: int | None = None
    scale: str | None = None
    git_sha: str = "unknown"
    machine: str = "unknown"
    timestamp: float = 0.0
    baseline: bool = False
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("benchmark record needs a name")
        if self.rounds_per_s < 0.0 or self.wall_s < 0.0:
            raise ConfigurationError(
                f"benchmark record {self.name!r} has negative "
                f"rounds_per_s/wall_s"
            )

    @classmethod
    def measure(cls, *, name: str, rounds: int, wall_s: float,
                peak_mb: float | None = None,
                sellers: int | None = None, selected: int | None = None,
                scale: str | None = None, baseline: bool = False,
                extra: dict | None = None) -> "BenchRecord":
        """Build a machine-tagged record from one timed run."""
        if wall_s <= 0.0:
            raise ConfigurationError(
                f"benchmark {name!r} measured non-positive wall time "
                f"{wall_s!r}"
            )
        return cls(
            name=name,
            rounds_per_s=rounds / wall_s,
            wall_s=wall_s,
            peak_mb=peak_mb,
            sellers=sellers,
            selected=selected,
            rounds=rounds,
            scale=scale,
            git_sha=current_git_sha(),
            machine=machine_tag(),
            timestamp=time.time(),
            baseline=baseline,
            extra=dict(extra or {}),
        )

    def to_dict(self) -> dict:
        record = {
            "name": self.name,
            "rounds_per_s": self.rounds_per_s,
            "wall_s": self.wall_s,
            "peak_mb": self.peak_mb,
            "sellers": self.sellers,
            "selected": self.selected,
            "rounds": self.rounds,
            "scale": self.scale,
            "git_sha": self.git_sha,
            "machine": self.machine,
            "timestamp": self.timestamp,
            "baseline": self.baseline,
        }
        if self.extra:
            record["extra"] = dict(self.extra)
        return record

    @classmethod
    def from_dict(cls, record: dict, *, what: str) -> "BenchRecord":
        if not isinstance(record, dict):
            raise PersistenceError(
                f"{what}: benchmark record must be a JSON object, "
                f"got {type(record).__name__}"
            )
        try:
            return cls(
                name=str(record["name"]),
                rounds_per_s=float(record["rounds_per_s"]),
                wall_s=float(record["wall_s"]),
                peak_mb=(None if record.get("peak_mb") is None
                         else float(record["peak_mb"])),
                sellers=(None if record.get("sellers") is None
                         else int(record["sellers"])),
                selected=(None if record.get("selected") is None
                          else int(record["selected"])),
                rounds=(None if record.get("rounds") is None
                        else int(record["rounds"])),
                scale=(None if record.get("scale") is None
                       else str(record["scale"])),
                git_sha=str(record.get("git_sha", "unknown")),
                machine=str(record.get("machine", "unknown")),
                timestamp=float(record.get("timestamp", 0.0)),
                baseline=bool(record.get("baseline", False)),
                extra=dict(record.get("extra", {})),
            )
        except (KeyError, TypeError, ValueError, ConfigurationError
                ) as error:
            raise PersistenceError(
                f"{what}: malformed benchmark record: {error}"
            ) from error


class BenchStore:
    """One ``BENCH_*.json`` history file: load, append, query, save."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self._records: list[BenchRecord] = []
        if os.path.exists(self.path):
            self._load()

    def _load(self) -> None:
        what = f"benchmark history {self.path!r}"
        try:
            with open(self.path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (json.JSONDecodeError, UnicodeDecodeError, OSError
                ) as error:
            raise PersistenceError(
                f"{what} is corrupt or unreadable: {error}",
                path=self.path,
            ) from error
        if not isinstance(payload, dict):
            raise PersistenceError(
                f"{what} does not hold a JSON object", path=self.path
            )
        found = payload.get("schema_version")
        if found is not None and int(found) != BENCH_SCHEMA_VERSION:
            raise PersistenceError(
                f"{what} has an unsupported schema version",
                path=self.path, schema_found=int(found),
                schema_expected=BENCH_SCHEMA_VERSION,
            )
        records = payload.get("records", [])
        if not isinstance(records, list):
            raise PersistenceError(
                f"{what} field 'records' must be a list", path=self.path
            )
        self._records = [
            BenchRecord.from_dict(record, what=what) for record in records
        ]

    def __len__(self) -> int:
        return len(self._records)

    def records(self, name: str | None = None) -> list[BenchRecord]:
        """All records, oldest first, optionally filtered by name."""
        if name is None:
            return list(self._records)
        return [record for record in self._records
                if record.name == name]

    def names(self) -> list[str]:
        """Every benchmark name present, sorted."""
        return sorted({record.name for record in self._records})

    def latest(self, name: str) -> BenchRecord | None:
        """The newest (last-appended) record for ``name``."""
        for record in reversed(self._records):
            if record.name == name:
                return record
        return None

    def baseline(self, name: str) -> BenchRecord | None:
        """The newest record for ``name`` flagged ``baseline=True``."""
        for record in reversed(self._records):
            if record.name == name and record.baseline:
                return record
        return None

    def append(self, record: BenchRecord) -> None:
        """Append one record and persist the store atomically."""
        self._records.append(record)
        self.save()

    def save(self) -> None:
        """Write the history file atomically."""
        # Imported lazily: repro.sim pulls the whole engine stack in,
        # which itself imports repro.obs — a module-level import here
        # would be circular.
        from repro.sim.persistence import atomic_write_json

        atomic_write_json(self.path, {
            "schema_version": BENCH_SCHEMA_VERSION,
            "records": [record.to_dict() for record in self._records],
        })


@dataclass(frozen=True)
class ComparisonResult:
    """Baseline-vs-latest verdict for one benchmark name."""

    name: str
    baseline: BenchRecord
    latest: BenchRecord
    #: latest/baseline rounds-per-second (<1 means slower).
    speed_ratio: float
    #: latest/baseline peak memory (``None`` when either lacks it).
    memory_ratio: float | None
    regressions: tuple[str, ...]

    @property
    def regressed(self) -> bool:
        return bool(self.regressions)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "baseline": self.baseline.to_dict(),
            "latest": self.latest.to_dict(),
            "speed_ratio": self.speed_ratio,
            "memory_ratio": self.memory_ratio,
            "regressions": list(self.regressions),
        }


@dataclass(frozen=True)
class ComparisonVerdict:
    """The full ``repro bench compare`` outcome over a store."""

    results: tuple[ComparisonResult, ...]
    #: Names that have a baseline but no later measurement (or vice
    #: versa) — reported, never failed on.
    unmatched: tuple[str, ...]
    max_slowdown: float
    max_memory_growth: float

    @property
    def ok(self) -> bool:
        return not any(result.regressed for result in self.results)

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "ok": self.ok,
            "max_slowdown": self.max_slowdown,
            "max_memory_growth": self.max_memory_growth,
            "results": [result.to_dict() for result in self.results],
            "unmatched": list(self.unmatched),
        }

    def to_text(self) -> str:
        lines = []
        for result in self.results:
            verdict = "REGRESSED" if result.regressed else "ok"
            memory = (f" mem x{result.memory_ratio:.2f}"
                      if result.memory_ratio is not None else "")
            lines.append(
                f"{result.name:<28} speed x{result.speed_ratio:.2f}"
                f"{memory}  [{verdict}]"
            )
            for reason in result.regressions:
                lines.append(f"  - {reason}")
        for name in self.unmatched:
            lines.append(f"{name:<28} (no baseline/measurement pair)")
        if not self.results and not self.unmatched:
            lines.append("no benchmark records to compare")
        lines.append(
            "verdict: " + ("OK" if self.ok else "REGRESSION DETECTED")
        )
        return "\n".join(lines)


def compare(store: BenchStore, *,
            max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
            max_memory_growth: float = DEFAULT_MAX_MEMORY_GROWTH,
            ) -> ComparisonVerdict:
    """Judge every benchmark's latest measurement against its baseline.

    A name regresses when its newest non-baseline record is more than
    ``max_slowdown`` slower (rounds/sec) or more than
    ``max_memory_growth`` hungrier (peak MiB) than its newest
    ``baseline=True`` record.  Names lacking either side are listed as
    unmatched, never failed.

    Raises
    ------
    ConfigurationError
        For nonsensical thresholds.
    """
    if not 0.0 <= max_slowdown < 1.0:
        raise ConfigurationError(
            f"max_slowdown must be in [0, 1), got {max_slowdown!r}"
        )
    if max_memory_growth < 0.0:
        raise ConfigurationError(
            f"max_memory_growth must be >= 0, got {max_memory_growth!r}"
        )
    results = []
    unmatched = []
    for name in store.names():
        baseline = store.baseline(name)
        latest = next(
            (record for record in reversed(store.records(name))
             if not record.baseline),
            None,
        )
        if baseline is None or latest is None:
            unmatched.append(name)
            continue
        speed_ratio = (latest.rounds_per_s / baseline.rounds_per_s
                       if baseline.rounds_per_s > 0.0 else 0.0)
        memory_ratio = None
        if (baseline.peak_mb is not None and latest.peak_mb is not None
                and baseline.peak_mb > 0.0):
            memory_ratio = latest.peak_mb / baseline.peak_mb
        regressions = []
        if speed_ratio < 1.0 - max_slowdown:
            regressions.append(
                f"rounds/sec dropped to {speed_ratio:.0%} of baseline "
                f"({latest.rounds_per_s:,.1f} vs "
                f"{baseline.rounds_per_s:,.1f}; floor "
                f"{1.0 - max_slowdown:.0%})"
            )
        if (memory_ratio is not None
                and memory_ratio > 1.0 + max_memory_growth):
            regressions.append(
                f"peak memory grew to {memory_ratio:.0%} of baseline "
                f"({latest.peak_mb:.1f} MiB vs {baseline.peak_mb:.1f} "
                f"MiB; ceiling {1.0 + max_memory_growth:.0%})"
            )
        results.append(ComparisonResult(
            name=name, baseline=baseline, latest=latest,
            speed_ratio=speed_ratio, memory_ratio=memory_ratio,
            regressions=tuple(regressions),
        ))
    return ComparisonVerdict(
        results=tuple(results), unmatched=tuple(unmatched),
        max_slowdown=max_slowdown, max_memory_growth=max_memory_growth,
    )
