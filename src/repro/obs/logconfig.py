"""One entry point for the library's stdlib-``logging`` configuration.

The library logs under the ``repro`` namespace and never configures
handlers on import (library best practice); applications and the CLI
opt in through :func:`configure_logging`.  Modules obtain their logger
via :func:`get_logger` so everything hangs off the same root.
"""

from __future__ import annotations

import logging
import sys

from repro.exceptions import ConfigurationError

__all__ = ["LOGGER_NAME", "configure_logging", "get_logger"]

#: Root logger name of the whole library.
LOGGER_NAME = "repro"

#: Marker attribute identifying handlers installed by
#: :func:`configure_logging`, so reconfiguration replaces (never
#: duplicates) them.
_HANDLER_TAG = "_repro_obs_handler"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the library's ``repro`` namespace.

    ``name`` may be a module ``__name__`` (already below ``repro``) or
    any suffix; ``None`` returns the root library logger.
    """
    if name is None or name == LOGGER_NAME:
        return logging.getLogger(LOGGER_NAME)
    if name.startswith(LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")


def configure_logging(level: str | int = "warning",
                      stream=None) -> logging.Logger:
    """Configure the library's logging in one call (idempotent).

    Installs a single stream handler with a compact formatter on the
    ``repro`` root logger and sets its level.  Calling again replaces
    the previous handler instead of stacking duplicates.

    Parameters
    ----------
    level:
        A :mod:`logging` level number or one of ``debug``, ``info``,
        ``warning``, ``error``, ``critical`` (case-insensitive).
    stream:
        Destination stream (default ``sys.stderr``).

    Raises
    ------
    ConfigurationError
        On an unknown level name.
    """
    if isinstance(level, str):
        try:
            resolved = _LEVELS[level.strip().lower()]
        except KeyError:
            known = ", ".join(sorted(_LEVELS))
            raise ConfigurationError(
                f"unknown log level {level!r}; expected one of: {known}"
            ) from None
    else:
        resolved = int(level)
    logger = logging.getLogger(LOGGER_NAME)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler.setFormatter(logging.Formatter(
        "%(asctime)s %(levelname)-7s %(name)s: %(message)s",
        datefmt="%H:%M:%S",
    ))
    setattr(handler, _HANDLER_TAG, True)
    logger.addHandler(handler)
    logger.setLevel(resolved)
    return logger
