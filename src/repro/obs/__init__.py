"""Observability layer: structured tracing, metrics, logging, profiling.

The runtime (engine, CMAB-HS mechanism, fault model, replication
sweeps) threads two optional objects through every run:

* a :class:`Tracer` emitting structured per-round
  :class:`~repro.obs.events.TraceEvent`\\ s (selection with UCB indices,
  the equilibrium ``<p^J*, p*, tau*>``, profits, fault injections,
  checkpoint writes) to pluggable sinks — :class:`RingBufferSink`,
  :class:`JsonlSink`, :class:`LoggingSink` — with the zero-overhead
  :data:`NULL_TRACER` as the default, so untraced runs stay
  bit-identical;
* a :class:`MetricsRegistry` of counters, gauges, and histogram timers
  wrapping the hot paths, snapshot-able into checkpoints so resumed
  runs carry their telemetry forward.

``repro trace summarize <trace.jsonl>`` (backed by
:func:`summarize_trace`) rolls a written trace up into per-phase
timings and counter totals; :func:`configure_logging` is the single
entry point for the library's stdlib-``logging`` setup.
"""

from repro.obs.benchstore import (
    BenchRecord,
    BenchStore,
    ComparisonVerdict,
    compare,
)
from repro.obs.critical import CriticalPathReport, critical_path
from repro.obs.events import EVENT_KINDS, TraceEvent
from repro.obs.logconfig import LOGGER_NAME, configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    QuantileReservoir,
    Timer,
    timed,
)
from repro.obs.profile import PhaseProfiler, ProfileReport
from repro.obs.summarize import (
    PhaseTiming,
    TraceSummary,
    read_trace,
    summarize_trace,
)
from repro.obs.tracer import (
    NULL_TRACER,
    JsonlSink,
    LoggingSink,
    NullTracer,
    RingBufferSink,
    Tracer,
    TraceSink,
)

__all__ = [
    "EVENT_KINDS",
    "TraceEvent",
    "TraceSink",
    "RingBufferSink",
    "JsonlSink",
    "LoggingSink",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Timer",
    "QuantileReservoir",
    "MetricsRegistry",
    "timed",
    "PhaseProfiler",
    "ProfileReport",
    "CriticalPathReport",
    "critical_path",
    "BenchRecord",
    "BenchStore",
    "ComparisonVerdict",
    "compare",
    "LOGGER_NAME",
    "configure_logging",
    "get_logger",
    "PhaseTiming",
    "TraceSummary",
    "read_trace",
    "summarize_trace",
]
