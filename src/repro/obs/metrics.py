"""Counters, gauges, and histogram timers for the trading runtime.

A :class:`MetricsRegistry` is a flat, name-keyed collection of

* :class:`Counter` — monotone event counts (rounds played, no-trade
  rounds, quarantined reports, ...);
* :class:`Gauge` — last-value-wins observations (cumulative regret,
  current prices, per-seller ``n_i``/``qbar_i``);
* :class:`Timer` — duration summaries (count / total / min / p50 / p95
  / max / mean) wrapping the hot paths via :meth:`MetricsRegistry.time`
  or the :func:`timed` decorator.  Quantiles come from a bounded,
  deterministic :class:`QuantileReservoir` (no RNG — sampling decimates
  by a doubling stride, so replayed runs retain the same sample set).

Registries snapshot to plain JSON-serialisable dicts and restore from
them, so checkpoints can embed a run's telemetry and a resumed run
carries its counters forward instead of starting from zero.  Snapshots
written before timers grew quantiles (no ``p50``/``p95``/``samples``
keys) still restore and merge cleanly — the quantile state simply
starts empty.
"""

from __future__ import annotations

import functools
import math
import time
from contextlib import contextmanager

from repro.exceptions import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "QuantileReservoir",
    "Timer",
    "MetricsRegistry",
    "timed",
]

#: Maximum duration samples a :class:`QuantileReservoir` retains.  When
#: the buffer fills it is sorted and every other sample dropped, and the
#: retention stride doubles — memory stays bounded for million-round
#: runs while the retained set still spans the full distribution.
_SAMPLE_CAP = 512


class QuantileReservoir:
    """A bounded, deterministic sample buffer for quantile estimates.

    Uses systematic (stride) decimation instead of random reservoir
    sampling: the deterministic runtime forbids stray RNG draws (lint
    rule RL001), and a stride keeps replayed runs byte-identical.
    Snapshots emit :meth:`sorted_samples` (the retained multiset in
    canonical order), so merging worker snapshots in any completion
    order yields the same state until decimation kicks in; beyond the
    cap the retained subsample depends on arrival order but still
    spans the full distribution.
    """

    __slots__ = ("_samples", "_stride", "_seen")

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._stride = 1
        self._seen = 0

    def add(self, value: float) -> None:
        """Fold one observation in (retained every ``stride``-th call)."""
        index = self._seen
        self._seen += 1
        if index % self._stride == 0:
            samples = self._samples
            samples.append(value)
            if len(samples) >= _SAMPLE_CAP:
                self._compact()

    def _compact(self) -> None:
        """Halve the buffer (sorted, keep every other) and double stride."""
        self._samples.sort()
        del self._samples[::2]
        self._stride *= 2

    def __len__(self) -> int:
        return len(self._samples)

    def quantile(self, q: float) -> float | None:
        """The nearest-rank ``q``-quantile of the retained samples.

        ``None`` before any observation.  Estimates are exact until the
        first decimation (fewer than ``512`` observations), then based
        on the strided subsample.
        """
        samples = self._samples
        if not samples:
            return None
        ordered = sorted(samples)
        index = min(len(ordered) - 1,
                    max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[index]

    def sorted_samples(self) -> list[float]:
        """The retained samples, ascending (the snapshot wire form)."""
        return sorted(self._samples)

    def absorb(self, samples: list[float]) -> None:
        """Fold another reservoir's retained samples in (for merges)."""
        self._samples.extend(float(value) for value in samples)
        self._seen += len(samples)
        self._samples.sort()
        while len(self._samples) >= _SAMPLE_CAP:
            self._compact()

    def restore(self, samples: list[float], seen: int) -> None:
        """Replace the state with a snapshot's retained samples."""
        self._samples = [float(value) for value in samples]
        self._seen = int(seen)
        self._stride = 1
        while self._seen // self._stride > _SAMPLE_CAP:
            self._stride *= 2
        while len(self._samples) >= _SAMPLE_CAP:
            self._compact()


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ConfigurationError(
                f"counters only increase; got increment {amount}"
            )
        self.value += int(amount)


class Gauge:
    """A last-value-wins observation."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Timer:
    """A duration histogram summary: count / total / min / p50 / p95 / max."""

    __slots__ = ("count", "total", "minimum", "maximum", "reservoir")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = 0.0
        self.reservoir = QuantileReservoir()

    def observe(self, seconds: float) -> None:
        """Fold one measured duration into the summary."""
        seconds = float(seconds)
        if seconds < 0.0:
            raise ConfigurationError(
                f"durations cannot be negative, got {seconds}"
            )
        self.count += 1
        self.total += seconds
        self.minimum = min(self.minimum, seconds)
        self.maximum = max(self.maximum, seconds)
        self.reservoir.add(seconds)

    @property
    def mean(self) -> float:
        """Average observed duration (0 before any observation)."""
        return self.total / self.count if self.count else 0.0

    @property
    def p50(self) -> float | None:
        """Median observed duration (``None`` before any observation)."""
        return self.reservoir.quantile(0.50)

    @property
    def p95(self) -> float | None:
        """95th-percentile duration (``None`` before any observation)."""
        return self.reservoir.quantile(0.95)


class MetricsRegistry:
    """Name-keyed counters, gauges, and timers with snapshot/restore."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}

    # -- get-or-create accessors ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter of that name (created on first use)."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge of that name (created on first use)."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def timer(self, name: str) -> Timer:
        """The timer of that name (created on first use)."""
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = Timer()
        return timer

    def set_gauges(self, values: dict[str, float]) -> None:
        """Bulk last-value-wins update of many gauges at once.

        Equivalent to ``gauge(name).set(value)`` per item but without a
        get-or-create round trip each — the engine publishes per-seller
        statistics (O(M) names) through this.
        """
        gauges = self._gauges
        for name, value in values.items():
            gauge = gauges.get(name)
            if gauge is None:
                gauge = gauges[name] = Gauge()
            gauge.value = float(value)

    # -- timing helpers ------------------------------------------------------------

    @contextmanager
    def time(self, name: str):
        """Context manager timing its body into timer ``name``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.timer(name).observe(time.perf_counter() - start)

    # -- views ---------------------------------------------------------------------

    @property
    def counters(self) -> dict[str, int]:
        """Current counter values keyed by name."""
        return {name: c.value for name, c in self._counters.items()}

    @property
    def gauges(self) -> dict[str, float]:
        """Current gauge values keyed by name."""
        return {name: g.value for name, g in self._gauges.items()}

    @property
    def timers(self) -> dict[str, Timer]:
        """The live timer objects keyed by name."""
        return dict(self._timers)

    # -- snapshot / restore ----------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-serialisable copy of every metric.

        Timer minima are emitted as ``None`` when no duration was ever
        observed (``inf`` is not valid JSON).  Quantile fields (``p50``/
        ``p95`` plus the sorted retained ``samples`` that make them
        restorable) are additive — readers of pre-quantile snapshots
        never looked for them, and :meth:`restore`/:meth:`merge` accept
        snapshots without them.
        """
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "timers": {
                n: {
                    "count": t.count,
                    "total": t.total,
                    "min": None if t.count == 0 else t.minimum,
                    "max": t.maximum,
                    "p50": t.p50,
                    "p95": t.p95,
                    "samples": t.reservoir.sorted_samples(),
                }
                for n, t in self._timers.items()
            },
        }

    def restore(self, snapshot: dict) -> None:
        """Replace this registry's contents with a snapshot's.

        Raises
        ------
        ConfigurationError
            If the snapshot does not look like :meth:`snapshot` output.
        """
        if not isinstance(snapshot, dict):
            raise ConfigurationError(
                "metrics snapshot must be a dict, got "
                f"{type(snapshot).__name__}"
            )
        try:
            counters = dict(snapshot.get("counters", {}))
            gauges = dict(snapshot.get("gauges", {}))
            timers = dict(snapshot.get("timers", {}))
            self._counters = {}
            self._gauges = {}
            self._timers = {}
            for name, value in counters.items():
                self.counter(name).value = int(value)
            for name, value in gauges.items():
                self.gauge(name).set(float(value))
            for name, summary in timers.items():
                timer = self.timer(name)
                timer.count = int(summary["count"])
                timer.total = float(summary["total"])
                minimum = summary.get("min")
                timer.minimum = (math.inf if minimum is None
                                 else float(minimum))
                timer.maximum = float(summary["max"])
                # Pre-quantile snapshots carry no sample list; quantile
                # state then simply starts empty (p50/p95 -> None).
                timer.reservoir.restore(list(summary.get("samples", [])),
                                        timer.count)
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigurationError(
                f"malformed metrics snapshot: {error}"
            ) from error

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's snapshot into this one, additively.

        The parallel runtime uses this to combine worker-local
        telemetry into the coordinator's registry: counters add up,
        timers fold their count/total/extremes together, and gauges
        are last-write-wins (the merged snapshot's value replaces the
        local one — gauges are point-in-time observations, not
        accumulators).

        Raises
        ------
        ConfigurationError
            If the snapshot does not look like :meth:`snapshot` output.
        """
        if not isinstance(snapshot, dict):
            raise ConfigurationError(
                "metrics snapshot must be a dict, got "
                f"{type(snapshot).__name__}"
            )
        try:
            for name, value in dict(snapshot.get("counters", {})).items():
                self.counter(name).inc(int(value))
            for name, value in dict(snapshot.get("gauges", {})).items():
                self.gauge(name).set(float(value))
            for name, summary in dict(snapshot.get("timers", {})).items():
                timer = self.timer(name)
                count = int(summary["count"])
                if count == 0:
                    continue
                timer.count += count
                timer.total += float(summary["total"])
                minimum = summary.get("min")
                if minimum is not None:
                    timer.minimum = min(timer.minimum, float(minimum))
                timer.maximum = max(timer.maximum, float(summary["max"]))
                # Pre-quantile worker snapshots merge cleanly: with no
                # sample list there is simply nothing to absorb.
                timer.reservoir.absorb(list(summary.get("samples", [])))
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigurationError(
                f"malformed metrics snapshot: {error}"
            ) from error

    def to_table(self) -> str:
        """Counters, gauges, and timers as an aligned text block."""
        lines = []
        if self._counters:
            lines.append("counters:")
            for name in sorted(self._counters):
                lines.append(f"  {name} = {self._counters[name].value}")
        if self._gauges:
            lines.append("gauges:")
            for name in sorted(self._gauges):
                lines.append(f"  {name} = {self._gauges[name].value:.6g}")
        if self._timers:
            lines.append("timers:")
            for name in sorted(self._timers):
                t = self._timers[name]
                p50 = t.p50
                p95 = t.p95
                quantiles = (
                    f" p50={p50 * 1e3:.3f}ms p95={p95 * 1e3:.3f}ms"
                    if p50 is not None and p95 is not None else ""
                )
                minimum = (f" min={t.minimum * 1e3:.3f}ms"
                           if t.count else "")
                lines.append(
                    f"  {name}: n={t.count} total={t.total:.4f}s "
                    f"mean={t.mean * 1e3:.3f}ms{minimum}{quantiles} "
                    f"max={t.maximum * 1e3:.3f}ms"
                )
        return "\n".join(lines)


def timed(name: str):
    """Decorator timing a function into an optional registry.

    The wrapped function grows a keyword-only ``metrics`` parameter:
    pass a :class:`MetricsRegistry` and the call is timed into timer
    ``name``; pass ``None`` (or nothing) and the function runs
    undecorated — callers that never heard of metrics are unaffected.
    """

    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, metrics: MetricsRegistry | None = None, **kwargs):
            if metrics is None:
                return func(*args, **kwargs)
            with metrics.time(name):
                return func(*args, **kwargs)

        return wrapper

    return decorate
