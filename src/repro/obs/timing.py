"""The whitelisted monotonic-timer shim for hot-path telemetry.

The deterministic packages (``repro.sim``, ``repro.game``,
``repro.bandits``, ``repro.core``) must never read the wall clock
directly — a clock value that leaks into control flow silently breaks
bit-identical replay, and the RL002 lint rule rejects direct ``time``
imports there wholesale.  Duration telemetry is still wanted, so this
module re-exports :func:`time.perf_counter` as the single auditable
source of hot-path timestamps: everything imported from here is
*telemetry-only* by contract (durations feed trace events and metrics,
never simulation state).
"""

from __future__ import annotations

# The one sanctioned wall-clock import of the deterministic runtime;
# repro.obs is outside RL002's scoped packages.
from time import perf_counter

__all__ = ["perf_counter"]
