"""Deterministic phase profiling for the trading runtime.

A :class:`PhaseProfiler` turns the per-phase timers the engine already
records (``engine.selection``, ``engine.solve``, ``engine.round``,
``replication.seed``, ...) into an actionable performance profile:

* per-phase **call counts, cumulative time, and self time** (cumulative
  minus the time attributed to nested child phases — a round's self
  time is what selection and the Stage 1-3 solve do *not* explain);
* **peak memory**, probed either cheaply from ``ru_maxrss`` (the
  default — one syscall at the end of the run) or precisely from
  :mod:`tracemalloc` (opt-in; tracing allocations costs real time);
* derived **hot-path rates** — rounds/sec, UCB selections/sec, Stage
  1-3 solves/sec — the headline numbers the vectorization arc is
  gated on.

The profiler is *clock-injected*: every wall-clock read goes through
the constructor's ``clock`` callable (default
:func:`repro.obs.timing.perf_counter`), so tests drive it with a fake
clock and assert exact rates.  It never touches an RNG stream and is
strictly opt-in — ``profiler=None`` everywhere keeps unprofiled runs
byte-identical.

Usage::

    profiler = PhaseProfiler()
    simulator.run(policy, profiler=profiler)
    report = profiler.report()
    print(report.hotspot_table())
    atomic_write_json("profile.json", report.to_dict())

or via the CLI: ``repro profile --sellers 300 --rounds 500``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.obs.metrics import MetricsRegistry, Timer
from repro.obs.timing import perf_counter

__all__ = ["MEMORY_PROBES", "PhaseProfiler", "PhaseStat", "ProfileReport"]

#: Recognised memory probes, cheapest first.
#:
#: * ``"off"`` — no memory accounting.
#: * ``"rss"`` — peak resident set size via ``ru_maxrss`` (one
#:   ``getrusage`` call when the run finishes; effectively free, but
#:   process-wide and monotone across runs in the same process).
#: * ``"tracemalloc"`` — exact peak of Python-level allocations between
#:   start and finish (noticeably slows allocation-heavy code; use for
#:   one-off memory investigations, not routine benchmarking).
MEMORY_PROBES = ("off", "rss", "tracemalloc")

#: Parent phase of each known timer, used to attribute *self* time:
#: a phase's self time is its total minus its children's totals.
#: Unknown timer names are treated as roots (self == total).
_PHASE_PARENT = {
    "engine.selection": "engine.round",
    "engine.solve": "engine.round",
    "engine.round": "replication.seed",
    "mechanism.selection": None,
    "mechanism.solve": None,
    "replication.seed": None,
    "parallel.task": None,
}

#: Rates derived from (counter or timer-count, per active second).
#: Each entry: rate name -> ("counter"|"timer", metric name).
_RATE_SOURCES = {
    "rounds_per_s": ("counter", "rounds"),
    "selections_per_s": ("timer", "engine.selection"),
    "solves_per_s": ("timer", "engine.solve"),
}

_MB = 1024.0 * 1024.0


@dataclass(frozen=True)
class PhaseStat:
    """One phase's aggregated timing, as reported by the profiler."""

    name: str
    calls: int
    total_s: float
    self_s: float
    mean_s: float
    p50_s: float | None
    p95_s: float | None
    max_s: float
    #: Fraction of the profiled wall-clock attributed to this phase's
    #: self time (0 when the profiler saw no wall-clock).
    share: float

    def to_dict(self) -> dict:
        """The flat JSON form of this phase row."""
        return {
            "name": self.name,
            "calls": self.calls,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "mean_s": self.mean_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "max_s": self.max_s,
            "share": self.share,
        }


@dataclass(frozen=True)
class ProfileReport:
    """A finished profile: phases, rates, memory, and context."""

    wall_s: float
    rounds: int
    rates: dict[str, float]
    phases: list[PhaseStat]
    counters: dict[str, int]
    memory_probe: str
    peak_memory_bytes: int | None
    context: dict = field(default_factory=dict)

    @property
    def peak_memory_mb(self) -> float | None:
        """Peak memory in MiB (``None`` when the probe was off)."""
        if self.peak_memory_bytes is None:
            return None
        return self.peak_memory_bytes / _MB

    def to_dict(self) -> dict:
        """The flat JSON profile ``repro profile --out`` writes."""
        return {
            "schema": 1,
            "wall_s": self.wall_s,
            "rounds": self.rounds,
            "rates": dict(self.rates),
            "memory": {
                "probe": self.memory_probe,
                "peak_bytes": self.peak_memory_bytes,
                "peak_mb": self.peak_memory_mb,
            },
            "phases": [phase.to_dict() for phase in self.phases],
            "counters": dict(self.counters),
            "context": dict(self.context),
        }

    def hotspot_table(self, top: int = 10) -> str:
        """The top-``top`` phases by self time, as an aligned text block."""
        if top <= 0:
            raise ConfigurationError(f"top must be positive, got {top}")
        lines = [
            f"profiled {self.wall_s:.3f}s wall, {self.rounds} rounds"
        ]
        rate_bits = [
            f"{name.replace('_per_s', '')}/s {value:,.1f}"
            for name, value in self.rates.items()
        ]
        if rate_bits:
            lines.append("rates: " + "  ".join(rate_bits))
        if self.peak_memory_mb is not None:
            lines.append(
                f"peak memory: {self.peak_memory_mb:.1f} MiB "
                f"({self.memory_probe})"
            )
        if self.phases:
            lines.append("")
            lines.append(
                f"{'phase':<24} {'calls':>9} {'total':>10} {'self':>10} "
                f"{'mean':>10} {'p95':>10} {'share':>7}"
            )
            for phase in self.phases[:top]:
                p95 = (f"{phase.p95_s * 1e3:>8.3f}ms"
                       if phase.p95_s is not None else f"{'n/a':>10}")
                lines.append(
                    f"{phase.name:<24} {phase.calls:>9} "
                    f"{phase.total_s:>9.3f}s {phase.self_s:>9.3f}s "
                    f"{phase.mean_s * 1e3:>8.3f}ms {p95} "
                    f"{phase.share:>6.1%}"
                )
            hidden = len(self.phases) - top
            if hidden > 0:
                lines.append(f"... {hidden} more phase"
                             f"{'s' if hidden != 1 else ''} hidden")
        return "\n".join(lines)


class PhaseProfiler:
    """Clock-injected profiler over the runtime's phase timers.

    Pass one to :meth:`~repro.sim.engine.TradingSimulator.run`,
    :meth:`~repro.sim.engine.TradingSimulator.compare`, or
    :func:`~repro.sim.replication.replicate_comparison` — the run's
    metrics land in :attr:`registry` (or the caller's own registry when
    one is also given) and the run is bracketed so active wall-clock
    and peak memory are accounted.  :meth:`report` then derives phase
    self-times and hot-path rates.

    Parameters
    ----------
    clock:
        Monotonic-seconds callable; every wall-clock read goes through
        it (tests inject a fake clock for exact assertions).
    memory:
        One of :data:`MEMORY_PROBES` (default ``"rss"``).

    The profiler draws no randomness and mutates nothing the simulation
    reads, so a profiled run's results are byte-identical to an
    unprofiled run on the same seed.
    """

    def __init__(self, *, clock=perf_counter, memory: str = "rss") -> None:
        if memory not in MEMORY_PROBES:
            raise ConfigurationError(
                f"unknown memory probe {memory!r}; "
                f"choose one of {MEMORY_PROBES}"
            )
        self._clock = clock
        self._memory = memory
        self._own_registry = MetricsRegistry()
        self._registry = self._own_registry
        self._depth = 0
        self._started_at: float | None = None
        self._active_s = 0.0
        self._peak_bytes: int | None = None
        self._context: dict = {}

    @property
    def registry(self) -> MetricsRegistry:
        """The registry the profiled run's metrics accumulate into."""
        return self._registry

    @property
    def memory_probe(self) -> str:
        """The configured memory probe name."""
        return self._memory

    # -- run bracketing (called by the engine / replication opt-ins) -----------------

    def bind(self, metrics: MetricsRegistry | None) -> MetricsRegistry:
        """Adopt the run's registry (the caller's, or this profiler's own).

        The engine calls this once per profiled run so :meth:`report`
        reads whichever registry actually accumulated the run's timers.
        Returns the registry the run should use.
        """
        self._registry = (metrics if metrics is not None
                          else self._own_registry)
        return self._registry

    def run_started(self) -> None:
        """Open one profiled bracket (re-entrant; outermost wins)."""
        self._depth += 1
        if self._depth == 1:
            self._started_at = self._clock()
            if self._memory == "tracemalloc":
                import tracemalloc

                if not tracemalloc.is_tracing():
                    tracemalloc.start()
                tracemalloc.reset_peak()

    def run_finished(self, **context) -> None:
        """Close one bracket, folding active time, memory, and context in."""
        if self._depth == 0:
            raise ConfigurationError(
                "run_finished() without a matching run_started()"
            )
        self._depth -= 1
        if self._depth == 0 and self._started_at is not None:
            self._active_s += self._clock() - self._started_at
            self._started_at = None
            self._sample_memory()
        self._context.update(context)

    def profile(self) -> "_ProfileBracket":
        """Context manager form of the start/finish bracket."""
        return _ProfileBracket(self)

    def _sample_memory(self) -> None:
        if self._memory == "rss":
            import resource

            # ru_maxrss is KiB on Linux, bytes on macOS.
            import sys

            peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            if sys.platform != "darwin":
                peak *= 1024
            self._peak_bytes = int(peak)
        elif self._memory == "tracemalloc":
            import tracemalloc

            __, peak = tracemalloc.get_traced_memory()
            previous = self._peak_bytes or 0
            self._peak_bytes = max(previous, int(peak))

    # -- reporting -------------------------------------------------------------------

    def report(self) -> ProfileReport:
        """Derive the profile from the bound registry's current state.

        Callable mid-run too (an open bracket contributes its elapsed
        time so rates stay meaningful).
        """
        active = self._active_s
        if self._depth > 0 and self._started_at is not None:
            active += self._clock() - self._started_at
        timers = self._registry.timers
        counters = self._registry.counters
        phases = _phase_stats(timers, active)
        rates: dict[str, float] = {}
        if active > 0.0:
            for rate_name, (source, metric) in _RATE_SOURCES.items():
                if source == "counter":
                    count = counters.get(metric, 0)
                else:
                    timer = timers.get(metric)
                    count = timer.count if timer is not None else 0
                if count:
                    rates[rate_name] = count / active
        return ProfileReport(
            wall_s=active,
            rounds=int(counters.get("rounds", 0)),
            rates=rates,
            phases=phases,
            counters=dict(counters),
            memory_probe=self._memory,
            peak_memory_bytes=self._peak_bytes,
            context=dict(self._context),
        )


class _ProfileBracket:
    """``with profiler.profile():`` — one start/finish bracket."""

    def __init__(self, profiler: PhaseProfiler) -> None:
        self._profiler = profiler

    def __enter__(self) -> PhaseProfiler:
        self._profiler.run_started()
        return self._profiler

    def __exit__(self, *exc_info) -> None:
        self._profiler.run_finished()


def _phase_stats(timers: dict[str, Timer],
                 wall_s: float) -> list[PhaseStat]:
    """Per-phase rows with self time, sorted by self time descending."""
    child_totals: dict[str, float] = {}
    for name, timer in timers.items():
        parent = _PHASE_PARENT.get(name)
        if parent is not None and parent in timers:
            child_totals[parent] = child_totals.get(parent, 0.0) + timer.total
    stats = []
    for name, timer in timers.items():
        if timer.count == 0:
            continue
        self_s = max(0.0, timer.total - child_totals.get(name, 0.0))
        stats.append(PhaseStat(
            name=name,
            calls=timer.count,
            total_s=timer.total,
            self_s=self_s,
            mean_s=timer.mean,
            p50_s=timer.p50,
            p95_s=timer.p95,
            max_s=timer.maximum,
            share=(self_s / wall_s if wall_s > 0.0 else 0.0),
        ))
    stats.sort(key=lambda stat: (-stat.self_s, stat.name))
    return stats
