"""Structured trace events emitted by the trading runtime.

A :class:`TraceEvent` is one timestamped-by-round fact about a run —
"round 17 selected sellers [3, 8, 11]", "the equilibrium was
``<p^J*, p*, tau*>``", "seller 4's report was quarantined".  Events are
plain data (a kind, an optional round index, and a flat JSON-friendly
payload) so every sink — ring buffer, JSONL file, stdlib logging — can
carry them without knowing anything about the runtime.

The JSONL codec here is the contract the ``repro trace summarize``
subcommand reads back; :data:`EVENT_KINDS` enumerates every kind the
runtime emits (unknown kinds are tolerated on read, for forward
compatibility).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["EVENT_KINDS", "TraceEvent"]

#: Every event kind the runtime emits.
#:
#: * ``run_start`` / ``run_end`` — one policy run's bracket (payload:
#:   policy, horizon, seed; run_end adds totals and ``duration_s``).
#: * ``round_start`` / ``round_end`` — one trading round's bracket
#:   (round_end carries the round's ``duration_s``).
#: * ``selection`` — the selected seller set, with UCB indices when the
#:   selector exposes them (Eq. 19) and the selection ``duration_s``.
#: * ``equilibrium`` — the round's strategy profile ``<p^J*, p*,
#:   sum tau*>`` plus the solve ``duration_s``.
#: * ``profits`` — PoC / PoP / mean PoS and realized revenue.
#: * ``fault`` — one injected failure or platform reaction (payload
#:   ``fault`` holds the :class:`~repro.faults.FaultKind` value).
#: * ``checkpoint`` — a checkpoint write or restore (payload ``action``
#:   is ``saved``/``restored``).
#: * ``seed_start`` / ``seed_end`` — one replication seed's bracket.
#: * ``invariant_violation`` — a correctness check failed: a
#:   diagnostics check (Lemma 18) or, in the engine's ``strict`` mode,
#:   a per-round :mod:`repro.verify.invariants` predicate (payload:
#:   ``invariant`` name, ``detail``, ``magnitude``).
#: * ``worker_started`` — the parallel runtime spawned a worker process
#:   (payload: ``worker`` id, ``pid``).
#: * ``worker_task_done`` — a worker finished one task (payload:
#:   ``worker``, ``task``, ``duration_s``, ``attempts``); the trace
#:   summary rolls these up into per-worker phase timing.
#: * ``worker_crashed`` — a worker process died mid-batch (payload:
#:   ``worker``, ``exitcode``, ``lost_tasks`` re-queued to a fresh
#:   worker).
#: * ``retry_attempt`` — a guarded operation failed and will be retried
#:   under a :class:`~repro.resilience.RetryPolicy` (payload: ``op``
#:   label, ``attempt``, ``max_attempts``, seeded ``delay_s``,
#:   ``error``).
#: * ``watchdog_kill`` — the parallel watchdog killed a stalled worker
#:   (payload: ``worker``, ``reason``, ``task``, ``elapsed_s``,
#:   ``limit_s``).
#: * ``task_deadline_exceeded`` — the specific watchdog kill whose
#:   reason was a per-task deadline (emitted alongside
#:   ``watchdog_kill`` with the same payload, so deadline breaches are
#:   greppable without parsing reasons).
#: * ``checkpoint_quarantined`` — a corrupt checkpoint was moved into
#:   its ``*.quarantine/`` directory during rollback (payload:
#:   ``path``, ``quarantined_to``, ``what``, ``error``).
#: * ``graceful_shutdown`` — a run or sweep stopped cooperatively at a
#:   safe boundary after a shutdown signal (payload: final
#:   ``checkpoint_path`` plus progress fields such as
#:   ``rounds_completed`` or ``seeds_completed``).
#: * ``agent_spawn`` — the event runtime registered an agent on the
#:   kernel (payload: ``agent`` id, ``kind`` — ``seller`` / ``platform``
#:   / ``consumer``; sellers add their population ``slot``).
#: * ``agent_depart`` — an agent was deregistered from the kernel
#:   (payload: ``agent`` id, ``kind``, and for sellers the ``slot`` and
#:   ``rounds_online``).
#: * ``message_delivered`` — the kernel delivered one timestamped
#:   message to an agent's mailbox (payload: ``topic``, ``sender``,
#:   ``receiver``, logical ``time``).
#: * ``session_open`` — a seller-session began: the seller is online
#:   and selectable from the next round on (payload: ``session`` id,
#:   ``slot``).
#: * ``session_close`` — a seller-session ended, organically (churn) or
#:   via the service's ``close`` request (payload: ``session`` id,
#:   ``slot``, ``rounds_online``, ``trades``).
EVENT_KINDS = frozenset({
    "run_start", "run_end",
    "round_start", "round_end",
    "selection", "equilibrium", "profits",
    "fault", "checkpoint",
    "seed_start", "seed_end",
    "invariant_violation",
    "worker_started", "worker_task_done", "worker_crashed",
    "retry_attempt", "watchdog_kill", "task_deadline_exceeded",
    "checkpoint_quarantined", "graceful_shutdown",
    "agent_spawn", "agent_depart", "message_delivered",
    "session_open", "session_close",
})


#: Types passed through :func:`_jsonable` untouched (the overwhelmingly
#: common case — checked first, by exact type, to keep the hot emit
#: path cheap).
_PLAIN_TYPES = (float, int, str, bool, type(None))


def _jsonable(value):
    """Coerce numpy scalars/arrays into plain JSON-serialisable types."""
    if type(value) in _PLAIN_TYPES:
        return value
    if isinstance(value, np.ndarray):
        # tolist() already yields (nested) plain Python scalars.
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, np.generic):
        return value.item()
    return value


@dataclass(frozen=True)
class TraceEvent:
    """One structured event of a traced run.

    Attributes
    ----------
    kind:
        The event category (usually one of :data:`EVENT_KINDS`).
    round_index:
        0-based round the event belongs to, or ``None`` for run-level
        events (``run_start``, ``seed_end``, ...).
    payload:
        Flat JSON-serialisable details, keyed by field name.
    """

    kind: str
    round_index: int | None = None
    payload: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The JSONL wire form (``kind``/``round`` + payload fields)."""
        record: dict = {"kind": self.kind}
        if self.round_index is not None:
            record["round"] = int(self.round_index)
        for key, value in self.payload.items():
            record[str(key)] = _jsonable(value)
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "TraceEvent":
        """Rebuild an event from its :meth:`to_dict` wire form.

        Raises
        ------
        ConfigurationError
            If the record is not a dict or lacks a string ``kind``.
        """
        if not isinstance(record, dict):
            raise ConfigurationError(
                f"trace record must be a JSON object, got {type(record).__name__}"
            )
        kind = record.get("kind")
        if not isinstance(kind, str) or not kind:
            raise ConfigurationError(
                "trace record lacks a string 'kind' field"
            )
        round_index = record.get("round")
        if round_index is not None and not isinstance(round_index, int):
            raise ConfigurationError(
                f"trace record 'round' must be an integer, got {round_index!r}"
            )
        payload = {
            key: value for key, value in record.items()
            if key not in ("kind", "round")
        }
        return cls(kind=kind, round_index=round_index, payload=payload)
