"""Read a JSONL trace back and roll it up into a human-readable summary.

This is the analysis half of the tracing substrate: ``repro trace
summarize <path>`` loads every event a traced run emitted and reports

* event counts by kind,
* per-phase timing rollups (selection / equilibrium solve / whole
  round / checkpoint writes / whole runs), reconstructed from the
  ``duration_s`` fields events carry,
* fault-injection counts by fault kind,
* the policies and round span the trace covers,
* per-worker task timing and crash counts when the trace came from a
  parallel (``--workers N``) run — each ``worker_task_done`` event
  lands in a ``worker <id>`` phase of its own.

An unreadable file always surfaces as
:class:`~repro.exceptions.ConfigurationError`.  Malformed *lines* have
two modes: :func:`read_trace` raises by default (naming the offending
1-based line), but callers may pass ``on_malformed`` to skip-and-count
instead — a run that crashed mid-write leaves a truncated final JSONL
record, and a summary should report that honestly rather than refuse
the whole trace.  :func:`summarize_trace` uses the tolerant mode and
reports the skipped count in :attr:`TraceSummary.skipped_lines`.
"""

from __future__ import annotations

import json
import math
import os
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.obs.events import TraceEvent
from repro.obs.metrics import QuantileReservoir

__all__ = ["PhaseTiming", "TraceSummary", "read_trace", "summarize_trace"]

#: Which event kinds carry a ``duration_s`` worth aggregating, and the
#: phase label each is reported under.
_PHASE_OF_KIND = {
    "selection": "selection",
    "equilibrium": "equilibrium solve",
    "round_end": "round",
    "checkpoint": "checkpoint",
    "run_end": "run",
    "seed_end": "seed",
}


@dataclass
class PhaseTiming:
    """Aggregated wall-clock time of one runtime phase."""

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = 0.0
    reservoir: QuantileReservoir = field(default_factory=QuantileReservoir)

    def add(self, seconds: float) -> None:
        """Fold one duration into the rollup."""
        self.count += 1
        self.total += seconds
        self.minimum = min(self.minimum, seconds)
        self.maximum = max(self.maximum, seconds)
        self.reservoir.add(seconds)

    @property
    def mean(self) -> float:
        """Average duration (0 before any observation)."""
        return self.total / self.count if self.count else 0.0

    @property
    def p50(self) -> float | None:
        """Median duration (``None`` before any observation)."""
        return self.reservoir.quantile(0.50)

    @property
    def p95(self) -> float | None:
        """95th-percentile duration (``None`` before any observation)."""
        return self.reservoir.quantile(0.95)


@dataclass
class TraceSummary:
    """Rollup of one JSONL trace file."""

    path: str
    num_events: int = 0
    events_by_kind: dict[str, int] = field(default_factory=dict)
    phase_timings: dict[str, PhaseTiming] = field(default_factory=dict)
    faults_by_kind: dict[str, int] = field(default_factory=dict)
    policies: list[str] = field(default_factory=list)
    num_rounds: int = 0
    workers: set = field(default_factory=set)
    worker_crashes: int = 0
    #: Event-runtime lifecycle rollup (``repro serve`` traces): agents
    #: spawned/departed on the kernel, seller-sessions opened/closed,
    #: and mailbox messages delivered.
    agents_spawned: int = 0
    agents_departed: int = 0
    sessions_opened: int = 0
    sessions_closed: int = 0
    messages_delivered: int = 0
    #: Malformed JSONL lines skipped during the rollup — typically the
    #: truncated final record of a run that crashed mid-write.
    skipped_lines: int = 0

    def add(self, event: TraceEvent) -> None:
        """Fold one event into the summary."""
        self.num_events += 1
        self.events_by_kind[event.kind] = (
            self.events_by_kind.get(event.kind, 0) + 1
        )
        if event.round_index is not None:
            self.num_rounds = max(self.num_rounds, event.round_index + 1)
        phase = _PHASE_OF_KIND.get(event.kind)
        if event.kind == "worker_task_done":
            # Parallel runs get one phase per worker, so the summary
            # shows how evenly the sweep sharded across the pool.
            phase = f"worker {event.payload.get('worker', '?')}"
        duration = event.payload.get("duration_s")
        if phase is not None and isinstance(duration, (int, float)):
            timing = self.phase_timings.get(phase)
            if timing is None:
                timing = self.phase_timings[phase] = PhaseTiming()
            timing.add(float(duration))
        if event.kind in ("worker_started", "worker_task_done",
                          "worker_crashed"):
            worker = event.payload.get("worker")
            if worker is not None:
                self.workers.add(worker)
        if event.kind == "worker_crashed":
            self.worker_crashes += 1
        if event.kind == "agent_spawn":
            self.agents_spawned += 1
        elif event.kind == "agent_depart":
            self.agents_departed += 1
        elif event.kind == "session_open":
            self.sessions_opened += 1
        elif event.kind == "session_close":
            self.sessions_closed += 1
        elif event.kind == "message_delivered":
            self.messages_delivered += 1
        if event.kind == "fault":
            fault = str(event.payload.get("fault", "unknown"))
            self.faults_by_kind[fault] = (
                self.faults_by_kind.get(fault, 0) + 1
            )
        if event.kind == "run_start":
            policy = event.payload.get("policy")
            if isinstance(policy, str) and policy not in self.policies:
                self.policies.append(policy)

    def to_text(self) -> str:
        """The summary as the text block ``repro trace summarize`` prints."""
        lines = [f"trace {self.path}: {self.num_events} events, "
                 f"{self.num_rounds} rounds"]
        if self.skipped_lines:
            lines.append(
                f"skipped {self.skipped_lines} malformed line"
                f"{'s' if self.skipped_lines != 1 else ''} "
                "(truncated or partially written records)"
            )
        if self.policies:
            lines.append(f"policies: {', '.join(self.policies)}")
        if self.workers:
            crashes = (f", {self.worker_crashes} crashed"
                       if self.worker_crashes else "")
            lines.append(f"workers: {len(self.workers)}{crashes}")
        if self.sessions_opened or self.agents_spawned:
            open_sessions = self.sessions_opened - self.sessions_closed
            lines.append(
                f"runtime: {self.sessions_opened} sessions opened, "
                f"{self.sessions_closed} closed ({open_sessions} open at "
                f"end); {self.agents_spawned} agents spawned, "
                f"{self.agents_departed} departed; "
                f"{self.messages_delivered} messages delivered"
            )
        lines.append("")
        lines.append("event counts:")
        for kind in sorted(self.events_by_kind):
            lines.append(f"  {kind:<20} {self.events_by_kind[kind]:>8}")
        if self.faults_by_kind:
            lines.append("")
            lines.append("fault events:")
            for kind in sorted(self.faults_by_kind):
                lines.append(f"  {kind:<20} {self.faults_by_kind[kind]:>8}")
        if self.phase_timings:
            lines.append("")
            lines.append("per-phase timing:")
            header = (f"  {'phase':<18} {'calls':>8} {'total':>10} "
                      f"{'mean':>10} {'p50':>10} {'p95':>10} {'max':>10}")
            lines.append(header)
            for phase in sorted(self.phase_timings):
                t = self.phase_timings[phase]
                p50 = t.p50
                p95 = t.p95
                p50_text = (f"{p50 * 1e3:>8.3f}ms" if p50 is not None
                            else f"{'n/a':>10}")
                p95_text = (f"{p95 * 1e3:>8.3f}ms" if p95 is not None
                            else f"{'n/a':>10}")
                lines.append(
                    f"  {phase:<18} {t.count:>8} {t.total:>9.3f}s "
                    f"{t.mean * 1e3:>8.3f}ms {p50_text} {p95_text} "
                    f"{t.maximum * 1e3:>8.3f}ms"
                )
        return "\n".join(lines)


def read_trace(path: str | os.PathLike, *,
               on_malformed: Callable[[int, str, ConfigurationError],
                                      None] | None = None):
    """Yield every :class:`TraceEvent` of a JSONL trace file, in order.

    Parameters
    ----------
    path:
        The JSONL trace file.
    on_malformed:
        When given, a line that is not valid JSON or not a valid event
        is *skipped* and this callback is invoked with ``(line_number,
        line, error)`` instead of raising — the degraded-read mode for
        traces whose tail was truncated by a crash mid-write.  The
        default (``None``) keeps the strict contract: malformed lines
        raise.

    Raises
    ------
    ConfigurationError
        If the file cannot be read (always), or — without
        ``on_malformed`` — if any line is not a JSON object with a
        string ``kind`` (the error names the 1-based line).
    """
    path = os.fspath(path)
    try:
        handle = open(path, encoding="utf-8")
    except OSError as error:
        raise ConfigurationError(
            f"cannot read trace file {path!r}: {error}"
        ) from error
    with handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                wrapped = ConfigurationError(
                    f"trace file {path!r} line {line_number} is not valid "
                    f"JSON: {error}"
                )
                if on_malformed is not None:
                    on_malformed(line_number, line, wrapped)
                    continue
                raise wrapped from error
            try:
                event = TraceEvent.from_dict(record)
            except ConfigurationError as error:
                wrapped = ConfigurationError(
                    f"trace file {path!r} line {line_number}: {error}"
                )
                if on_malformed is not None:
                    on_malformed(line_number, line, wrapped)
                    continue
                raise wrapped from error
            yield event


def summarize_trace(path: str | os.PathLike) -> TraceSummary:
    """Roll one JSONL trace file up into a :class:`TraceSummary`.

    Degrades gracefully on truncated or partially written lines (a
    crash mid-write leaves at most a malformed tail record): such lines
    are skipped and counted into :attr:`TraceSummary.skipped_lines`
    rather than failing the whole rollup.

    Raises
    ------
    ConfigurationError
        Only when the file itself cannot be read.
    """
    summary = TraceSummary(path=os.fspath(path))

    def count_skipped(line_number: int, line: str,
                      error: ConfigurationError) -> None:
        summary.skipped_lines += 1

    for event in read_trace(path, on_malformed=count_skipped):
        summary.add(event)
    return summary
