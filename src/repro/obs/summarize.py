"""Read a JSONL trace back and roll it up into a human-readable summary.

This is the analysis half of the tracing substrate: ``repro trace
summarize <path>`` loads every event a traced run emitted and reports

* event counts by kind,
* per-phase timing rollups (selection / equilibrium solve / whole
  round / checkpoint writes / whole runs), reconstructed from the
  ``duration_s`` fields events carry,
* fault-injection counts by fault kind,
* the policies and round span the trace covers,
* per-worker task timing and crash counts when the trace came from a
  parallel (``--workers N``) run — each ``worker_task_done`` event
  lands in a ``worker <id>`` phase of its own.

All failure modes — unreadable file, non-JSON line, JSON that is not an
event — surface as :class:`~repro.exceptions.ConfigurationError` naming
the offending line, consistent with the library's
:class:`~repro.exceptions.PersistenceError` conventions.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.obs.events import TraceEvent

__all__ = ["PhaseTiming", "TraceSummary", "read_trace", "summarize_trace"]

#: Which event kinds carry a ``duration_s`` worth aggregating, and the
#: phase label each is reported under.
_PHASE_OF_KIND = {
    "selection": "selection",
    "equilibrium": "equilibrium solve",
    "round_end": "round",
    "checkpoint": "checkpoint",
    "run_end": "run",
    "seed_end": "seed",
}


@dataclass
class PhaseTiming:
    """Aggregated wall-clock time of one runtime phase."""

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = 0.0

    def add(self, seconds: float) -> None:
        """Fold one duration into the rollup."""
        self.count += 1
        self.total += seconds
        self.minimum = min(self.minimum, seconds)
        self.maximum = max(self.maximum, seconds)

    @property
    def mean(self) -> float:
        """Average duration (0 before any observation)."""
        return self.total / self.count if self.count else 0.0


@dataclass
class TraceSummary:
    """Rollup of one JSONL trace file."""

    path: str
    num_events: int = 0
    events_by_kind: dict[str, int] = field(default_factory=dict)
    phase_timings: dict[str, PhaseTiming] = field(default_factory=dict)
    faults_by_kind: dict[str, int] = field(default_factory=dict)
    policies: list[str] = field(default_factory=list)
    num_rounds: int = 0
    workers: set = field(default_factory=set)
    worker_crashes: int = 0

    def add(self, event: TraceEvent) -> None:
        """Fold one event into the summary."""
        self.num_events += 1
        self.events_by_kind[event.kind] = (
            self.events_by_kind.get(event.kind, 0) + 1
        )
        if event.round_index is not None:
            self.num_rounds = max(self.num_rounds, event.round_index + 1)
        phase = _PHASE_OF_KIND.get(event.kind)
        if event.kind == "worker_task_done":
            # Parallel runs get one phase per worker, so the summary
            # shows how evenly the sweep sharded across the pool.
            phase = f"worker {event.payload.get('worker', '?')}"
        duration = event.payload.get("duration_s")
        if phase is not None and isinstance(duration, (int, float)):
            timing = self.phase_timings.get(phase)
            if timing is None:
                timing = self.phase_timings[phase] = PhaseTiming()
            timing.add(float(duration))
        if event.kind in ("worker_started", "worker_task_done",
                          "worker_crashed"):
            worker = event.payload.get("worker")
            if worker is not None:
                self.workers.add(worker)
        if event.kind == "worker_crashed":
            self.worker_crashes += 1
        if event.kind == "fault":
            fault = str(event.payload.get("fault", "unknown"))
            self.faults_by_kind[fault] = (
                self.faults_by_kind.get(fault, 0) + 1
            )
        if event.kind == "run_start":
            policy = event.payload.get("policy")
            if isinstance(policy, str) and policy not in self.policies:
                self.policies.append(policy)

    def to_text(self) -> str:
        """The summary as the text block ``repro trace summarize`` prints."""
        lines = [f"trace {self.path}: {self.num_events} events, "
                 f"{self.num_rounds} rounds"]
        if self.policies:
            lines.append(f"policies: {', '.join(self.policies)}")
        if self.workers:
            crashes = (f", {self.worker_crashes} crashed"
                       if self.worker_crashes else "")
            lines.append(f"workers: {len(self.workers)}{crashes}")
        lines.append("")
        lines.append("event counts:")
        for kind in sorted(self.events_by_kind):
            lines.append(f"  {kind:<20} {self.events_by_kind[kind]:>8}")
        if self.faults_by_kind:
            lines.append("")
            lines.append("fault events:")
            for kind in sorted(self.faults_by_kind):
                lines.append(f"  {kind:<20} {self.faults_by_kind[kind]:>8}")
        if self.phase_timings:
            lines.append("")
            lines.append("per-phase timing:")
            header = (f"  {'phase':<18} {'calls':>8} {'total':>10} "
                      f"{'mean':>10} {'max':>10}")
            lines.append(header)
            for phase in sorted(self.phase_timings):
                t = self.phase_timings[phase]
                lines.append(
                    f"  {phase:<18} {t.count:>8} {t.total:>9.3f}s "
                    f"{t.mean * 1e3:>8.3f}ms {t.maximum * 1e3:>8.3f}ms"
                )
        return "\n".join(lines)


def read_trace(path: str | os.PathLike):
    """Yield every :class:`TraceEvent` of a JSONL trace file, in order.

    Raises
    ------
    ConfigurationError
        If the file cannot be read, or any line is not a JSON object
        with a string ``kind`` (the error names the 1-based line).
    """
    path = os.fspath(path)
    try:
        handle = open(path, encoding="utf-8")
    except OSError as error:
        raise ConfigurationError(
            f"cannot read trace file {path!r}: {error}"
        ) from error
    with handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"trace file {path!r} line {line_number} is not valid "
                    f"JSON: {error}"
                ) from error
            try:
                yield TraceEvent.from_dict(record)
            except ConfigurationError as error:
                raise ConfigurationError(
                    f"trace file {path!r} line {line_number}: {error}"
                ) from error


def summarize_trace(path: str | os.PathLike) -> TraceSummary:
    """Roll one JSONL trace file up into a :class:`TraceSummary`.

    Raises
    ------
    ConfigurationError
        On unreadable files or malformed lines (see :func:`read_trace`).
    """
    summary = TraceSummary(path=os.fspath(path))
    for event in read_trace(path):
        summary.add(event)
    return summary
