"""Deviation-curve analysis of the hierarchical Stackelberg game.

The paper's HS evaluation (Figs. 13-18) examines how profits and
strategies respond when one quantity is swept while the rest of the game
re-equilibrates (or stays fixed, for unilateral deviations).  This module
computes those curves from a :class:`~repro.game.profits.GameInstance`
plus a *cascade* callable that produces the lower tiers' best responses —
dependency-injected so the closed-form solver (``repro.core.incentive``)
and the numerical solver can both drive it.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.game.profits import GameInstance, StrategyProfile
from repro.game.stackelberg import NumericalStackelbergSolver

__all__ = [
    "ProfitCurves",
    "DeviationCurve",
    "consumer_price_sweep",
    "seller_time_deviation_sweep",
]

#: Signature of a lower-tier response: ``(game, p^J) -> (p, tau)``.
CascadeFn = Callable[[GameInstance, float], tuple[float, np.ndarray]]


def _default_cascade(game: GameInstance,
                     service_price: float) -> tuple[float, np.ndarray]:
    return NumericalStackelbergSolver().cascade(game, service_price)


@dataclass(frozen=True)
class ProfitCurves:
    """Profits of every party along a one-dimensional sweep.

    Attributes
    ----------
    sweep_values:
        The swept quantity (for example candidate ``p^J`` values).
    consumer, platform:
        Profit arrays aligned with ``sweep_values``.
    sellers:
        Per-seller profit matrix of shape ``(len(sweep_values), K)``.
    collection_prices, total_sensing_times:
        The induced lower-tier responses along the sweep.
    """

    sweep_values: np.ndarray
    consumer: np.ndarray
    platform: np.ndarray
    sellers: np.ndarray
    collection_prices: np.ndarray
    total_sensing_times: np.ndarray

    @property
    def mean_seller(self) -> np.ndarray:
        """Mean per-seller profit along the sweep (PoS(s))."""
        return self.sellers.mean(axis=1)

    @property
    def argmax_consumer(self) -> float:
        """The swept value maximising the consumer's profit (the SE point)."""
        return float(self.sweep_values[int(np.argmax(self.consumer))])


def consumer_price_sweep(game: GameInstance,
                         service_prices: Sequence[float],
                         cascade: CascadeFn | None = None) -> ProfitCurves:
    """Profits of all parties as the consumer's price ``p^J`` sweeps.

    For each candidate ``p^J`` the platform and the sellers best-respond
    (via ``cascade``), reproducing Fig. 13: the consumer's profit is
    unimodal with its maximum at the Stackelberg Equilibrium price, while
    the platform's and sellers' profits rise monotonically with ``p^J``.

    Parameters
    ----------
    game:
        The round's game instance.
    service_prices:
        Candidate values of ``p^J`` (need not be feasible — this is an
        analysis sweep, not a mechanism run).
    cascade:
        Lower-tier response function; defaults to the numerical solver.
    """
    prices = np.asarray(list(service_prices), dtype=float)
    if prices.ndim != 1 or prices.size == 0:
        raise ConfigurationError("service_prices must be a non-empty sequence")
    respond = cascade if cascade is not None else _default_cascade
    consumer = np.empty(prices.size)
    platform = np.empty(prices.size)
    sellers = np.empty((prices.size, game.num_sellers))
    collection = np.empty(prices.size)
    totals = np.empty(prices.size)
    for idx, p_j in enumerate(prices):
        price, taus = respond(game, float(p_j))
        consumer[idx] = game.consumer_profit(p_j, taus)
        platform[idx] = game.platform_profit(p_j, price, taus)
        sellers[idx] = game.seller_profits(price, taus)
        collection[idx] = price
        totals[idx] = taus.sum()
    return ProfitCurves(
        sweep_values=prices,
        consumer=consumer,
        platform=platform,
        sellers=sellers,
        collection_prices=collection,
        total_sensing_times=totals,
    )


@dataclass(frozen=True)
class DeviationCurve:
    """Profits as one seller unilaterally deviates in sensing time.

    Prices and the other sellers' times stay fixed at the supplied
    equilibrium profile (the Fig. 14 setting).
    """

    deviating_position: int
    sweep_values: np.ndarray
    consumer: np.ndarray
    platform: np.ndarray
    sellers: np.ndarray

    @property
    def deviator_profit(self) -> np.ndarray:
        """Profit of the deviating seller along the sweep."""
        return self.sellers[:, self.deviating_position]

    def best_deviation(self) -> float:
        """The swept sensing time maximising the deviator's profit.

        At a Stackelberg Equilibrium this equals the deviator's
        equilibrium time up to the sweep's grid resolution (asserted by
        the Fig. 14 experiments).
        """
        return float(self.sweep_values[int(np.argmax(self.deviator_profit))])


def seller_time_deviation_sweep(game: GameInstance,
                                profile: StrategyProfile,
                                position: int,
                                sensing_times: Sequence[float]) -> DeviationCurve:
    """Sweep one seller's sensing time holding everything else fixed.

    Reproduces Fig. 14: both leaders' profits are unimodal in the
    deviator's time, the deviator's profit peaks at its Stage-3 optimum,
    and the remaining sellers' profits are unaffected.

    Parameters
    ----------
    game:
        The round's game instance.
    profile:
        The reference (equilibrium) strategy profile.
    position:
        Index of the deviating seller within the selected set.
    sensing_times:
        Candidate sensing times for the deviator.
    """
    if not (0 <= position < game.num_sellers):
        raise ConfigurationError(
            f"position must be in [0, {game.num_sellers}), got {position}"
        )
    sweep = np.asarray(list(sensing_times), dtype=float)
    if sweep.ndim != 1 or sweep.size == 0:
        raise ConfigurationError("sensing_times must be a non-empty sequence")
    consumer = np.empty(sweep.size)
    platform = np.empty(sweep.size)
    sellers = np.empty((sweep.size, game.num_sellers))
    for idx, tau in enumerate(sweep):
        deviated = profile.replace_sensing_time(position, float(tau))
        consumer[idx] = game.consumer_profit(deviated.service_price,
                                             deviated.sensing_times)
        platform[idx] = game.platform_profit(deviated.service_price,
                                             deviated.collection_price,
                                             deviated.sensing_times)
        sellers[idx] = game.seller_profits(deviated.collection_price,
                                           deviated.sensing_times)
    return DeviationCurve(
        deviating_position=position,
        sweep_values=sweep,
        consumer=consumer,
        platform=platform,
        sellers=sellers,
    )
