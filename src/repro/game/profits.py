"""Per-round game instances and vectorised profit functions.

A :class:`GameInstance` freezes everything the three-stage hierarchical
Stackelberg game of one trading round depends on: the selected sellers'
estimated qualities and cost coefficients, the platform's aggregation-cost
parameters, the consumer's valuation parameter, and the feasible regions
of every strategy.  All three profit functions (Eqs. 5, 7, 9) are exposed
on it in vectorised form so that closed-form solvers, numerical solvers,
equilibrium verifiers, and the deviation-curve experiments of Figs. 13-18
all evaluate exactly the same payoffs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, InfeasibleStrategyError

__all__ = ["GameInstance", "StrategyProfile"]


@dataclass(frozen=True)
class StrategyProfile:
    """One joint strategy ``<p^J, p, tau>`` of the three parties.

    Attributes
    ----------
    service_price:
        The consumer's unit data-service price ``p^J``.
    collection_price:
        The platform's unit data-collection price ``p``.
    sensing_times:
        The selected sellers' sensing times ``tau``, shape ``(K,)``.
    """

    service_price: float
    collection_price: float
    sensing_times: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "sensing_times", np.asarray(self.sensing_times, dtype=float)
        )
        if self.sensing_times.ndim != 1:
            raise ConfigurationError("sensing_times must be a 1-D array")

    @property
    def total_sensing_time(self) -> float:
        """The total sensing time ``sum_i tau_i`` of the round."""
        return float(self.sensing_times.sum())

    def replace_sensing_time(self, position: int, value: float) -> "StrategyProfile":
        """A copy of this profile with one seller's ``tau`` replaced.

        Used by equilibrium verification to test unilateral deviations.
        """
        taus = self.sensing_times.copy()
        taus[position] = float(value)
        return StrategyProfile(self.service_price, self.collection_price, taus)


def _validate_bounds(name: str, bounds: tuple[float, float]) -> tuple[float, float]:
    lo, hi = float(bounds[0]), float(bounds[1])
    if math.isnan(lo) or math.isnan(hi):
        raise ConfigurationError(f"{name} bounds must not be NaN")
    if lo < 0.0:
        raise ConfigurationError(f"{name} lower bound must be >= 0, got {lo}")
    if hi <= lo:
        raise ConfigurationError(
            f"{name} upper bound ({hi}) must exceed lower bound ({lo})"
        )
    return lo, hi


@dataclass(frozen=True)
class GameInstance:
    """The hierarchical Stackelberg game of one trading round.

    Attributes
    ----------
    qualities:
        Estimated qualities ``qbar_i`` of the *selected* sellers, shape
        ``(K,)``; must be strictly positive (a zero estimate makes the
        Stage-3 interior optimum undefined).
    cost_a, cost_b:
        Cost coefficients of the selected sellers (Eq. 6).
    theta, lam:
        Platform aggregation-cost parameters (Eq. 8).
    omega:
        Consumer valuation parameter (Eq. 10).
    service_price_bounds:
        Feasible interval for ``p^J``.
    collection_price_bounds:
        Feasible interval for ``p``.
    max_sensing_time:
        The round duration ``T`` bounding each ``tau_i``; defaults to
        unbounded, matching the paper's closed-form analysis (its sweeps
        never bind ``T``).
    """

    qualities: np.ndarray
    cost_a: np.ndarray
    cost_b: np.ndarray
    theta: float
    lam: float
    omega: float
    service_price_bounds: tuple[float, float] = (0.0, 1_000.0)
    collection_price_bounds: tuple[float, float] = (0.0, 1_000.0)
    max_sensing_time: float = float("inf")

    def __post_init__(self) -> None:
        qualities = np.asarray(self.qualities, dtype=float)
        cost_a = np.asarray(self.cost_a, dtype=float)
        cost_b = np.asarray(self.cost_b, dtype=float)
        object.__setattr__(self, "qualities", qualities)
        object.__setattr__(self, "cost_a", cost_a)
        object.__setattr__(self, "cost_b", cost_b)
        if qualities.ndim != 1 or qualities.size == 0:
            raise ConfigurationError(
                "qualities must be a non-empty 1-D array of selected sellers"
            )
        if qualities.shape != cost_a.shape or qualities.shape != cost_b.shape:
            raise ConfigurationError(
                "qualities, cost_a, cost_b must have identical shapes"
            )
        if np.any(qualities <= 0.0) or np.any(qualities > 1.0):
            raise ConfigurationError(
                "selected sellers' estimated qualities must lie in (0, 1]"
            )
        if np.any(cost_a <= 0.0):
            raise ConfigurationError("all cost coefficients a_i must be > 0")
        if np.any(cost_b < 0.0):
            raise ConfigurationError("all cost coefficients b_i must be >= 0")
        if not (math.isfinite(self.theta) and self.theta > 0.0):
            raise ConfigurationError(f"theta must be > 0, got {self.theta}")
        if not (math.isfinite(self.lam) and self.lam >= 0.0):
            raise ConfigurationError(f"lambda must be >= 0, got {self.lam}")
        if not (math.isfinite(self.omega) and self.omega > 1.0):
            raise ConfigurationError(f"omega must be > 1, got {self.omega}")
        object.__setattr__(
            self, "service_price_bounds",
            _validate_bounds("service price", self.service_price_bounds),
        )
        object.__setattr__(
            self, "collection_price_bounds",
            _validate_bounds("collection price", self.collection_price_bounds),
        )
        if not (self.max_sensing_time > 0.0):
            raise ConfigurationError(
                f"max_sensing_time must be positive, got {self.max_sensing_time}"
            )

    # -- derived coefficients -------------------------------------------------

    @property
    def num_sellers(self) -> int:
        """The number of selected sellers ``K``."""
        return int(self.qualities.size)

    @property
    def coefficient_a(self) -> float:
        """``A = sum_i 1 / (2 * qbar_i * a_i)`` (Theorem 15).

        ``A`` is the price-sensitivity of the total sensing time:
        ``sum_i tau_i*(p) = p*A - B``.
        """
        return float(np.sum(1.0 / (2.0 * self.qualities * self.cost_a)))

    @property
    def coefficient_b(self) -> float:
        """``B = sum_i b_i / (2 * a_i)``.

        The price-independent offset of the total sensing time
        (``sum_i tau_i*(p) = p*A - B``).  Note: Theorem 16 of the paper
        restates ``B`` with an extra ``qbar_i`` in the denominator; direct
        substitution of Eq. (20) shows this form is the consistent one.
        """
        return float(np.sum(self.cost_b / (2.0 * self.cost_a)))

    @property
    def mean_quality(self) -> float:
        """The mean estimated quality ``qbar^t`` of the selected sellers."""
        return float(self.qualities.mean())

    @property
    def opt_out_price(self) -> float:
        """The largest price at which some selected seller senses zero time.

        Below ``max_i qbar_i * b_i`` at least one Stage-3 best response is
        clipped at ``tau = 0`` and the linear relation
        ``sum tau = p*A - B`` stops holding.
        """
        return float(np.max(self.qualities * self.cost_b))

    # -- feasibility -----------------------------------------------------------

    def clip_service_price(self, price: float) -> float:
        """Project ``p^J`` onto its feasible interval."""
        lo, hi = self.service_price_bounds
        return min(max(float(price), lo), hi)

    def clip_collection_price(self, price: float) -> float:
        """Project ``p`` onto its feasible interval."""
        lo, hi = self.collection_price_bounds
        return min(max(float(price), lo), hi)

    def clip_sensing_times(self, sensing_times: np.ndarray) -> np.ndarray:
        """Project a sensing-time vector onto ``[0, T]^K``."""
        return np.clip(np.asarray(sensing_times, dtype=float), 0.0,
                       self.max_sensing_time)

    def require_feasible(self, profile: StrategyProfile) -> None:
        """Raise :class:`InfeasibleStrategyError` unless the profile is valid."""
        lo, hi = self.service_price_bounds
        if not (lo <= profile.service_price <= hi):
            raise InfeasibleStrategyError(
                f"service price {profile.service_price} outside [{lo}, {hi}]"
            )
        lo, hi = self.collection_price_bounds
        if not (lo <= profile.collection_price <= hi):
            raise InfeasibleStrategyError(
                f"collection price {profile.collection_price} outside [{lo}, {hi}]"
            )
        if profile.sensing_times.size != self.num_sellers:
            raise InfeasibleStrategyError(
                f"expected {self.num_sellers} sensing times, "
                f"got {profile.sensing_times.size}"
            )
        if np.any(profile.sensing_times < 0.0) or np.any(
            profile.sensing_times > self.max_sensing_time
        ):
            raise InfeasibleStrategyError(
                "sensing times must lie in [0, T]"
            )

    # -- profit functions (Eqs. 5, 7, 9) ----------------------------------------

    def seller_profits(self, collection_price: float,
                       sensing_times: np.ndarray) -> np.ndarray:
        """Each selected seller's profit ``Psi_i`` (Eq. 5), shape ``(K,)``."""
        taus = np.asarray(sensing_times, dtype=float)
        costs = (self.cost_a * taus * taus + self.cost_b * taus) * self.qualities
        return float(collection_price) * taus - costs

    def platform_profit(self, service_price: float, collection_price: float,
                        sensing_times: np.ndarray) -> float:
        """The platform's profit ``Omega`` (Eq. 7)."""
        total = float(np.sum(sensing_times))
        aggregation = self.theta * total * total + self.lam * total
        return (float(service_price) - float(collection_price)) * total - aggregation

    def consumer_profit(self, service_price: float,
                        sensing_times: np.ndarray) -> float:
        """The consumer's profit ``Phi`` (Eq. 9)."""
        total = float(np.sum(sensing_times))
        value = self.omega * math.log1p(self.mean_quality * total)
        return value - float(service_price) * total

    # -- stage-3 best responses --------------------------------------------------

    def seller_best_responses(self, collection_price: float) -> np.ndarray:
        """All sellers' Stage-3 optima ``tau_i*`` (Theorem 14), clipped to ``[0, T]``.

        ``tau_i* = (p - qbar_i * b_i) / (2 * qbar_i * a_i)``, floored at 0
        when the price does not cover the marginal cost of the first unit
        of effort and capped at the round duration ``T``.
        """
        p = float(collection_price)
        interior = (p - self.qualities * self.cost_b) / (
            2.0 * self.qualities * self.cost_a
        )
        return np.clip(interior, 0.0, self.max_sensing_time)

    def profile_profits(self, profile: StrategyProfile) -> dict[str, object]:
        """All profits of a joint strategy, keyed by participant."""
        sellers = self.seller_profits(profile.collection_price,
                                      profile.sensing_times)
        return {
            "consumer": self.consumer_profit(profile.service_price,
                                             profile.sensing_times),
            "platform": self.platform_profit(profile.service_price,
                                             profile.collection_price,
                                             profile.sensing_times),
            "sellers": sellers,
        }
