"""Numerical backward-induction solver for the three-stage game.

This solver maximises the actual profit functions (Eqs. 5, 7, 9) stage by
stage with one-dimensional numerical optimisation instead of the paper's
closed forms.  It is deliberately independent of
:mod:`repro.core.incentive` so the two can be tested against each other:
the closed-form equilibrium must agree with the numerical one wherever the
closed form's interior assumptions hold.  It is also the fallback when a
price bound binds or a seller opts out (``tau_i* = 0``), situations the
closed-form derivation does not model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.game.best_response import golden_section_maximize, refine_maximize
from repro.game.profits import GameInstance, StrategyProfile

__all__ = [
    "SolvedGame",
    "solve_stage3_numeric",
    "solve_stage2_numeric",
    "solve_stage1_numeric",
    "NumericalStackelbergSolver",
]

#: A follower-response override: ``(game, collection_price) -> taus``.
Stage3Fn = Callable[[GameInstance, float], np.ndarray]
#: A platform-stage override: ``(game, service_price, stage3) -> p*``.
Stage2Fn = Callable[[GameInstance, float, "Stage3Fn | None"], float]


@dataclass(frozen=True)
class SolvedGame:
    """The outcome of solving one round's game.

    Attributes
    ----------
    profile:
        The joint strategy ``<p^J*, p*, tau*>``.
    consumer_profit, platform_profit:
        Profits of the two leaders at the profile.
    seller_profits:
        Per-seller profits, shape ``(K,)``.
    """

    profile: StrategyProfile
    consumer_profit: float
    platform_profit: float
    seller_profits: np.ndarray

    @property
    def mean_seller_profit(self) -> float:
        """Average profit per selected seller (the paper's PoS(s) metric)."""
        return float(self.seller_profits.mean())

    @property
    def total_seller_profit(self) -> float:
        """Sum of the selected sellers' profits."""
        return float(self.seller_profits.sum())

    @classmethod
    def from_profile(cls, game: GameInstance,
                     profile: StrategyProfile) -> "SolvedGame":
        """Evaluate all profits of ``profile`` under ``game``."""
        return cls(
            profile=profile,
            consumer_profit=game.consumer_profit(profile.service_price,
                                                 profile.sensing_times),
            platform_profit=game.platform_profit(profile.service_price,
                                                 profile.collection_price,
                                                 profile.sensing_times),
            seller_profits=game.seller_profits(profile.collection_price,
                                               profile.sensing_times),
        )


#: Number of vectorised golden-section iterations for Stage-3 searches.
#: 80 iterations shrink the bracket by ``0.618^80 ~ 2e-17`` of its width —
#: machine precision for any realistic sensing-time scale.
_GOLDEN_ITERATIONS = 80

_INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0


def _stage3_upper_bound(game: GameInstance,
                        collection_prices: np.ndarray) -> np.ndarray:
    """Finite per-(price, seller) bounds that provably contain ``tau*``.

    The seller profit is strictly concave with its unconstrained maximiser
    at ``(p - q*b) / (2*q*a)``; doubling it (plus one) always brackets the
    optimum, and a finite round duration ``T`` caps it.  Shape ``(P, K)``.
    """
    interior = (
        collection_prices[:, None] - game.qualities * game.cost_b
    ) / (2.0 * game.qualities * game.cost_a)
    bound = np.maximum(2.0 * interior, 0.0) + 1.0
    if math.isfinite(game.max_sensing_time):
        bound = np.minimum(bound, game.max_sensing_time)
    return bound


def solve_stage3_batch(game: GameInstance,
                       collection_prices: np.ndarray) -> np.ndarray:
    """Stage-3 numerical optima for many candidate prices at once.

    Runs a vectorised golden-section search over the ``(P, K)`` matrix of
    (price, seller) sensing-time problems — the building block that keeps
    the purely numerical backward induction tractable.  Returns the
    ``tau`` matrix of shape ``(P, K)``.
    """
    prices = np.asarray(collection_prices, dtype=float)
    lo = np.zeros((prices.size, game.num_sellers))
    hi = _stage3_upper_bound(game, prices)
    q, a, b = game.qualities, game.cost_a, game.cost_b
    p_col = prices[:, None]

    def profit(tau: np.ndarray) -> np.ndarray:
        return p_col * tau - (a * tau * tau + b * tau) * q

    x1 = hi - _INV_PHI * (hi - lo)
    x2 = lo + _INV_PHI * (hi - lo)
    f1, f2 = profit(x1), profit(x2)
    for __ in range(_GOLDEN_ITERATIONS):
        left = f1 < f2
        lo = np.where(left, x1, lo)
        hi = np.where(left, hi, x2)
        x1 = hi - _INV_PHI * (hi - lo)
        x2 = lo + _INV_PHI * (hi - lo)
        f1, f2 = profit(x1), profit(x2)
        if float(np.max(hi - lo)) < 1e-11:
            break
    return (lo + hi) / 2.0


def solve_stage3_numeric(game: GameInstance,
                         collection_price: float) -> np.ndarray:
    """Each seller's profit-maximising ``tau_i`` found numerically.

    Maximises Eq. (5) with golden-section search on ``[0, min(T, bound)]``
    per seller (vectorised internally).
    """
    return solve_stage3_batch(game, np.array([float(collection_price)]))[0]


def solve_stage2_numeric(game: GameInstance, service_price: float,
                         stage3: Stage3Fn | None = None,
                         coarse_points: int = 601) -> float:
    """The platform's profit-maximising ``p`` given the consumer's ``p^J``.

    Anticipates the sellers' Stage-3 responses and maximises Eq. (7) over
    the platform's feasible price interval: a vectorised coarse grid
    locates the basin, golden-section search polishes it.  The interval
    is additionally capped at ``p^J`` — a broker never rationally pays
    sellers more per unit time than it is paid.

    ``stage3`` overrides the follower-response function (signature
    ``(game, price) -> taus``); the default uses the vectorised numerical
    search.
    """
    lo, hi = game.collection_price_bounds
    hi = min(hi, max(float(service_price), lo))
    if hi <= lo:
        return lo
    respond = stage3 if stage3 is not None else solve_stage3_numeric

    if stage3 is None:
        # Fast vectorised coarse pass.
        grid = np.linspace(lo, hi, max(coarse_points, 3))
        taus = solve_stage3_batch(game, grid)
        totals = taus.sum(axis=1)
        aggregation = game.theta * totals * totals + game.lam * totals
        profits = (service_price - grid) * totals - aggregation
        best = int(np.argmax(profits))
        bracket_lo = float(grid[max(best - 1, 0)])
        bracket_hi = float(grid[min(best + 1, grid.size - 1)])
    else:
        bracket_lo, bracket_hi = lo, hi

    def profit(price: float) -> float:
        return game.platform_profit(service_price, price,
                                    respond(game, price))

    if stage3 is None:
        return golden_section_maximize(profit, bracket_lo, bracket_hi)
    return refine_maximize(profit, bracket_lo, bracket_hi,
                           coarse_points=coarse_points)


def solve_stage1_numeric(game: GameInstance,
                         stage2: Stage2Fn = solve_stage2_numeric,
                         stage3: Stage3Fn | None = None,
                         coarse_points: int = 201) -> float:
    """The consumer's profit-maximising ``p^J`` anticipating both stages.

    Maximises Eq. (9) over the consumer's feasible price interval, with
    the platform and sellers best-responding at every candidate price.
    The default interval upper bound is tightened to a price above which
    the consumer's profit is provably decreasing (the valuation is capped
    by ``omega * ln(1 + qbar * S)``; see :meth:`_stage1_search_cap`).
    """
    lo, hi = game.service_price_bounds
    hi = min(hi, _stage1_search_cap(game))
    hi = max(hi, lo)

    respond = stage3 if stage3 is not None else solve_stage3_numeric

    def profit(service_price: float) -> float:
        collection_price = stage2(game, service_price, stage3)
        taus = respond(game, collection_price)
        return game.consumer_profit(service_price, taus)

    return refine_maximize(profit, lo, hi, coarse_points=coarse_points)


def _stage1_search_cap(game: GameInstance) -> float:
    """A finite upper bound on any rational consumer price.

    The consumer pays ``p^J * S`` and receives at most
    ``omega * qbar * S`` of marginal value (``ln(1+x) <= x``), so prices
    above ``omega * qbar`` are dominated whenever any positive sensing
    time is induced.  A safety factor of 2 keeps the grid from clipping
    the optimum when sensing times are tiny.
    """
    return 2.0 * game.omega * game.mean_quality + 10.0


class NumericalStackelbergSolver:
    """Backward-induction solver using only numerical optimisation.

    The full solve evaluates the two leader stages jointly on a dense
    ``(p^J, p)`` grid (one vectorised Stage-3 batch serves every cell),
    then polishes both prices with golden-section search around the best
    cell.  This keeps the solver completely independent of the paper's
    closed forms while staying fast enough to cross-validate them in
    tests.

    Parameters
    ----------
    stage1_points, stage2_points:
        Grid densities for the consumer-price and platform-price axes;
        the defaults trade a few hundred thousand vectorised profit
        evaluations for robustness to the consumer profit's
        piecewise-unimodal shape (Fig. 3 of the paper).
    """

    def __init__(self, stage1_points: int = 201, stage2_points: int = 601) -> None:
        self._stage1_points = int(stage1_points)
        self._stage2_points = int(stage2_points)

    def cascade(self, game: GameInstance,
                service_price: float) -> tuple[float, np.ndarray]:
        """Best responses of the lower tiers to a consumer price.

        Returns ``(p*, tau*)`` — the platform's numerical best response
        and the sellers' responses to it.
        """
        collection_price = solve_stage2_numeric(
            game, service_price, coarse_points=self._stage2_points
        )
        taus = solve_stage3_numeric(game, collection_price)
        return collection_price, taus

    def _grid_solve(self, game: GameInstance) -> tuple[float, float]:
        """Best ``(p^J, p)`` cell of the joint leader grid."""
        svc_lo, svc_hi = game.service_price_bounds
        svc_hi = max(min(svc_hi, _stage1_search_cap(game)), svc_lo)
        col_lo, col_hi = game.collection_price_bounds
        col_hi = max(min(col_hi, svc_hi), col_lo)
        p_grid = np.linspace(col_lo, col_hi, self._stage2_points)
        taus = solve_stage3_batch(game, p_grid)
        totals = taus.sum(axis=1)
        aggregation = game.theta * totals * totals + game.lam * totals
        pj_grid = np.linspace(svc_lo, svc_hi, self._stage1_points)
        platform = (
            (pj_grid[:, None] - p_grid[None, :]) * totals[None, :]
            - aggregation[None, :]
        )
        # A broker never pays more per unit time than it is paid.
        platform = np.where(p_grid[None, :] > pj_grid[:, None],
                            -np.inf, platform)
        best_p_index = np.argmax(platform, axis=1)
        chosen_totals = totals[best_p_index]
        consumer = (
            game.omega * np.log1p(game.mean_quality * chosen_totals)
            - pj_grid * chosen_totals
        )
        best_j = int(np.argmax(consumer))
        return float(pj_grid[best_j]), float(p_grid[best_p_index[best_j]])

    def solve(self, game: GameInstance) -> SolvedGame:
        """Solve all three stages and return the full outcome."""
        pj_coarse, p_coarse = self._grid_solve(game)
        svc_lo, svc_hi = game.service_price_bounds
        col_lo, col_hi = game.collection_price_bounds
        pj_step = (
            max(min(svc_hi, _stage1_search_cap(game)) - svc_lo, 0.0)
            / max(self._stage1_points - 1, 1)
        )
        p_step = (
            max(min(col_hi, svc_hi) - col_lo, 0.0)
            / max(self._stage2_points - 1, 1)
        )

        def local_stage2(service_price: float) -> float:
            lo = max(col_lo, p_coarse - 3.0 * p_step)
            hi = min(col_hi, p_coarse + 3.0 * p_step,
                     max(service_price, col_lo))

            def platform_profit(price: float) -> float:
                return game.platform_profit(
                    service_price, price, solve_stage3_numeric(game, price)
                )

            return golden_section_maximize(platform_profit, lo, max(hi, lo),
                                           tolerance=1e-8)

        def consumer_profit(service_price: float) -> float:
            price = local_stage2(service_price)
            taus = solve_stage3_numeric(game, price)
            return game.consumer_profit(service_price, taus)

        service_price = golden_section_maximize(
            consumer_profit,
            max(svc_lo, pj_coarse - pj_step),
            min(svc_hi, pj_coarse + pj_step),
            tolerance=1e-7,
        )
        service_price = game.clip_service_price(service_price)
        collection_price, taus = self.cascade(game, service_price)
        profile = StrategyProfile(
            service_price=service_price,
            collection_price=game.clip_collection_price(collection_price),
            sensing_times=game.clip_sensing_times(taus),
        )
        return SolvedGame.from_profile(game, profile)
