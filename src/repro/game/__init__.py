"""Generic hierarchical Stackelberg game machinery.

Profit functions (Eqs. 5/7/9), numerical backward-induction solvers, and
deviation-curve analysis.  The paper-specific *closed-form* equilibrium
lives in :mod:`repro.core.incentive`; this package is the substrate both
it and its verification tests stand on.
"""

from repro.game.analysis import (
    DeviationCurve,
    ProfitCurves,
    consumer_price_sweep,
    seller_time_deviation_sweep,
)
from repro.game.best_response import (
    golden_section_maximize,
    grid_maximize,
    refine_maximize,
)
from repro.game.profits import GameInstance, StrategyProfile
from repro.game.stackelberg import (
    NumericalStackelbergSolver,
    SolvedGame,
    solve_stage1_numeric,
    solve_stage2_numeric,
    solve_stage3_numeric,
)
from repro.game.welfare import (
    WelfareAnalysis,
    analyze_welfare,
    maximize_welfare,
    social_welfare,
)

__all__ = [
    "GameInstance",
    "StrategyProfile",
    "SolvedGame",
    "NumericalStackelbergSolver",
    "solve_stage1_numeric",
    "solve_stage2_numeric",
    "solve_stage3_numeric",
    "golden_section_maximize",
    "grid_maximize",
    "refine_maximize",
    "ProfitCurves",
    "DeviationCurve",
    "consumer_price_sweep",
    "seller_time_deviation_sweep",
    "social_welfare",
    "maximize_welfare",
    "WelfareAnalysis",
    "analyze_welfare",
]
