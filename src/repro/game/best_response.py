"""Numerical one-dimensional maximisers.

The closed-form equilibrium (Theorems 14-16) is the paper's contribution;
these numerical solvers exist to *verify* it and to solve the game when a
user plugs in non-quadratic/non-log cost or valuation functions for which
no closed form exists.

Two strategies are provided:

* :func:`golden_section_maximize` — fast, for unimodal objectives (every
  stage objective of this game is unimodal on its feasible interval);
* :func:`grid_maximize` — robust brute force used as a cross-check and for
  objectives of unknown shape.
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np

from repro.exceptions import GameError

__all__ = ["golden_section_maximize", "grid_maximize", "refine_maximize"]

_INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0  # 1/phi ~ 0.618


def golden_section_maximize(objective: Callable[[float], float], lower: float,
                            upper: float, tolerance: float = 1e-10,
                            max_iterations: int = 200) -> float:
    """Maximise a unimodal ``objective`` on ``[lower, upper]``.

    Returns the maximising argument (not the value).  For objectives that
    are monotone on the interval this converges to the appropriate
    endpoint.

    Raises
    ------
    GameError
        If the interval is empty or not finite.
    """
    lo, hi = float(lower), float(upper)
    if not (math.isfinite(lo) and math.isfinite(hi)):
        raise GameError(f"golden-section interval must be finite, got [{lo}, {hi}]")
    if hi < lo:
        raise GameError(f"empty interval [{lo}, {hi}]")
    if hi == lo:
        return lo
    x1 = hi - _INV_PHI * (hi - lo)
    x2 = lo + _INV_PHI * (hi - lo)
    f1, f2 = objective(x1), objective(x2)
    for _ in range(max_iterations):
        if hi - lo <= tolerance:
            break
        if f1 < f2:
            lo, x1, f1 = x1, x2, f2
            x2 = lo + _INV_PHI * (hi - lo)
            f2 = objective(x2)
        else:
            hi, x2, f2 = x2, x1, f1
            x1 = hi - _INV_PHI * (hi - lo)
            f1 = objective(x1)
    midpoint = (lo + hi) / 2.0
    # Guard against monotone objectives: compare against the endpoints.
    candidates = [lower, midpoint, upper]
    values = [objective(float(c)) for c in candidates]
    return float(candidates[int(np.argmax(values))])


def grid_maximize(objective: Callable[[float], float], lower: float,
                  upper: float, num_points: int = 2_001) -> float:
    """Maximise ``objective`` on ``[lower, upper]`` by dense grid search.

    Robust to multi-modality at the cost of ``num_points`` evaluations.
    Returns the best grid point.
    """
    lo, hi = float(lower), float(upper)
    if not (math.isfinite(lo) and math.isfinite(hi)):
        raise GameError(f"grid interval must be finite, got [{lo}, {hi}]")
    if hi < lo:
        raise GameError(f"empty interval [{lo}, {hi}]")
    if num_points < 2 or hi == lo:
        return lo
    grid = np.linspace(lo, hi, num_points)
    values = np.array([objective(float(x)) for x in grid])
    return float(grid[int(np.argmax(values))])


def refine_maximize(objective: Callable[[float], float], lower: float,
                    upper: float, coarse_points: int = 401,
                    tolerance: float = 1e-10) -> float:
    """Two-phase maximiser: coarse grid, then golden-section refinement.

    Handles objectives that are piecewise-unimodal (the consumer's profit
    in ``Upsilon`` has two local maxima, Fig. 3 of the paper): the grid
    locates the basin of the global maximum and golden-section polishes it.
    """
    lo, hi = float(lower), float(upper)
    if hi <= lo:
        return golden_section_maximize(objective, lo, hi, tolerance)
    grid = np.linspace(lo, hi, max(coarse_points, 3))
    values = np.array([objective(float(x)) for x in grid])
    best = int(np.argmax(values))
    left = grid[max(best - 1, 0)]
    right = grid[min(best + 1, grid.size - 1)]
    return golden_section_maximize(objective, float(left), float(right), tolerance)
