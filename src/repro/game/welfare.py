"""Social welfare and the price of anarchy of the Stackelberg game.

The CMAB-HS incentive mechanism maximises *individual* profits through a
hierarchy of best responses.  The unit prices ``p^J`` and ``p`` are pure
transfers between the three parties, so a round's *social welfare*
depends only on the sensing-time profile::

    W(tau) = phi(tau, qbar) - sum_i C_i(tau_i, qbar_i) - C^J(tau)

This module computes the welfare-maximising profile (a strictly concave
program solved by projected Newton steps on the first-order conditions)
and the round's **price of anarchy** — the ratio of the optimal welfare
to the welfare realised at the Stackelberg Equilibrium.  A ratio of 1
would mean the selfish hierarchy loses nothing; the experiments quantify
how far from 1 the paper's mechanism operates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import GameError
from repro.game.profits import GameInstance, StrategyProfile

__all__ = [
    "social_welfare",
    "maximize_welfare",
    "WelfareAnalysis",
    "analyze_welfare",
]


def social_welfare(game: GameInstance, sensing_times: np.ndarray) -> float:
    """The round's total surplus ``W(tau)`` (prices cancel out).

    ``W = omega*ln(1 + qbar*sum(tau)) - sum_i (a_i tau_i^2 + b_i tau_i)
    qbar_i - theta*(sum tau)^2 - lambda*sum(tau)``.
    """
    taus = np.asarray(sensing_times, dtype=float)
    total = float(taus.sum())
    value = game.omega * math.log1p(game.mean_quality * total)
    seller_costs = float(np.sum(
        (game.cost_a * taus * taus + game.cost_b * taus) * game.qualities
    ))
    aggregation = game.theta * total * total + game.lam * total
    return value - seller_costs - aggregation


def _welfare_gradient(game: GameInstance, taus: np.ndarray) -> np.ndarray:
    total = float(taus.sum())
    marginal_value = (
        game.omega * game.mean_quality
        / (1.0 + game.mean_quality * total)
    )
    marginal_aggregation = 2.0 * game.theta * total + game.lam
    marginal_cost = (
        2.0 * game.cost_a * taus + game.cost_b
    ) * game.qualities
    return marginal_value - marginal_cost - marginal_aggregation


def maximize_welfare(game: GameInstance, tolerance: float = 1e-10,
                     max_iterations: int = 500) -> np.ndarray:
    """The sensing-time profile maximising social welfare.

    ``W`` is strictly concave in ``tau`` (log value minus convex costs),
    so projected fixed-point iteration on the stationarity conditions
    converges: given the common marginal
    ``g(T) = omega*qbar/(1+qbar*T) - 2*theta*T - lambda``, each seller's
    interior optimum is ``tau_i = (g(T) - b_i*qbar_i)/(2*a_i*qbar_i)``,
    floored at 0 and capped at the round duration.  We iterate on the
    scalar total ``T`` with bisection — ``sum_i tau_i(T)`` is strictly
    decreasing in ``T``, so the consistent total is unique.

    Raises
    ------
    GameError
        If bisection fails to bracket a solution (cannot happen for
        valid instances; defensive).
    """
    q_bar = game.mean_quality
    qualities, cost_a, cost_b = game.qualities, game.cost_a, game.cost_b

    def taus_given_total(total: float) -> np.ndarray:
        marginal = (
            game.omega * q_bar / (1.0 + q_bar * total)
            - 2.0 * game.theta * total - game.lam
        )
        interior = (marginal - cost_b * qualities) / (
            2.0 * cost_a * qualities
        )
        return np.clip(interior, 0.0, game.max_sensing_time)

    def excess(total: float) -> float:
        return float(taus_given_total(total).sum()) - total

    lo = 0.0
    if excess(lo) <= 0.0:
        # Even at zero total the marginal value cannot pay the first
        # unit of anyone's cost: the optimum is no sensing at all.
        return np.zeros(game.num_sellers)
    hi = 1.0
    for __ in range(200):
        if excess(hi) < 0.0:
            break
        hi *= 2.0
    else:  # pragma: no cover - defensive
        raise GameError("could not bracket the welfare-optimal total time")
    for __ in range(max_iterations):
        mid = (lo + hi) / 2.0
        if excess(mid) > 0.0:
            lo = mid
        else:
            hi = mid
        if hi - lo < tolerance:
            break
    return taus_given_total((lo + hi) / 2.0)


@dataclass(frozen=True)
class WelfareAnalysis:
    """Welfare at the SE versus the social optimum for one round.

    Attributes
    ----------
    equilibrium_welfare:
        ``W(tau*)`` at the Stackelberg Equilibrium profile.
    optimal_welfare:
        ``W`` at the welfare-maximising profile.
    optimal_taus:
        The welfare-maximising sensing times.
    price_of_anarchy:
        ``optimal_welfare / equilibrium_welfare`` (>= 1 whenever the
        equilibrium welfare is positive).
    efficiency:
        ``equilibrium_welfare / optimal_welfare`` in ``[0, 1]``.
    """

    equilibrium_welfare: float
    optimal_welfare: float
    optimal_taus: np.ndarray
    price_of_anarchy: float
    efficiency: float


def analyze_welfare(game: GameInstance,
                    equilibrium: StrategyProfile) -> WelfareAnalysis:
    """Compare a round's equilibrium welfare against the social optimum.

    Raises
    ------
    GameError
        If the equilibrium welfare is non-positive (the ratio is then
        meaningless; check the profile).
    """
    equilibrium_welfare = social_welfare(game, equilibrium.sensing_times)
    optimal_taus = maximize_welfare(game)
    optimal_welfare = social_welfare(game, optimal_taus)
    if equilibrium_welfare <= 0.0:
        raise GameError(
            "equilibrium welfare is non-positive "
            f"({equilibrium_welfare:.4f}); price of anarchy undefined"
        )
    return WelfareAnalysis(
        equilibrium_welfare=equilibrium_welfare,
        optimal_welfare=optimal_welfare,
        optimal_taus=optimal_taus,
        price_of_anarchy=optimal_welfare / equilibrium_welfare,
        efficiency=equilibrium_welfare / optimal_welfare,
    )
