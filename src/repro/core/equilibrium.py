"""Stackelberg Equilibrium verification (Definition 13, Theorem 20).

Given a solved strategy profile, this module searches for profitable
unilateral deviations:

* **sellers** (Eq. 16): each seller's profit at ``tau_i*`` must dominate
  every feasible ``tau_i`` with prices and the other sellers fixed;
* **platform** (Eq. 15): with ``p^J*`` fixed and sellers best-responding,
  no alternative ``p`` may yield more platform profit;
* **consumer** (Eq. 14): with both lower tiers best-responding, no
  alternative ``p^J`` may yield more consumer profit.

For the two leader checks the followers *re-respond* to the deviation (the
standard Stackelberg notion, and the one the paper's backward induction
actually establishes).  Deviations are searched on a dense grid; the
verifier reports the worst improvement found for each party.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.exceptions import EquilibriumViolationError
from repro.game.profits import GameInstance, StrategyProfile

__all__ = ["EquilibriumReport", "verify_equilibrium", "assert_equilibrium"]

#: Signature of a lower-tier response: ``(game, p^J) -> (p, tau)``.
CascadeFn = Callable[[GameInstance, float], tuple[float, np.ndarray]]


@dataclass(frozen=True)
class EquilibriumReport:
    """Outcome of an equilibrium verification.

    Each ``*_improvement`` is the largest profit gain any deviation
    achieved over the candidate profile (negative or ~0 at equilibrium).

    Attributes
    ----------
    consumer_improvement, platform_improvement:
        Best deviation gains of the two leaders.
    seller_improvements:
        Per-seller best deviation gains, shape ``(K,)``.
    tolerance:
        Gains at or below this are treated as numerical noise.
    """

    consumer_improvement: float
    platform_improvement: float
    seller_improvements: np.ndarray
    tolerance: float

    @property
    def max_improvement(self) -> float:
        """The single worst deviation gain across all parties."""
        return float(
            max(
                self.consumer_improvement,
                self.platform_improvement,
                float(self.seller_improvements.max()),
            )
        )

    @property
    def is_equilibrium(self) -> bool:
        """Whether no deviation beats the profile beyond the tolerance."""
        return self.max_improvement <= self.tolerance

    def describe(self) -> str:
        """One-line human-readable summary."""
        status = "SE holds" if self.is_equilibrium else "SE VIOLATED"
        return (
            f"{status}: best deviation gains — consumer "
            f"{self.consumer_improvement:+.3e}, platform "
            f"{self.platform_improvement:+.3e}, sellers "
            f"{float(self.seller_improvements.max()):+.3e} "
            f"(tolerance {self.tolerance:.1e})"
        )


def _seller_deviation_gain(game: GameInstance, profile: StrategyProfile,
                           position: int, num_points: int) -> float:
    """Best profit gain seller ``position`` can get by changing ``tau_i``."""
    base = game.seller_profits(profile.collection_price,
                               profile.sensing_times)[position]
    current = profile.sensing_times[position]
    high = max(4.0 * current, 1.0)
    if np.isfinite(game.max_sensing_time):
        high = min(high, game.max_sensing_time)
    grid = np.linspace(0.0, high, num_points)
    quality = game.qualities[position]
    a, b = game.cost_a[position], game.cost_b[position]
    profits = profile.collection_price * grid - (a * grid * grid + b * grid) * quality
    return float(profits.max() - base)


def _platform_deviation_gain(game: GameInstance, profile: StrategyProfile,
                             num_points: int) -> float:
    """Best gain the platform can get by re-pricing (sellers re-respond)."""
    base = game.platform_profit(profile.service_price,
                                profile.collection_price,
                                profile.sensing_times)
    lo, hi = game.collection_price_bounds
    hi = min(hi, max(profile.service_price, lo))
    grid = np.linspace(lo, hi, num_points)
    best = -np.inf
    for price in grid:
        taus = game.seller_best_responses(float(price))
        best = max(best, game.platform_profit(profile.service_price,
                                              price, taus))
    return float(best - base)


def _consumer_deviation_gain(game: GameInstance, profile: StrategyProfile,
                             cascade: CascadeFn, num_points: int) -> float:
    """Best gain the consumer can get by re-pricing (all tiers re-respond)."""
    base = game.consumer_profit(profile.service_price, profile.sensing_times)
    lo, hi = game.service_price_bounds
    hi = min(hi, 2.0 * game.omega * game.mean_quality + 10.0)
    hi = max(hi, lo)
    grid = np.linspace(lo, hi, num_points)
    best = -np.inf
    for service_price in grid:
        __, taus = cascade(game, float(service_price))
        best = max(best, game.consumer_profit(float(service_price), taus))
    return float(best - base)


def verify_equilibrium(game: GameInstance, profile: StrategyProfile,
                       cascade: CascadeFn, num_points: int = 400,
                       tolerance: float = 1e-4) -> EquilibriumReport:
    """Search for profitable unilateral deviations from ``profile``.

    Parameters
    ----------
    game:
        The round's game instance.
    profile:
        The candidate equilibrium ``<p^J*, p*, tau*>``.
    cascade:
        Lower-tier response used when testing consumer deviations — pass
        the same solver that produced the profile (for example
        ``ClosedFormStackelbergSolver().cascade``).
    num_points:
        Grid density per deviation search.
    tolerance:
        Absolute profit-gain tolerance; grid search slightly overshooting
        the continuous optimum is expected at ~``O(grid step^2)``.
    """
    seller_gains = np.array([
        _seller_deviation_gain(game, profile, j, num_points)
        for j in range(game.num_sellers)
    ])
    return EquilibriumReport(
        consumer_improvement=_consumer_deviation_gain(
            game, profile, cascade, num_points
        ),
        platform_improvement=_platform_deviation_gain(
            game, profile, num_points
        ),
        seller_improvements=seller_gains,
        tolerance=tolerance,
    )


def assert_equilibrium(game: GameInstance, profile: StrategyProfile,
                       cascade: CascadeFn, num_points: int = 400,
                       tolerance: float = 1e-4) -> EquilibriumReport:
    """Verify the profile and raise if any profitable deviation exists.

    Returns the report on success.

    Raises
    ------
    EquilibriumViolationError
        If some party can improve beyond ``tolerance`` by deviating.
    """
    report = verify_equilibrium(game, profile, cascade, num_points, tolerance)
    if not report.is_equilibrium:
        raise EquilibriumViolationError(report.describe())
    return report
