"""The paper's primary contribution: the CMAB-HS mechanism.

* :mod:`repro.core.state` / :mod:`repro.core.selection` — quality
  learning and UCB-greedy seller selection (Eqs. 17-19).
* :mod:`repro.core.incentive` — the closed-form three-stage Stackelberg
  equilibrium (Theorems 14-16).
* :mod:`repro.core.mechanism` — Algorithm 1 end to end.
* :mod:`repro.core.regret` — regret accounting and the Theorem-19 bound.
* :mod:`repro.core.equilibrium` — Stackelberg Equilibrium verification
  (Definition 13 / Theorem 20).
"""

from repro.core.diagnostics import (
    CounterReport,
    SellerCounterDiagnostic,
    counter_report,
)
from repro.core.equilibrium import (
    EquilibriumReport,
    assert_equilibrium,
    verify_equilibrium,
)
from repro.core.incentive import (
    ClosedFormStackelbergSolver,
    FormulaVariant,
    StageCoefficients,
    initial_round_prices,
    optimal_collection_price,
    optimal_sensing_times,
    optimal_service_price,
    solve_round_fast,
)
from repro.core.mechanism import CMABHSMechanism, RoundOutcome, TradingResult
from repro.core.regret import (
    GapStatistics,
    RegretTracker,
    gap_statistics,
    lemma18_bound,
    theorem19_bound,
)
from repro.core.selection import select_by_ucb, top_k_indices
from repro.core.state import LearningState

__all__ = [
    "CMABHSMechanism",
    "TradingResult",
    "RoundOutcome",
    "LearningState",
    "select_by_ucb",
    "top_k_indices",
    "FormulaVariant",
    "StageCoefficients",
    "ClosedFormStackelbergSolver",
    "optimal_sensing_times",
    "optimal_collection_price",
    "optimal_service_price",
    "initial_round_prices",
    "solve_round_fast",
    "GapStatistics",
    "gap_statistics",
    "lemma18_bound",
    "theorem19_bound",
    "RegretTracker",
    "CounterReport",
    "SellerCounterDiagnostic",
    "counter_report",
    "EquilibriumReport",
    "verify_equilibrium",
    "assert_equilibrium",
]
