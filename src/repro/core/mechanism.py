"""The CMAB-HS data-trading mechanism (Algorithm 1).

Orchestrates one full data-trading job:

1. **Initial exploration** (round 0): select *all* sellers with a fixed
   sensing time ``tau^0``; pay sellers the maximum collection price and
   charge the consumer the break-even service price (steps 2-4).
2. **Exploit + explore** (rounds 1..N-1): select the top-``K`` sellers by
   UCB index (steps 7-10), play the three-stage hierarchical Stackelberg
   game on the selected set (step 11, Theorems 14-16), collect data, and
   fold the observed qualities back into the learning state (step 12,
   Eqs. 17-18).

The mechanism returns the complete bandit policy ``chi`` and the strategy
profile ``<p^J*, p*, tau*>`` of every round, exactly the outputs of
Algorithm 1, plus per-round profits for analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.obs.timing import perf_counter

import numpy as np

from repro.core.incentive import (
    FormulaVariant,
    initial_round_prices,
    solve_round_fast,
)
from repro.core.regret import RegretTracker
from repro.core.state import LearningState, observation_mask
from repro.entities.consumer import Consumer
from repro.entities.job import Job
from repro.entities.platform import Platform
from repro.entities.seller import SellerPopulation
from repro.exceptions import ConfigurationError
from repro.faults import FaultKind, FaultLog, FaultModel
from repro.game.profits import GameInstance, StrategyProfile
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.quality.distributions import QualityModel, TruncatedGaussianQuality
from repro.quality.sampler import QualitySampler

__all__ = ["RoundOutcome", "TradingResult", "CMABHSMechanism"]

#: Estimated qualities are floored here before entering the game — the
#: closed forms divide by ``qbar_i`` and an all-zero observation run
#: (possible under a Bernoulli model) must not produce a division by zero.
_QUALITY_FLOOR = 1e-6


@dataclass(frozen=True)
class RoundOutcome:
    """Everything that happened in one trading round.

    Attributes
    ----------
    round_index:
        0-based round number ``t``.
    selected:
        Indices of the selected sellers (all ``M`` in round 0).
    service_price, collection_price:
        The strategies ``p^J,t*`` and ``p^t*``.
    sensing_times:
        The sellers' strategies ``tau^t*``, aligned with ``selected``.
    consumer_profit, platform_profit:
        Leader profits of the round.
    seller_profits:
        Per-selected-seller profits, aligned with ``selected``.
    observed_quality_total:
        Realised revenue of the round (sum of all quality observations).
    mean_estimated_quality:
        ``qbar^t`` of the selected set when the game was played.
    estimated_qualities:
        Per-seller estimates ``qbar_i^t`` the round's game was solved
        with, aligned with ``selected``.
    participants:
        Under fault injection: the sellers that actually took part in
        settlement after dropouts (``sensing_times``,
        ``seller_profits``, and ``estimated_qualities`` align with this
        set).  ``None`` on the clean path, meaning "all of
        ``selected``".
    """

    round_index: int
    selected: np.ndarray
    service_price: float
    collection_price: float
    sensing_times: np.ndarray
    consumer_profit: float
    platform_profit: float
    seller_profits: np.ndarray
    observed_quality_total: float
    mean_estimated_quality: float
    estimated_qualities: np.ndarray
    participants: np.ndarray | None = None

    @property
    def active(self) -> np.ndarray:
        """The sellers settlement actually covered this round."""
        return self.participants if self.participants is not None else self.selected

    @property
    def strategy(self) -> StrategyProfile:
        """The round's joint strategy as a :class:`StrategyProfile`."""
        return StrategyProfile(self.service_price, self.collection_price,
                               self.sensing_times)

    @property
    def total_sensing_time(self) -> float:
        """Total sensing time contributed this round."""
        return float(self.sensing_times.sum())


@dataclass
class TradingResult:
    """The output of a full CMAB-HS run (Algorithm 1's return value).

    Attributes
    ----------
    rounds:
        Per-round outcomes in order.
    final_means:
        The final estimated qualities ``qbar_i^N``.
    final_counts:
        The final observation counts ``n_i^N``.
    cumulative_regret:
        Pseudo-regret versus the omniscient top-``K`` policy (Eq. 34).
    regret_history:
        Cumulative regret after each round.
    """

    rounds: list[RoundOutcome]
    final_means: np.ndarray
    final_counts: np.ndarray
    cumulative_regret: float
    regret_history: np.ndarray

    @property
    def num_rounds(self) -> int:
        """Number of rounds actually played."""
        return len(self.rounds)

    @property
    def selection_matrix(self) -> np.ndarray:
        """The bandit policy ``chi`` as an ``(N, M)`` 0/1 matrix."""
        m = self.final_means.size
        chi = np.zeros((self.num_rounds, m), dtype=np.int8)
        for outcome in self.rounds:
            chi[outcome.round_index, outcome.selected] = 1
        return chi

    @property
    def realized_revenue(self) -> float:
        """Total observed quality across the whole run (Definition 8)."""
        return float(sum(r.observed_quality_total for r in self.rounds))

    def profits(self) -> dict[str, np.ndarray]:
        """Per-round profit series keyed by participant."""
        return {
            "consumer": np.array([r.consumer_profit for r in self.rounds]),
            "platform": np.array([r.platform_profit for r in self.rounds]),
            "sellers_mean": np.array([
                float(r.seller_profits.mean()) if r.seller_profits.size
                else 0.0
                for r in self.rounds
            ]),
        }

    def strategies(self) -> dict[str, np.ndarray]:
        """Per-round strategy series keyed by participant."""
        return {
            "service_price": np.array([r.service_price for r in self.rounds]),
            "collection_price": np.array(
                [r.collection_price for r in self.rounds]
            ),
            "total_sensing_time": np.array(
                [r.total_sensing_time for r in self.rounds]
            ),
        }


class CMABHSMechanism:
    """Run the CMAB-HS data-trading mechanism end to end.

    Parameters
    ----------
    population:
        The ``M`` candidate sellers.
    job:
        The consumer's data-collection job (supplies ``L``, ``N``, ``T``).
    platform, consumer:
        The two leader parties (supply cost/valuation parameters and
        price bounds).
    k:
        Number of sellers selected per exploitation round.
    quality_model:
        Observation model; defaults to the paper's truncated Gaussian
        around the population's expected qualities.
    initial_sensing_time:
        The fixed ``tau^0`` of the initial exploration round.
    exploration_coefficient:
        UCB confidence constant; ``None`` means the paper's ``K+1``.
    formula_variant:
        Which closed-form stage-2 constant to use (see
        :class:`~repro.core.incentive.FormulaVariant`).
    seed:
        Master seed for observation noise.
    """

    def __init__(self, population: SellerPopulation, job: Job,
                 platform: Platform, consumer: Consumer, k: int,
                 quality_model: QualityModel | None = None,
                 initial_sensing_time: float = 1.0,
                 exploration_coefficient: float | None = None,
                 formula_variant: FormulaVariant = FormulaVariant.DERIVED,
                 seed: int = 0) -> None:
        if not (1 <= k <= len(population)):
            raise ConfigurationError(
                f"k must be in [1, {len(population)}], got {k}"
            )
        if not (initial_sensing_time > 0.0):
            raise ConfigurationError(
                "initial_sensing_time must be positive, got "
                f"{initial_sensing_time}"
            )
        if initial_sensing_time > job.round_duration:
            raise ConfigurationError(
                "initial_sensing_time exceeds the round duration T"
            )
        if exploration_coefficient is not None and exploration_coefficient <= 0:
            raise ConfigurationError("exploration_coefficient must be positive")
        self._population = population
        self._job = job
        self._platform = platform
        self._consumer = consumer
        self._k = int(k)
        self._tau0 = float(initial_sensing_time)
        self._coefficient = (
            float(exploration_coefficient)
            if exploration_coefficient is not None
            else float(k + 1)
        )
        self._variant = formula_variant
        self._seed = int(seed)
        if quality_model is None:
            quality_model = TruncatedGaussianQuality(
                population.expected_qualities
            )
        if quality_model.num_sellers != len(population):
            raise ConfigurationError(
                "quality model covers a different number of sellers than "
                "the population"
            )
        self._quality_model = quality_model

    # -- public API --------------------------------------------------------------

    @property
    def k(self) -> int:
        """Number of sellers selected per exploitation round."""
        return self._k

    @property
    def exploration_coefficient(self) -> float:
        """The UCB confidence constant (``K+1`` unless overridden)."""
        return self._coefficient

    def build_game(self, selected: np.ndarray,
                   estimated_qualities: np.ndarray) -> GameInstance:
        """The validated game instance of one round (for verification)."""
        return GameInstance(
            qualities=np.maximum(estimated_qualities, _QUALITY_FLOOR),
            cost_a=self._population.cost_a[selected],
            cost_b=self._population.cost_b[selected],
            theta=self._platform.aggregation_cost.theta,
            lam=self._platform.aggregation_cost.lam,
            omega=self._consumer.valuation.omega,
            service_price_bounds=(self._consumer.price_min,
                                  self._consumer.price_max),
            collection_price_bounds=(self._platform.price_min,
                                     self._platform.price_max),
            max_sensing_time=self._job.round_duration,
        )

    def run(self, num_rounds: int | None = None, *,
            fault_model: FaultModel | None = None,
            fault_log: FaultLog | None = None,
            tracer: Tracer | None = None,
            metrics: MetricsRegistry | None = None) -> TradingResult:
        """Execute Algorithm 1 for ``num_rounds`` rounds (default: job's N).

        With a ``fault_model``, seller failures are injected and each
        round degrades gracefully: dropped sellers are removed from
        settlement (the game is re-solved on the survivors, and an
        empty survivor set settles as a no-trade round), corrupted
        reports are quarantined by feasibility validation before they
        can poison ``qbar_i``, and stalled reports miss the round's
        revenue but still reach the learner.  Without one, behaviour is
        bit-identical to the original mechanism.

        ``tracer`` and ``metrics`` attach the observability layer:
        structured per-round events (selection with UCB indices, the
        equilibrium ``<p^J*, p*, tau*>``, profits, fault injections)
        and counter/gauge/timer telemetry.  Both are read-only
        observers — they never touch an RNG stream, so traced runs are
        bit-identical to untraced ones.
        """
        n = int(num_rounds) if num_rounds is not None else self._job.num_rounds
        if n <= 0:
            raise ConfigurationError(f"num_rounds must be positive, got {n}")
        m = len(self._population)
        if fault_model is not None and fault_model.num_sellers != m:
            raise ConfigurationError(
                "fault model covers a different number of sellers than "
                "the population"
            )
        tr = tracer if tracer is not None else NULL_TRACER
        reg = metrics if metrics is not None else MetricsRegistry()
        num_pois = self._job.num_pois
        # Call-time import: repro.sim imports repro.core, so a
        # top-level import of repro.sim.rng would be circular.
        from repro.sim.rng import seeded_generator

        sampler = QualitySampler(
            self._quality_model, num_pois, seeded_generator(self._seed)
        )
        state = LearningState(m)
        tracker = RegretTracker(
            self._population.expected_qualities, self._k, num_pois
        )
        log = fault_log
        if log is None and fault_model is not None:
            log = FaultLog()
        run_start = perf_counter()
        if tr.enabled:
            tr.emit("run_start", mechanism="cmab-hs", num_rounds=n,
                    num_sellers=m, num_selected=self._k, num_pois=num_pois,
                    seed=self._seed, faults=fault_model is not None)
        rounds: list[RoundOutcome] = []
        for t in range(n):
            round_start = perf_counter()
            if tr.enabled:
                tr.emit("round_start", round_index=t)
            select_start = perf_counter()
            selected = np.arange(m) if t == 0 else self._select(state)
            reg.timer("mechanism.selection").observe(
                perf_counter() - select_start
            )
            if tr.enabled:
                ucb = (None if t == 0
                       else state.ucb_values(self._coefficient)[selected])
                tr.emit("selection", round_index=t, selected=selected,
                        explore=t == 0, ucb=ucb,
                        duration_s=perf_counter() - select_start)
            plan = None
            participants = selected
            if fault_model is not None:
                plan = fault_model.plan_round(t, selected, num_pois)
                fault_model.log_plan(plan, log, tracer=tr)
                reg.counter("fault_events").inc(
                    plan.dropped.size + plan.corrupted.size
                    + plan.stalled.size
                )
                participants = selected[~np.isin(selected, plan.dropped)]
                if 0 < participants.size < selected.size:
                    reg.counter("degraded_resolves").inc()
                    if log is not None:
                        log.record(t, FaultKind.DEGRADED,
                                   value=float(participants.size))
                    if tr.enabled:
                        tr.emit("fault", round_index=t,
                                fault=FaultKind.DEGRADED.value,
                                survivors=participants.size)
            if participants.size == 0:
                reg.counter("no_trade_rounds").inc()
                if log is not None:
                    log.record(t, FaultKind.NO_TRADE)
                if tr.enabled:
                    tr.emit("fault", round_index=t,
                            fault=FaultKind.NO_TRADE.value)
                outcome = self._no_trade_round(t, selected)
            elif t == 0:
                outcome = self._play_initial_round(
                    selected, state, sampler, plan=plan,
                    participants=participants, log=log, tr=tr, reg=reg,
                )
            else:
                outcome = self._play_round(
                    t, selected, state, sampler, plan=plan,
                    participants=participants, log=log, tr=tr, reg=reg,
                )
            tracker.record(selected)
            rounds.append(outcome)
            reg.counter("rounds").inc()
            reg.gauge("cumulative_regret").set(tracker.cumulative_regret)
            reg.timer("mechanism.round").observe(perf_counter() - round_start)
            if tr.enabled:
                tr.emit("profits", round_index=t,
                        consumer=outcome.consumer_profit,
                        platform=outcome.platform_profit,
                        sellers_mean=(float(outcome.seller_profits.mean())
                                      if outcome.seller_profits.size
                                      else 0.0),
                        realized=outcome.observed_quality_total)
                tr.emit("round_end", round_index=t,
                        duration_s=perf_counter() - round_start)
        if tr.enabled:
            tr.emit("run_end", mechanism="cmab-hs", rounds_played=n,
                    total_revenue=float(
                        sum(r.observed_quality_total for r in rounds)
                    ),
                    final_regret=tracker.cumulative_regret,
                    duration_s=perf_counter() - run_start)
            tr.flush()
        return TradingResult(
            rounds=rounds,
            final_means=state.means,
            final_counts=np.asarray(state.counts, dtype=np.int64).copy(),
            cumulative_regret=tracker.cumulative_regret,
            regret_history=tracker.history,
        )

    # -- internals -----------------------------------------------------------------

    def _select(self, state: LearningState) -> np.ndarray:
        ucb = state.ucb_values(self._coefficient)
        order = np.argsort(-ucb, kind="stable")
        return np.sort(order[: self._k])

    def _collect(self, t: int, participants: np.ndarray,
                 state: LearningState, sampler: QualitySampler,
                 plan, log: FaultLog | None,
                 tr: Tracer = NULL_TRACER,
                 reg: MetricsRegistry | None = None) -> float:
        """Sample one round's data, quarantine garbage, learn, settle.

        Returns the round's creditable observed-quality total.  On the
        clean path (``plan is None``) this is exactly the original
        sample-then-update sequence.
        """
        observations = sampler.sample_round(participants, round_index=t)
        if plan is None:
            state.update(participants, observations.sums,
                         self._job.num_pois)
            return observations.total
        delivered = observations.sums.copy()
        if plan.corrupted.size:
            position = {int(s): i for i, s in enumerate(participants)}
            for seller, garbage in zip(plan.corrupted, plan.corrupted_sums):
                delivered[position[int(seller)]] = garbage
        valid = observation_mask(delivered, self._job.num_pois)
        invalid_positions = np.flatnonzero(~valid)
        if reg is not None and invalid_positions.size:
            reg.counter("quarantined_reports").inc(invalid_positions.size)
        for pos in invalid_positions:
            if log is not None:
                log.record(t, FaultKind.QUARANTINE, int(participants[pos]),
                           float(delivered[pos]))
            if tr.enabled:
                tr.emit("fault", round_index=t,
                        fault=FaultKind.QUARANTINE.value,
                        seller=int(participants[pos]),
                        value=float(delivered[pos]))
        # Stalled reports arrive after settlement but still reach the
        # learner; quarantined ones reach neither.
        state.update(participants[valid], delivered[valid],
                     self._job.num_pois)
        settle = valid & ~np.isin(participants, plan.stalled)
        return float(delivered[settle].sum())

    def _no_trade_round(self, t: int, selected: np.ndarray) -> RoundOutcome:
        """Fallback when every selected seller dropped out.

        The round settles with no trade: zero profits on every side,
        prices pinned to their lower bounds, empty strategy vectors,
        and nothing learned.
        """
        empty = np.empty(0)
        return RoundOutcome(
            round_index=t,
            selected=selected,
            service_price=self._consumer.price_min,
            collection_price=self._platform.price_min,
            sensing_times=empty,
            consumer_profit=0.0,
            platform_profit=0.0,
            seller_profits=empty,
            observed_quality_total=0.0,
            mean_estimated_quality=0.0,
            estimated_qualities=empty,
            participants=np.empty(0, dtype=int),
        )

    def _play_initial_round(self, selected: np.ndarray, state: LearningState,
                            sampler: QualitySampler, *, plan=None,
                            participants: np.ndarray | None = None,
                            log: FaultLog | None = None,
                            tr: Tracer = NULL_TRACER,
                            reg: MetricsRegistry | None = None
                            ) -> RoundOutcome:
        """Round 0: explore all sellers at fixed time and break-even prices."""
        if participants is None:
            participants = selected
        taus = np.full(participants.size, self._tau0)
        game = GameInstance(
            qualities=np.full(participants.size, 0.5),  # placeholder; unused by pricing
            cost_a=self._population.cost_a[participants],
            cost_b=self._population.cost_b[participants],
            theta=self._platform.aggregation_cost.theta,
            lam=self._platform.aggregation_cost.lam,
            omega=self._consumer.valuation.omega,
            service_price_bounds=(self._consumer.price_min,
                                  self._consumer.price_max),
            collection_price_bounds=(self._platform.price_min,
                                     self._platform.price_max),
            max_sensing_time=self._job.round_duration,
        )
        solve_start = perf_counter()
        service_price, collection_price = initial_round_prices(game, self._tau0)
        solve_elapsed = perf_counter() - solve_start
        if reg is not None:
            reg.timer("mechanism.solve").observe(solve_elapsed)
        if tr.enabled:
            tr.emit("equilibrium", round_index=0,
                    service_price=service_price,
                    collection_price=collection_price,
                    tau_total=float(taus.sum()), explore=True,
                    duration_s=solve_elapsed)
        observed_total = self._collect(0, participants, state, sampler,
                                       plan, log, tr, reg)
        means = state.means[participants]
        seller_profits = (
            collection_price * taus
            - (self._population.cost_a[participants] * taus * taus
               + self._population.cost_b[participants] * taus) * means
        )
        total = float(taus.sum())
        aggregation = self._platform.aggregation_cost(total)
        platform_profit = (service_price - collection_price) * total - aggregation
        consumer_profit = self._consumer.profit(
            service_price, total, float(means.mean())
        )
        return RoundOutcome(
            round_index=0,
            selected=selected,
            service_price=service_price,
            collection_price=collection_price,
            sensing_times=taus,
            consumer_profit=consumer_profit,
            platform_profit=platform_profit,
            seller_profits=seller_profits,
            observed_quality_total=observed_total,
            mean_estimated_quality=float(means.mean()),
            estimated_qualities=means.copy(),
            participants=None if plan is None else participants,
        )

    def _play_round(self, t: int, selected: np.ndarray, state: LearningState,
                    sampler: QualitySampler, *, plan=None,
                    participants: np.ndarray | None = None,
                    log: FaultLog | None = None,
                    tr: Tracer = NULL_TRACER,
                    reg: MetricsRegistry | None = None) -> RoundOutcome:
        """Rounds 1..N-1: HS game on the surviving set, then learn."""
        if participants is None:
            participants = selected
        means = np.maximum(state.means[participants], _QUALITY_FLOOR)
        cost_a = self._population.cost_a[participants]
        cost_b = self._population.cost_b[participants]
        theta = self._platform.aggregation_cost.theta
        lam = self._platform.aggregation_cost.lam
        solve_start = perf_counter()
        service_price, collection_price, taus = solve_round_fast(
            means, cost_a, cost_b, theta, lam,
            self._consumer.valuation.omega,
            (self._consumer.price_min, self._consumer.price_max),
            (self._platform.price_min, self._platform.price_max),
            self._job.round_duration,
            paper_variant=(self._variant is FormulaVariant.PAPER),
        )
        solve_elapsed = perf_counter() - solve_start
        if reg is not None:
            reg.timer("mechanism.solve").observe(solve_elapsed)
        if tr.enabled:
            tr.emit("equilibrium", round_index=t,
                    service_price=service_price,
                    collection_price=collection_price,
                    tau_total=float(taus.sum()), explore=False,
                    duration_s=solve_elapsed)
        seller_profits = (
            collection_price * taus
            - (cost_a * taus * taus + cost_b * taus) * means
        )
        total = float(taus.sum())
        aggregation = theta * total * total + lam * total
        platform_profit = (service_price - collection_price) * total - aggregation
        mean_quality = float(means.mean())
        consumer_profit = (
            self._consumer.valuation(total, mean_quality)
            - service_price * total
        )
        observed_total = self._collect(t, participants, state, sampler,
                                       plan, log, tr, reg)
        return RoundOutcome(
            round_index=t,
            selected=selected,
            service_price=service_price,
            collection_price=collection_price,
            sensing_times=taus,
            consumer_profit=consumer_profit,
            platform_profit=platform_profit,
            seller_profits=seller_profits,
            observed_quality_total=observed_total,
            mean_estimated_quality=mean_quality,
            estimated_qualities=means.copy(),
            participants=None if plan is None else participants,
        )
