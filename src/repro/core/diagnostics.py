"""Learning diagnostics: does a run behave as the theory says it must?

Lemma 18 bounds the expected number of observations any suboptimal
seller can accumulate under CMAB-HS; Theorem 19 turns that into the
regret bound.  This module inspects a finished run's selection counters
and certifies them against per-seller Lemma-18 bounds (with the seller's
*own* gap to the weakest optimal seller substituted for ``Delta_min`` —
the standard per-arm refinement), plus convenience summaries of who was
selected how often.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.regret import lemma18_bound
from repro.core.selection import top_k_indices
from repro.exceptions import ConfigurationError

__all__ = [
    "SellerCounterDiagnostic",
    "CounterReport",
    "counter_report",
]


@dataclass(frozen=True)
class SellerCounterDiagnostic:
    """One seller's measured counter against its Lemma-18 bound.

    Attributes
    ----------
    seller:
        Seller index.
    expected_quality:
        Ground-truth ``q_i``.
    gap:
        ``q_(K) - q_i`` — the seller's deficit to the weakest member of
        the optimal set (0 for optimal sellers).
    observations:
        Measured quality observations of this seller
        (``selections * L``).
    bound:
        Per-seller Lemma-18 bound on the observations attributable to
        suboptimal selections (``inf`` for optimal sellers — the lemma
        does not constrain them).
    """

    seller: int
    expected_quality: float
    gap: float
    observations: int
    bound: float

    @property
    def is_optimal(self) -> bool:
        """Whether the seller belongs to the omniscient top-K set."""
        return self.gap <= 0.0

    @property
    def within_bound(self) -> bool:
        """Whether the measured counter respects Lemma 18."""
        return self.observations <= self.bound


@dataclass(frozen=True)
class CounterReport:
    """Lemma-18 certification of a whole run's selection counters."""

    diagnostics: tuple[SellerCounterDiagnostic, ...]
    num_rounds: int

    @property
    def suboptimal(self) -> tuple[SellerCounterDiagnostic, ...]:
        """Diagnostics of the sellers Lemma 18 actually bounds."""
        return tuple(d for d in self.diagnostics if not d.is_optimal)

    @property
    def all_within_bounds(self) -> bool:
        """Whether every suboptimal seller respects its bound."""
        return all(d.within_bound for d in self.suboptimal)

    @property
    def worst_utilisation(self) -> float:
        """Largest measured/bound ratio among suboptimal sellers.

        Values near 1 mean the bound is nearly tight for some seller;
        small values mean the mechanism is far inside the guarantee.
        Returns 0 when every suboptimal bound is infinite.
        """
        ratios = [
            d.observations / d.bound
            for d in self.suboptimal
            if np.isfinite(d.bound) and d.bound > 0.0
        ]
        return max(ratios) if ratios else 0.0

    def to_table(self) -> str:
        """Aligned text table of the per-seller diagnostics."""
        headers = ["seller", "quality", "gap", "observed", "bound", "ok"]
        rows = []
        for d in self.diagnostics:
            bound = "-" if not np.isfinite(d.bound) else f"{d.bound:.0f}"
            rows.append([
                str(d.seller),
                f"{d.expected_quality:.3f}",
                f"{d.gap:.3f}",
                str(d.observations),
                bound,
                "yes" if d.within_bound else "NO",
            ])
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows))
            for i in range(len(headers))
        ]
        lines = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
        for row in rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def counter_report(expected_qualities: np.ndarray,
                   selection_counts: np.ndarray, k: int, num_pois: int,
                   num_rounds: int, *, tracer=None) -> CounterReport:
    """Certify measured selection counters against Lemma 18.

    Parameters
    ----------
    expected_qualities:
        Ground-truth qualities ``q_i``, shape ``(M,)``.
    selection_counts:
        How many rounds each seller was selected
        (``RunMetrics.selection_counts`` or a
        ``TradingResult.selection_matrix.sum(axis=0)``).
    k:
        Sellers selected per round.
    num_pois:
        Observations per selection (``L``).
    num_rounds:
        The run's horizon ``N`` (enters the bound's logarithm).
    tracer:
        Optional :class:`~repro.obs.Tracer`; every suboptimal seller
        whose measured counter exceeds its Lemma-18 bound is emitted as
        an ``invariant_violation`` event (seller, observations, bound,
        gap).

    Raises
    ------
    ConfigurationError
        On malformed inputs.
    """
    qualities = np.asarray(expected_qualities, dtype=float)
    counts = np.asarray(selection_counts, dtype=np.int64)
    if qualities.shape != counts.shape or qualities.ndim != 1:
        raise ConfigurationError(
            "expected_qualities and selection_counts must be aligned "
            "1-D arrays"
        )
    if not (1 <= k <= qualities.size):
        raise ConfigurationError(
            f"k must be in [1, {qualities.size}], got {k}"
        )
    if num_pois <= 0 or num_rounds <= 0:
        raise ConfigurationError(
            "num_pois and num_rounds must be positive"
        )
    optimal = set(int(i) for i in top_k_indices(qualities, k))
    weakest_optimal = float(np.sort(qualities)[::-1][k - 1])
    diagnostics = []
    for seller in range(qualities.size):
        gap = 0.0 if seller in optimal else (
            weakest_optimal - float(qualities[seller])
        )
        bound = (float("inf") if gap <= 0.0
                 else lemma18_bound(k, num_pois, num_rounds, gap))
        diagnostic = SellerCounterDiagnostic(
            seller=seller,
            expected_quality=float(qualities[seller]),
            gap=gap,
            observations=int(counts[seller]) * num_pois,
            bound=bound,
        )
        diagnostics.append(diagnostic)
        if (tracer is not None and tracer.enabled
                and not diagnostic.is_optimal
                and not diagnostic.within_bound):
            tracer.emit("invariant_violation",
                        invariant="lemma18_counter_bound",
                        seller=diagnostic.seller,
                        observations=diagnostic.observations,
                        bound=diagnostic.bound,
                        gap=diagnostic.gap)
    return CounterReport(
        diagnostics=tuple(diagnostics), num_rounds=int(num_rounds)
    )
