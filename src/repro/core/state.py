"""The platform's quality-learning state (Eqs. 17-19).

Tracks, for every seller, how many times its quality has been observed
(``n_i^t``) and the running sample mean (``qbar_i^t``), and computes the
extended UCB indices

``qhat_i^t = qbar_i^t + sqrt((K+1) * ln(sum_j n_j^t) / n_i^t)``

that drive the CMAB-HS selection policy.  Each time a seller is selected
it is observed once per PoI, so ``n_i`` advances by ``L`` per selection
(Eq. 17).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.obs.logconfig import get_logger

__all__ = ["LearningState", "observation_mask"]

_log = get_logger(__name__)


def observation_mask(observation_sums: np.ndarray,
                     num_observations: int) -> np.ndarray:
    """Which per-seller observation sums are physically possible.

    A seller observed at ``L`` PoIs reports a sum of ``L`` per-PoI
    qualities, each in ``[0, 1]``, so any finite value in ``[0, L]`` is
    feasible; NaN, negative, or oversized sums mark a corrupted report.
    The fault-tolerant runners use this mask to quarantine garbage
    *before* it reaches :meth:`LearningState.update` and poisons
    ``qbar_i``.
    """
    sums = np.asarray(observation_sums, dtype=float)
    if num_observations <= 0:
        raise ConfigurationError(
            f"num_observations must be positive, got {num_observations}"
        )
    return np.isfinite(sums) & (sums >= 0.0) & (sums <= float(num_observations))


class LearningState:
    """Running quality estimates for a population of ``M`` sellers.

    Parameters
    ----------
    num_sellers:
        Population size ``M``.
    prior_mean:
        The estimate reported for never-observed sellers (default 0; it
        never matters for selection because unobserved sellers have an
        infinite UCB index).
    """

    def __init__(self, num_sellers: int, prior_mean: float = 0.0) -> None:
        if num_sellers <= 0:
            raise ConfigurationError(
                f"num_sellers must be positive, got {num_sellers}"
            )
        if not (0.0 <= prior_mean <= 1.0):
            raise ConfigurationError(
                f"prior_mean must be in [0, 1], got {prior_mean}"
            )
        self._num_sellers = int(num_sellers)
        self._prior_mean = float(prior_mean)
        self._counts = np.zeros(num_sellers, dtype=np.int64)
        self._sums = np.zeros(num_sellers, dtype=float)

    # -- basic accessors -------------------------------------------------------

    @property
    def num_sellers(self) -> int:
        """Population size ``M``."""
        return self._num_sellers

    @property
    def counts(self) -> np.ndarray:
        """Observation counts ``n_i`` (read-only view)."""
        view = self._counts.view()
        view.flags.writeable = False
        return view

    @property
    def total_count(self) -> int:
        """Total observations ``sum_j n_j`` across all sellers."""
        return int(self._counts.sum())

    @property
    def means(self) -> np.ndarray:
        """Sample means ``qbar_i``; ``prior_mean`` where unobserved."""
        means = np.full(self._num_sellers, self._prior_mean)
        seen = self._counts > 0
        means[seen] = self._sums[seen] / self._counts[seen]
        return means

    def mean_of(self, seller: int) -> float:
        """Sample mean ``qbar_i`` of one seller."""
        if self._counts[seller] == 0:
            return self._prior_mean
        return float(self._sums[seller] / self._counts[seller])

    # -- updates (Eqs. 17-18) ----------------------------------------------------

    def update(self, seller_indices: np.ndarray, observation_sums: np.ndarray,
               num_observations: int) -> None:
        """Fold one round of observations into the state.

        Parameters
        ----------
        seller_indices:
            The sellers selected this round (each index at most once).
        observation_sums:
            Per-seller sums of this round's quality observations (the
            ``sum_l q_{i,l}^t`` term of Eq. 18), aligned with
            ``seller_indices``.
        num_observations:
            Observations per seller this round — the number of PoIs ``L``
            (Eq. 17 increments ``n_i`` by ``L``).
        """
        sellers = np.asarray(seller_indices, dtype=int)
        sums = np.asarray(observation_sums, dtype=float)
        if sellers.shape != sums.shape or sellers.ndim != 1:
            raise ConfigurationError(
                "seller_indices and observation_sums must be 1-D and aligned"
            )
        if num_observations <= 0:
            raise ConfigurationError(
                f"num_observations must be positive, got {num_observations}"
            )
        if sellers.size == 0:
            return
        if np.unique(sellers).size != sellers.size:
            raise ConfigurationError("a seller cannot be updated twice per round")
        if sellers.min() < 0 or sellers.max() >= self._num_sellers:
            raise ConfigurationError("seller index out of range")
        invalid = ~observation_mask(sums, num_observations)
        if invalid.any():
            _log.warning(
                "rejecting learning-state update: %d of %d observation "
                "sums are infeasible (sellers %s)",
                int(invalid.sum()), sums.size,
                sellers[invalid].tolist(),
            )
            raise ConfigurationError(
                "observation sums contain NaN or out-of-range values; "
                "quarantine corrupted reports (see observation_mask) before "
                "updating the learning state"
            )
        self._counts[sellers] += int(num_observations)
        self._sums[sellers] += sums

    # -- UCB indices (Eq. 19) -----------------------------------------------------

    def exploration_bonuses(self, coefficient: float) -> np.ndarray:
        """The confidence radii ``eps_i = sqrt(c * ln(sum_j n_j) / n_i)``.

        ``coefficient`` is ``K+1`` in the paper (Eq. 19); it is exposed so
        ablation experiments can sweep the confidence width.  Sellers with
        no observations get an infinite bonus, forcing exploration.
        """
        if coefficient <= 0.0:
            raise ConfigurationError(
                f"exploration coefficient must be positive, got {coefficient}"
            )
        total = self.total_count
        bonuses = np.full(self._num_sellers, np.inf)
        if total <= 1:
            # ln(total) <= 0: no meaningful confidence radius yet.
            return bonuses
        seen = self._counts > 0
        bonuses[seen] = np.sqrt(
            coefficient * np.log(total) / self._counts[seen]
        )
        return bonuses

    def ucb_values(self, coefficient: float) -> np.ndarray:
        """UCB indices ``qhat_i = qbar_i + eps_i`` (Eq. 19)."""
        return self.means + self.exploration_bonuses(coefficient)

    # -- maintenance ---------------------------------------------------------------

    def snapshot(self) -> dict[str, np.ndarray]:
        """A copy of the raw state, for logging or checkpointing."""
        return {"counts": self._counts.copy(), "sums": self._sums.copy()}

    def restore(self, snapshot: dict[str, np.ndarray]) -> None:
        """Restore a state previously produced by :meth:`snapshot`."""
        counts = np.asarray(snapshot["counts"], dtype=np.int64)
        sums = np.asarray(snapshot["sums"], dtype=float)
        if counts.shape != (self._num_sellers,) or sums.shape != (self._num_sellers,):
            raise ConfigurationError("snapshot shape does not match this state")
        self._counts = counts.copy()
        self._sums = sums.copy()

    def reset(self) -> None:
        """Forget everything learned so far."""
        _log.debug("resetting learning state for %d sellers",
                   self._num_sellers)
        self._counts.fill(0)
        self._sums.fill(0.0)
