"""Closed-form optimal incentive strategy (Theorems 14-16).

The paper derives the unique Stackelberg Equilibrium of the three-stage
game by backward induction:

* **Stage 3** (Theorem 14): each selected seller's optimal sensing time is
  ``tau_i* = (p - qbar_i*b_i) / (2*qbar_i*a_i)``.
* **Stage 2** (Theorem 15): with ``A = sum 1/(2*qbar_i*a_i)`` and
  ``B = sum b_i/(2*a_i)`` (so that ``sum tau_i* = p*A - B``), the
  platform's optimal price solves ``dOmega/dp = 0``.
* **Stage 1** (Theorem 16): substituting both lower stages into the
  consumer's profit and re-parameterising by
  ``Upsilon = Lambda - Theta*p^J`` (``-Upsilon`` is the total sensing
  time) yields a quadratic first-order condition whose smaller root gives
  the optimal ``p^J*``.

**Formula variants.** Differentiating Eq. (7) after substituting Eq. (20)
gives the stage-2 first-order condition
``p^J*A - 2A(1+theta*A)*p + B + 2*theta*A*B - lambda*A = 0``, i.e. the
constant is ``lambda*A - 2*theta*A*B - B``.  The paper prints it as
``lambda*A - 2*theta*B*A + B`` (a sign slip on the ``-(p*A - B)`` product
term).  Both variants are implemented; :attr:`FormulaVariant.DERIVED` is
the default and is the one that matches a numerical ``argmax`` of the
profit functions (asserted by the test suite).  With ``b_i = 0`` the two
coincide.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import GameError
from repro.game.profits import GameInstance, StrategyProfile
from repro.game.stackelberg import NumericalStackelbergSolver, SolvedGame

__all__ = [
    "FormulaVariant",
    "StageCoefficients",
    "optimal_sensing_times",
    "optimal_collection_price",
    "optimal_service_price",
    "ClosedFormStackelbergSolver",
    "initial_round_prices",
    "solve_round_fast",
]


class FormulaVariant(enum.Enum):
    """Which stage-2 constant to use in the closed forms.

    ``DERIVED``
        ``lambda*A - 2*theta*A*B - B`` — the constant obtained by
        differentiating the platform profit directly (default).
    ``PAPER``
        ``lambda*A - 2*theta*A*B + B`` — the constant as printed in
        Theorem 15 of the paper; kept for side-by-side comparison.
    """

    DERIVED = "derived"
    PAPER = "paper"


@dataclass(frozen=True)
class StageCoefficients:
    """The reduced-form coefficients the closed forms are written in.

    Attributes
    ----------
    a_sum:
        ``A = sum_i 1/(2*qbar_i*a_i)`` — total sensing time per unit price.
    b_sum:
        ``B = sum_i b_i/(2*a_i)`` — the price-independent time offset.
    constant:
        The stage-2 constant ``lambda*A - 2*theta*A*B -/+ B`` (variant
        dependent).
    theta_coef:
        ``Theta = A / (2*(1 + theta*A))`` (Theorem 16).
    lambda_coef:
        ``Lambda = constant / (2*(1 + theta*A)) + B`` (Theorem 16).
    """

    a_sum: float
    b_sum: float
    constant: float
    theta_coef: float
    lambda_coef: float

    @classmethod
    def from_game(cls, game: GameInstance,
                  variant: FormulaVariant = FormulaVariant.DERIVED,
                  ) -> "StageCoefficients":
        """Compute the coefficients of a game instance."""
        a_sum = game.coefficient_a
        b_sum = game.coefficient_b
        base = game.lam * a_sum - 2.0 * game.theta * a_sum * b_sum
        if variant is FormulaVariant.DERIVED:
            constant = base - b_sum
        else:
            constant = base + b_sum
        denominator = 2.0 * (1.0 + game.theta * a_sum)
        return cls(
            a_sum=a_sum,
            b_sum=b_sum,
            constant=constant,
            theta_coef=a_sum / denominator,
            lambda_coef=constant / denominator + b_sum,
        )


def optimal_sensing_times(game: GameInstance,
                          collection_price: float) -> np.ndarray:
    """Stage-3 optima ``tau_i*`` (Theorem 14, Eq. 20), clipped to ``[0, T]``."""
    return game.seller_best_responses(collection_price)


def optimal_collection_price(game: GameInstance, service_price: float,
                             variant: FormulaVariant = FormulaVariant.DERIVED,
                             ) -> float:
    """Stage-2 optimum ``p*`` (Theorem 15, Eq. 21), clipped to its bounds.

    ``p* = (p^J*A - constant) / (2*A*(1 + theta*A))`` with the
    variant-dependent constant (see module docstring).
    """
    coeffs = StageCoefficients.from_game(game, variant)
    numerator = float(service_price) * coeffs.a_sum - coeffs.constant
    denominator = 2.0 * coeffs.a_sum * (1.0 + game.theta * coeffs.a_sum)
    return game.clip_collection_price(numerator / denominator)


def optimal_service_price(game: GameInstance,
                          variant: FormulaVariant = FormulaVariant.DERIVED,
                          ) -> float:
    """Stage-1 optimum ``p^J*`` (Theorem 16, Eq. 22), clipped to its bounds.

    With ``qbar`` the mean estimated quality and
    ``Delta = (qbar*Lambda - 2)^2 + 8*Theta*omega*qbar^2``::

        p^J* = (3*qbar*Lambda + sqrt(Delta) - 2) / (4*qbar*Theta)

    Raises
    ------
    GameError
        If the optimal total sensing time implied by the interior solution
        is non-positive (``Upsilon_1 >= 0``) — the closed form's premise
        fails; callers should fall back to the numerical solver.
    """
    coeffs = StageCoefficients.from_game(game, variant)
    q = game.mean_quality
    lam_c, theta_c = coeffs.lambda_coef, coeffs.theta_coef
    delta = (q * lam_c - 2.0) ** 2 + 8.0 * theta_c * game.omega * q * q
    sqrt_delta = math.sqrt(delta)
    upsilon_1 = (q * lam_c + 2.0 - sqrt_delta) / (4.0 * q)
    if upsilon_1 >= 0.0:
        raise GameError(
            "closed-form Stage 1 has no interior optimum with positive "
            f"total sensing time (Upsilon_1 = {upsilon_1:.6f} >= 0)"
        )
    price = (3.0 * q * lam_c + sqrt_delta - 2.0) / (4.0 * q * theta_c)
    return game.clip_service_price(price)


def initial_round_prices(game: GameInstance,
                         initial_sensing_time: float) -> tuple[float, float]:
    """Prices of the initial exploration round (Algorithm 1, steps 2-4).

    In round 1 *all* sellers are selected with a fixed sensing time
    ``tau^0`` and paid the maximum collection price ``p_max``; the
    consumer pays the smallest service price keeping the platform's
    profit non-negative::

        p^J,1* = p_max + C^J(tau^0 * K) / (K * tau^0)

    (solving ``Omega = (p^J - p_max)*S - C^J(S) = 0`` for ``p^J`` with
    ``S = K * tau^0``), clipped to the consumer's price bounds.

    Returns
    -------
    tuple
        ``(service_price, collection_price)``.
    """
    if not (initial_sensing_time > 0.0):
        raise GameError(
            f"initial sensing time must be positive, got {initial_sensing_time}"
        )
    collection_price = game.collection_price_bounds[1]
    total = game.num_sellers * float(initial_sensing_time)
    aggregation = game.theta * total * total + game.lam * total
    service_price = collection_price + aggregation / total
    return game.clip_service_price(service_price), collection_price


def _solve_round_arrays(qualities: np.ndarray, cost_a: np.ndarray,
                        cost_b: np.ndarray, theta: float, lam: float,
                        omega: float,
                        service_price_bounds: tuple[float, float],
                        collection_price_bounds: tuple[float, float],
                        max_sensing_time: float,
                        paper_variant: bool,
                        ) -> tuple[float, float, np.ndarray, bool]:
    """Array-level closed-form solve with bound-aware Stage-1 candidates.

    When the platform's closed-form price falls inside its bounds and no
    sensing time clips, the result is the pure Theorems 14-16 solution.
    When a price bound *binds*, the consumer's problem becomes piecewise
    (the platform's response is pinned at the bound on part of the ``p^J``
    axis); the optimum then lies either at the interior formula value or
    at one of the kink/endpoint candidates, all of which are evaluated in
    closed form.

    Returns ``(p^J, p, tau, interior)`` where ``interior`` is False when
    any clipping affected the solution.
    """
    # Direct ufunc reductions: np.sum/ndarray.mean dispatch to these
    # same pairwise kernels, so the values are bit-identical — only the
    # per-call wrapper overhead goes (this runs once per round).
    inv = 1.0 / (2.0 * qualities * cost_a)
    a_sum = float(np.add.reduce(inv))
    b_sum = float(np.add.reduce(cost_b / (2.0 * cost_a)))
    base = lam * a_sum - 2.0 * theta * a_sum * b_sum
    constant = base + b_sum if paper_variant else base - b_sum
    denominator = 2.0 * (1.0 + theta * a_sum)
    theta_c = a_sum / denominator
    lam_c = constant / denominator + b_sum
    q = float(np.add.reduce(qualities) / qualities.size)
    delta = (q * lam_c - 2.0) ** 2 + 8.0 * theta_c * omega * q * q
    sqrt_delta = math.sqrt(delta)
    interior_service = (
        3.0 * q * lam_c + sqrt_delta - 2.0
    ) / (4.0 * q * theta_c)
    svc_lo, svc_hi = service_price_bounds
    col_lo, col_hi = collection_price_bounds
    stage2_denominator = 2.0 * a_sum * (1.0 + theta * a_sum)

    def stage2_unclipped(service_price: float) -> float:
        return (service_price * a_sum - constant) / stage2_denominator

    def evaluate(service_price: float) -> tuple[float, np.ndarray, float]:
        price = min(max(stage2_unclipped(service_price), col_lo), col_hi)
        taus = np.clip((price - qualities * cost_b) * inv, 0.0,
                       max_sensing_time)
        total = float(np.add.reduce(taus))
        profit = omega * math.log1p(q * total) - service_price * total
        return price, taus, profit

    service_price = min(max(interior_service, svc_lo), svc_hi)
    collection_interior = stage2_unclipped(service_price)
    taus_interior = (collection_interior - qualities * cost_b) * inv
    interior = (
        svc_lo <= interior_service <= svc_hi
        and col_lo <= collection_interior <= col_hi
        and bool(np.logical_and.reduce(taus_interior >= 0.0))
        and bool(np.logical_and.reduce(taus_interior <= max_sensing_time))
    )
    if interior:
        return service_price, collection_interior, taus_interior, True

    # A bound binds somewhere: compare the clipped interior point against
    # the kink prices (where the platform's response hits each bound) and
    # the consumer's own endpoints.
    candidates = {service_price}
    for bound in (col_lo, col_hi):
        kink = (stage2_denominator * bound + constant) / a_sum
        candidates.add(min(max(kink, svc_lo), svc_hi))
    candidates.add(svc_lo)
    if math.isfinite(svc_hi):
        candidates.add(svc_hi)
    best = None
    for candidate in candidates:
        price, taus, profit = evaluate(candidate)
        if best is None or profit > best[3]:
            best = (candidate, price, taus, profit)
    assert best is not None
    return best[0], best[1], best[2], False


def solve_round_fast(qualities: np.ndarray, cost_a: np.ndarray,
                     cost_b: np.ndarray, theta: float, lam: float,
                     omega: float,
                     service_price_bounds: tuple[float, float],
                     collection_price_bounds: tuple[float, float],
                     max_sensing_time: float = float("inf"),
                     paper_variant: bool = False,
                     ) -> tuple[float, float, np.ndarray]:
    """Allocation-light closed-form solve of one round's game.

    Semantically identical to
    ``ClosedFormStackelbergSolver(fallback="clip").solve`` on the matching
    :class:`~repro.game.profits.GameInstance` (asserted by the test
    suite), but skips instance construction and validation — the
    simulation engine calls this once per round for up to ``2*10^5``
    rounds.  Inputs are assumed pre-validated: qualities in ``(0, 1]``,
    ``a > 0``, ``b >= 0``.  Binding price bounds are handled by the
    piecewise Stage-1 candidate evaluation (see
    :func:`_solve_round_arrays`).

    Returns
    -------
    tuple
        ``(service_price, collection_price, sensing_times)``.
    """
    service_price, collection_price, taus, __ = _solve_round_arrays(
        qualities, cost_a, cost_b, theta, lam, omega,
        service_price_bounds, collection_price_bounds,
        max_sensing_time, paper_variant,
    )
    return service_price, collection_price, taus


class ClosedFormStackelbergSolver:
    """Backward-induction solver using the paper's closed forms.

    Parameters
    ----------
    variant:
        Which stage-2 constant to use (see :class:`FormulaVariant`).
    fallback:
        What to do when the closed form's interior assumptions fail
        (Stage 1 has no positive-time optimum, or a Stage-3 response
        clips):

        * ``"clip"`` (default) — keep the closed-form prices and clip
          sensing times to ``[0, T]``; fast, exact whenever nothing
          actually clips, and the economically sensible projection when a
          low price makes a seller opt out.
        * ``"numeric"`` — re-solve the whole game numerically whenever a
          price bound binds or any sensing time clips.
        * ``"error"`` — raise :class:`~repro.exceptions.GameError`.
    """

    def __init__(self, variant: FormulaVariant = FormulaVariant.DERIVED,
                 fallback: str = "clip") -> None:
        if fallback not in ("clip", "numeric", "error"):
            raise GameError(
                f"fallback must be 'clip', 'numeric', or 'error', got {fallback!r}"
            )
        self._variant = variant
        self._fallback = fallback
        self._numeric = NumericalStackelbergSolver()

    @property
    def variant(self) -> FormulaVariant:
        """The formula variant this solver applies."""
        return self._variant

    def cascade(self, game: GameInstance,
                service_price: float) -> tuple[float, np.ndarray]:
        """Closed-form lower-tier responses ``(p*, tau*)`` to a ``p^J``."""
        price = optimal_collection_price(game, service_price, self._variant)
        return price, optimal_sensing_times(game, price)

    def solve(self, game: GameInstance) -> SolvedGame:
        """Solve all three stages; the result satisfies Definition 13.

        Falls back per the ``fallback`` policy when the closed form's
        interior assumptions do not hold (a price bound binds or a
        sensing time clips); in ``"clip"`` mode those situations are
        resolved by the closed-form piecewise candidate evaluation.
        """
        try:
            optimal_service_price(game, self._variant)
        except GameError:
            if self._fallback == "error":
                raise
            return self._numeric.solve(game)
        service_price, collection_price, taus, interior = _solve_round_arrays(
            game.qualities, game.cost_a, game.cost_b, game.theta,
            game.lam, game.omega, game.service_price_bounds,
            game.collection_price_bounds, game.max_sensing_time,
            self._variant is FormulaVariant.PAPER,
        )
        if not interior and self._fallback == "numeric":
            return self._numeric.solve(game)
        if not interior and self._fallback == "error":
            raise GameError(
                "closed-form solution required clipping (a price bound "
                "binds or a sensing time lies outside [0, T])"
            )
        profile = StrategyProfile(
            service_price=service_price,
            collection_price=collection_price,
            sensing_times=taus,
        )
        return SolvedGame.from_profile(game, profile)
