"""Regret accounting and the Theorem-19 bound.

The regret of a selection policy (Eq. 34) is the expected-revenue gap to
the omniscient policy that always selects the ``K`` truly-best sellers.
Since each selected seller contributes ``L`` observations per round, a
round's expected revenue is ``L * sum_{i in S^t} q_i`` and its regret
increment is ``L * (sum_{S*} q_i - sum_{S^t} q_i)``.

:func:`theorem19_bound` evaluates the paper's closed-form upper bound
``M * Delta_max * (4K^2(K+1)ln(NKL)/Delta_min^2 + 1 + pi^2/(3K^{2K+1}L^{K+2}))``
so experiments can check that measured regret stays below it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.selection import top_k_indices
from repro.exceptions import ConfigurationError

__all__ = [
    "GapStatistics",
    "gap_statistics",
    "lemma18_bound",
    "theorem19_bound",
    "RegretTracker",
]


@dataclass(frozen=True)
class GapStatistics:
    """The revenue gaps ``Delta_min``/``Delta_max`` (Eqs. 35-36).

    Attributes
    ----------
    delta_min:
        Smallest positive revenue gap between the optimal selected set and
        any other set: the gap to the set that swaps the weakest optimal
        seller for the strongest non-optimal one.
    delta_max:
        Largest gap: optimal set versus the ``K`` worst sellers.
    optimal_set:
        Indices of the optimal selected set ``S*``.
    optimal_value:
        ``sum_{i in S*} q_i``.
    """

    delta_min: float
    delta_max: float
    optimal_set: np.ndarray
    optimal_value: float


def gap_statistics(expected_qualities: np.ndarray, k: int) -> GapStatistics:
    """Compute ``Delta_min`` and ``Delta_max`` for a quality vector.

    With qualities sorted descending as ``q_(1) >= ... >= q_(M)``, the
    closest non-optimal set differs only by swapping ``q_(K)`` for
    ``q_(K+1)``, so ``Delta_min = q_(K) - q_(K+1)``; the farthest set is
    the bottom ``K``, so ``Delta_max = sum(top K) - sum(bottom K)``.

    Raises
    ------
    ConfigurationError
        If ``k >= M`` (no non-optimal set exists) or inputs are malformed.
    """
    qualities = np.asarray(expected_qualities, dtype=float)
    if qualities.ndim != 1 or qualities.size == 0:
        raise ConfigurationError("expected_qualities must be a non-empty 1-D array")
    if not (1 <= k < qualities.size):
        raise ConfigurationError(
            f"k must be in [1, M-1] = [1, {qualities.size - 1}], got {k}"
        )
    descending = np.sort(qualities)[::-1]
    delta_min = float(descending[k - 1] - descending[k])
    delta_max = float(descending[:k].sum() - descending[-k:].sum())
    optimal = top_k_indices(qualities, k)
    return GapStatistics(
        delta_min=delta_min,
        delta_max=delta_max,
        optimal_set=optimal,
        optimal_value=float(qualities[optimal].sum()),
    )


def lemma18_bound(k: int, num_pois: int, num_rounds: int,
                  delta_min: float) -> float:
    """The Lemma-18 upper bound on a seller's expected counter.

    Evaluates::

        E[beta_i^N] <= 4K^2(K+1)ln(NKL)/Delta_min^2 + 1
                       + pi^2 / (3 K^{2K+1} L^{K+2})

    — the expected number of *observations* attributable to non-optimal
    selections of any one seller.  Measured selection counters of
    suboptimal sellers under CMAB-HS must stay below it (verified in the
    test suite and the ablation benches).

    Returns ``inf`` when ``delta_min`` is zero or its square underflows.
    """
    if k <= 0 or num_pois <= 0 or num_rounds <= 0:
        raise ConfigurationError("all problem sizes must be positive")
    if delta_min < 0.0:
        raise ConfigurationError("delta_min must be non-negative")
    squared_gap = delta_min * delta_min
    if squared_gap == 0.0:
        return float("inf")
    leading = (
        4.0 * k * k * (k + 1) * math.log(num_rounds * k * num_pois)
    ) / squared_gap
    log_tail = (
        math.log(math.pi * math.pi / 3.0)
        - (2 * k + 1) * math.log(k)
        - (k + 2) * math.log(num_pois)
    )
    tail = math.exp(log_tail) if log_tail > -700.0 else 0.0
    return leading + 1.0 + tail


def theorem19_bound(num_sellers: int, k: int, num_pois: int, num_rounds: int,
                    delta_min: float, delta_max: float) -> float:
    """The Theorem-19 regret upper bound ``O(M K^3 ln(NKL))``.

    Evaluates::

        M * Delta_max * ( 4K^2(K+1)ln(NKL)/Delta_min^2 + 1
                          + pi^2 / (3 K^{2K+1} L^{K+2}) )

    The last term underflows to 0 for realistic ``K``/``L``; it is
    computed in log space to stay finite for any input.

    Returns ``inf`` when ``delta_min`` is zero (the bound degenerates when
    the K-th and (K+1)-th sellers tie exactly).
    """
    if num_sellers <= 0:
        raise ConfigurationError("all problem sizes must be positive")
    if delta_max < 0.0:
        raise ConfigurationError("gaps must be non-negative")
    if delta_max == 0.0:
        # Every K-set has the same value: no set is suboptimal, so the
        # regret is identically zero.
        return 0.0
    return num_sellers * delta_max * lemma18_bound(
        k, num_pois, num_rounds, delta_min
    )


class RegretTracker:
    """Accumulates per-round pseudo-regret against the omniscient policy.

    Pseudo-regret uses the *expected* qualities (the standard bandit
    notion, and what Eq. 34 evaluates): round ``t`` contributes
    ``L * (sum_{S*} q_i - sum_{S^t} q_i)``.

    Parameters
    ----------
    expected_qualities:
        Ground-truth expected qualities ``q_i``.
    k:
        Number of sellers selected per round.
    num_pois:
        Observations per selected seller per round (``L``).
    """

    def __init__(self, expected_qualities: np.ndarray, k: int,
                 num_pois: int) -> None:
        qualities = np.asarray(expected_qualities, dtype=float)
        if num_pois <= 0:
            raise ConfigurationError(f"num_pois must be positive, got {num_pois}")
        if not (1 <= k <= qualities.size):
            raise ConfigurationError(
                f"k must be in [1, {qualities.size}], got {k}"
            )
        self._qualities = qualities
        self._num_pois = int(num_pois)
        self._k = int(k)
        optimal = top_k_indices(qualities, k)
        self._optimal_value = float(qualities[optimal].sum())
        self._optimal_set = frozenset(int(i) for i in optimal)
        self._cumulative = 0.0
        self._rounds = 0
        self._expected_revenue = 0.0
        self._history: list[float] = []

    @property
    def optimal_round_revenue(self) -> float:
        """Expected revenue of the omniscient policy per round."""
        return self._optimal_value * self._num_pois

    @property
    def cumulative_regret(self) -> float:
        """Total pseudo-regret accumulated so far."""
        return self._cumulative

    @property
    def cumulative_expected_revenue(self) -> float:
        """Total expected revenue of the tracked policy so far."""
        return self._expected_revenue

    @property
    def num_rounds(self) -> int:
        """Number of rounds recorded."""
        return self._rounds

    @property
    def history(self) -> np.ndarray:
        """Cumulative regret after each recorded round."""
        return np.asarray(self._history)

    def record(self, selected: np.ndarray) -> float:
        """Record one round's selection; returns that round's regret.

        Selections larger than ``K`` (the initial explore-all round of
        Algorithm 1) are charged the gap between ``K`` optimal picks and
        the best ``K`` of the selected set — they still pay for the
        sub-optimal extra picks via the revenue side, but the regret
        baseline stays the per-round optimum as in Eq. (34).
        """
        selected = np.asarray(selected, dtype=int)
        value = float(self._qualities[selected].sum())
        self._expected_revenue += value * self._num_pois
        if selected.size > self._k:
            best = np.sort(self._qualities[selected])[::-1][: self._k]
            value = float(best.sum())
        increment = max(self._optimal_value - value, 0.0) * self._num_pois
        self._cumulative += increment
        self._rounds += 1
        self._history.append(self._cumulative)
        return increment

    def is_optimal_selection(self, selected: np.ndarray) -> bool:
        """Whether the selection equals the omniscient set ``S*``."""
        return frozenset(int(i) for i in np.asarray(selected)) == self._optimal_set

    # -- checkpointing -------------------------------------------------------------

    def snapshot(self) -> dict:
        """The tracker's mutable state, for crash-safe checkpoints."""
        return {
            "cumulative": self._cumulative,
            "rounds": self._rounds,
            "expected_revenue": self._expected_revenue,
            "history": np.asarray(self._history, dtype=float),
        }

    def restore(self, snapshot: dict) -> None:
        """Restore state previously captured by :meth:`snapshot`."""
        try:
            history = np.asarray(snapshot["history"], dtype=float)
            rounds = int(snapshot["rounds"])
            cumulative = float(snapshot["cumulative"])
            expected = float(snapshot["expected_revenue"])
        except KeyError as error:
            raise ConfigurationError(
                f"regret snapshot is missing field {error.args[0]!r}"
            ) from error
        if history.size != rounds:
            raise ConfigurationError(
                f"regret snapshot is inconsistent: {history.size} history "
                f"entries for {rounds} rounds"
            )
        self._cumulative = cumulative
        self._rounds = rounds
        self._expected_revenue = expected
        self._history = [float(value) for value in history]
