"""UCB-greedy seller selection (Algorithm 1, steps 7-10).

Each round the platform sorts the sellers by their UCB indices and picks
the top ``K``.  The module also provides the plain top-K-of-an-array
helper shared by the baseline policies.
"""

from __future__ import annotations

import numpy as np

from repro.core.state import LearningState
from repro.exceptions import SelectionError

__all__ = ["top_k_indices", "select_by_ucb"]


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Positions of the ``k`` largest scores, in ascending index order.

    Ties are broken by ascending index (stable), which matches sorting
    sellers "in a non-increasing order of their UCB values" and taking a
    prefix.  Infinite scores (never-observed sellers) rank first, so
    forced exploration happens automatically.

    Raises
    ------
    SelectionError
        If ``k`` is not in ``[1, len(scores)]``.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 1:
        raise SelectionError("scores must be a 1-D array")
    if not (1 <= k <= scores.size):
        raise SelectionError(
            f"cannot select k={k} sellers from {scores.size} candidates"
        )
    if k == scores.size:
        return np.arange(scores.size)
    order = np.argsort(-scores, kind="stable")
    return np.sort(order[:k])


def select_by_ucb(state: LearningState, k: int,
                  exploration_coefficient: float) -> np.ndarray:
    """Select the ``K`` sellers with the largest UCB indices (Eq. 19).

    Parameters
    ----------
    state:
        The platform's learning state.
    k:
        Number of sellers to select.
    exploration_coefficient:
        The ``K+1`` factor inside the confidence radius; exposed for the
        confidence-width ablation.
    """
    return top_k_indices(state.ucb_values(exploration_coefficient), k)
